//! The storage side of the inspection pipeline.
//!
//! The paper's motivation: "On-line automatic inspection of PCBs requires
//! acquisition and processing of gigabytes of binary image data in a matter
//! of seconds ... run-length encoding (RLE) is used for storage and
//! operations." This example quantifies why: it serializes a board layer in
//! the compact RLE format, compares against PBM/dense sizes, then runs the
//! full defect pipeline — systolic diff, morphological clean-up
//! (despeckle), and coalescing — entirely in the compressed domain.
//!
//! ```text
//! cargo run --example inspection_storage
//! ```

use rle_systolic::rle::{morph, serialize};
use rle_systolic::systolic_core::coalesce::{bus_coalesce, CoalescePass};
use rle_systolic::systolic_core::SystolicArray;
use rle_systolic::workload::pcb::{inspection_pair, typical_defects, PcbParams};

fn main() {
    let params = PcbParams {
        width: 4096,
        height: 1024,
        ..Default::default()
    };
    let (reference, scan) = inspection_pair(&params, &typical_defects(), 31337);

    // --- storage -----------------------------------------------------
    let rle_bytes = serialize::encode_image(&reference);
    let dense_bytes = serialize::dense_size_bytes(reference.width(), reference.height());
    println!(
        "board layer {}x{} px, {} runs",
        reference.width(),
        reference.height(),
        reference.total_runs()
    );
    println!("  dense bitmap (P4-equivalent): {:>9} bytes", dense_bytes);
    println!(
        "  compact RLE stream:            {:>9} bytes  ({:.1}x smaller)",
        rle_bytes.len(),
        dense_bytes as f64 / rle_bytes.len() as f64
    );
    let decoded = serialize::decode_image(&rle_bytes).expect("round trip");
    assert_eq!(decoded, reference, "serialization must be lossless");

    // --- inspection in the compressed domain ---------------------------
    let mut flagged_rows = 0usize;
    let mut defect_pixels = 0u64;
    let mut total_xor_iterations = 0u64;
    let mut total_coalesce_iterations = 0u64;
    let mut total_bus_transactions = 0u64;

    for (ra, rb) in reference.rows().iter().zip(scan.rows()) {
        let mut machine = SystolicArray::load(ra, rb).expect("load");
        machine.run().expect("xor");
        total_xor_iterations += machine.stats().iterations;

        // §6 coalescing pass: pure systolic vs bus-assisted, same result.
        let chain: Vec<_> = machine.views().map(|c| c.small).collect();
        let mut pass = CoalescePass::from_array(&machine);
        pass.run().expect("coalesce");
        let (bus_row, tx) = bus_coalesce(machine.width(), &chain);
        assert_eq!(pass.extract().unwrap(), bus_row);
        total_coalesce_iterations += pass.stats().iterations;
        total_bus_transactions += tx;

        // Morphological clean-up: drop 1-px specks, keep real defects.
        let cleaned = morph::remove_small(&bus_row, 2);
        if !cleaned.is_empty() {
            flagged_rows += 1;
            defect_pixels += cleaned.ones();
        }
    }

    println!("\ninspection summary:");
    println!("  rows flagged          : {flagged_rows}");
    println!("  defect pixels (clean) : {defect_pixels}");
    println!(
        "  XOR iterations        : {total_xor_iterations} across {} rows",
        reference.height()
    );
    println!(
        "  coalescing            : {} systolic iterations vs {} bus transactions (§6)",
        total_coalesce_iterations, total_bus_transactions
    );

    // Store only the difference: this is what makes reference-based
    // archival cheap when boards are mostly good.
    let (diff, _) = rle_systolic::systolic_core::image::xor_image(&reference, &scan).unwrap();
    let diff_bytes = serialize::encode_image(&diff);
    println!(
        "\narchiving the defect mask instead of the scan: {} bytes ({}x smaller than the scan's RLE)",
        diff_bytes.len(),
        rle_bytes.len() / diff_bytes.len().max(1)
    );
}
