//! Template localisation: find where a glyph sits inside a larger noisy
//! image by sliding-window image difference — the "binary template
//! matching" application from the paper's introduction, built on the same
//! XOR primitive the systolic array computes.
//!
//! ```text
//! cargo run --example template_search
//! ```

use rle_systolic::bitimg::convert::encode;
use rle_systolic::rle_analysis::matching::{best_match, score_all};
use rle_systolic::workload::glyphs;

fn main() {
    // A "scene": a line of text rendered at scale 2, plus scanner noise.
    let scene_dense = glyphs::perturb(&glyphs::render("FIND THE Q HERE", 2), 40, 1234);
    let scene = encode(&scene_dense);
    println!(
        "scene: {}x{} px, {} runs, {} noise pixels injected",
        scene.width(),
        scene.height(),
        scene.total_runs(),
        40
    );

    // The template: the letter Q at the same scale, but we search for it
    // by *difference*, never knowing its position.
    let template = glyphs::render_rle("Q", 2);
    let placements = score_all(&scene, &template);
    let best = best_match(&scene, &template).expect("template fits");

    println!(
        "searched {} placements; best at x={}, y={} with {} differing pixels",
        placements.len(),
        best.x,
        best.y,
        best.score
    );

    // Show the top three candidates; the true Q position must win by a
    // comfortable margin over the visually-similar O in "...".
    let mut ranked = placements.clone();
    ranked.sort_by_key(|p| p.score);
    println!("\ntop candidates:");
    for p in ranked.iter().take(3) {
        println!("  ({:>3}, {:>2})  score {:>4}", p.x, p.y, p.score);
    }

    // The glyph cell for 'Q' in "FIND THE Q HERE" is index 9 (0-based) —
    // cell width (5+1)*2 = 12, margin 2.
    let expected_x = 2 + 12 * 9;
    assert!(
        (i64::from(best.x) - i64::from(expected_x)).abs() <= 2,
        "best match at {} should be near the true Q at {expected_x}",
        best.x
    );
    println!("\nlocated the Q at its true glyph cell (x≈{expected_x}). ✓");

    // Cost framing: each placement is a windowed XOR of ~template-size;
    // in the compressed domain the score costs O(runs in window).
    let window_runs: usize = scene
        .rows()
        .iter()
        .map(|r| r.crop(best.x, template.width()).run_count())
        .sum();
    println!(
        "window at the match holds {window_runs} runs vs {} template pixels — the compressed-domain economy.",
        template.width() * template.height() as u32
    );
}
