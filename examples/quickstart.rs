//! Quickstart: encode two binary rows, diff them three ways, inspect the
//! machine.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rle_systolic::rle::{ops, RleRow};
use rle_systolic::systolic_core::trace::run_traced;
use rle_systolic::systolic_core::{systolic_xor, SystolicArray};

fn main() {
    // The worked example from Figure 1 of the paper: two rows of a binary
    // image in run-length-encoded (start, length) form.
    let img1 = RleRow::from_pairs(40, &[(10, 3), (16, 2), (23, 2), (27, 3)]).unwrap();
    let img2 = RleRow::from_pairs(40, &[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)]).unwrap();

    println!("row 1: {}", ascii(&img1));
    println!("row 2: {}", ascii(&img2));

    // 1. The sequential merge (the paper's baseline, O(k1 + k2)).
    let (seq, seq_stats) = ops::xor_raw_with_stats(&img1, &img2);
    println!(
        "\nsequential XOR  : {:?}  ({} merge iterations)",
        seq.runs(),
        seq_stats.iterations
    );

    // 2. The systolic array (the paper's contribution).
    let (sys, sys_stats) = systolic_xor(&img1, &img2).unwrap();
    println!(
        "systolic XOR    : {:?}  ({} systolic iterations, Theorem-1 bound {})",
        sys.runs(),
        sys_stats.iterations,
        sys_stats.theorem1_bound()
    );
    println!("diff  : {}", ascii(&sys));

    // 3. Watch the machine run, exactly like the paper's Figure 3.
    let mut machine = SystolicArray::load(&img1, &img2).unwrap();
    let trace = run_traced(&mut machine).unwrap();
    println!(
        "\nFigure-3-style execution trace:\n{}",
        trace.to_figure3_table()
    );

    // Similarity metrics that drive the performance story.
    let sim = rle_systolic::rle::metrics::row_similarity(&img1, &img2);
    println!(
        "k1 = {}, k2 = {}, |k1 - k2| = {}, runs in XOR = {}, differing pixels = {}",
        sim.runs_a, sim.runs_b, sim.run_count_difference, sim.runs_in_xor, sim.differing_pixels
    );
}

fn ascii(row: &RleRow) -> String {
    row.to_bits()
        .iter()
        .map(|&b| if b { '#' } else { '.' })
        .collect()
}
