//! PCB inspection — the application that motivated the paper.
//!
//! A reference-based inspection system compares each scanned board layer
//! against the CAD artwork; the image difference marks candidate defects.
//! This example builds a synthetic board layer, injects manufacturing
//! defects into a "scan", runs the difference in compressed form on the
//! systolic machine (rows in parallel across host threads), and reports the
//! defect regions it found.
//!
//! ```text
//! cargo run --example pcb_inspection
//! ```

use rle_systolic::systolic_core::image::xor_image_parallel;
use rle_systolic::workload::pcb::{inspection_pair, typical_defects, PcbParams};

fn main() {
    let params = PcbParams {
        width: 2048,
        height: 512,
        ..Default::default()
    };
    let defects = typical_defects();
    let (reference, scan) = inspection_pair(&params, &defects, 2024);

    println!(
        "reference layer : {}x{}, {} runs, density {:.1}%",
        reference.width(),
        reference.height(),
        reference.total_runs(),
        reference.density() * 100.0
    );
    println!(
        "scanned layer   : {} runs ({} defects injected)",
        scan.total_runs(),
        defects.len()
    );

    // Compressed-domain difference on the systolic machine, one simulated
    // array per worker thread.
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let (diff, stats) = xor_image_parallel(&reference, &scan, threads).unwrap();

    println!(
        "\nsystolic inspection: {} rows, {} total iterations, slowest row {} iterations",
        stats.rows, stats.totals.iterations, stats.max_row_iterations
    );
    println!(
        "sequential merge would touch all {} + {} runs per row pair; the systolic array only \
         pays for the difference.",
        reference.total_runs(),
        scan.total_runs()
    );

    // Group the difference mask into distinct defects with connected-
    // component labelling (8-connectivity), then classify each by shape.
    use rle_systolic::rle_analysis::components::{label_components, Connectivity};
    use rle_systolic::rle_analysis::features::{by_area_desc, classify_defect, shape_features};

    let labeling = label_components(&diff, Connectivity::Eight);
    println!(
        "\ndefect report: {} pixels flagged, {} distinct defects",
        diff.ones(),
        labeling.count()
    );
    for c in by_area_desc(&labeling) {
        let f = shape_features(&c);
        println!(
            "  {:?} at ({:.0}, {:.0}): {} px, bbox {}x{}, fill {:.0}%",
            classify_defect(&c),
            c.cx,
            c.cy,
            c.area,
            c.bbox_width(),
            c.bbox_height(),
            f.fill_ratio * 100.0
        );
    }
    if labeling.count() == 0 {
        println!("  board is clean — scan matches the CAD reference.");
    }
}
