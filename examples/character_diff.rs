//! Character recognition by template differencing.
//!
//! A noisy scanned glyph is compared against every template in the font;
//! the template with the smallest image difference (fewest differing
//! pixels) wins. All comparisons run in compressed form on the systolic
//! machine.
//!
//! ```text
//! cargo run --example character_diff
//! ```

use rle_systolic::bitimg::convert::encode;
use rle_systolic::systolic_core::image::xor_image;
use rle_systolic::workload::glyphs::{perturb, render, render_rle};

fn main() {
    const SCALE: u32 = 3;
    let alphabet: Vec<char> = ('A'..='Z').chain('0'..='9').collect();

    // "Scan" the letter R with some sensor noise.
    let truth = 'R';
    let scanned = perturb(&render(&truth.to_string(), SCALE), 14, 4242);
    let scanned_rle = encode(&scanned);

    println!("scanned glyph (truth = {truth:?}, 14 noise pixels):\n");
    for line in scanned.to_ascii().lines() {
        println!("  {line}");
    }

    // Compare against every template via systolic image difference.
    let mut scores: Vec<(char, u64, u64)> = alphabet
        .iter()
        .map(|&c| {
            let template = render_rle(&c.to_string(), SCALE);
            let (diff, stats) = xor_image(&template, &scanned_rle).unwrap();
            (c, diff.ones(), stats.totals.iterations)
        })
        .collect();
    scores.sort_by_key(|&(_, d, _)| d);

    println!("\nbest matches (differing pixels, systolic iterations across rows):");
    for &(c, d, iters) in scores.iter().take(5) {
        println!("  {c:?}  diff = {d:>4} px   iterations = {iters:>3}");
    }
    let (winner, best, _) = scores[0];
    let (runner_up, second, _) = scores[1];
    println!(
        "\nrecognised {winner:?} (margin {} px over {runner_up:?})",
        second.saturating_sub(best)
    );
    assert_eq!(winner, truth, "the noisy R should still match R best");

    // Show why similarity matters: the systolic cost against the matching
    // template is far below the cost against a dissimilar one.
    let (_, good) = xor_image(&render_rle("R", SCALE), &scanned_rle).unwrap();
    let (_, bad) = xor_image(&render_rle("I", SCALE), &scanned_rle).unwrap();
    println!(
        "systolic iterations vs matching template: {}, vs dissimilar template: {}",
        good.totals.iterations, bad.totals.iterations
    );
}
