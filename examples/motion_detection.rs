//! Motion detection by frame differencing, in the compressed domain.
//!
//! Consecutive thresholded frames of a surveillance-style scene are XORed;
//! changed pixels outline moving objects. Because consecutive frames are
//! highly similar, the systolic iteration count per row stays tiny compared
//! to the sequential merge's `k1 + k2` — the paper's headline regime.
//!
//! ```text
//! cargo run --example motion_detection
//! ```

use rle_systolic::systolic_core::image::xor_image;
use rle_systolic::workload::motion::{Scene, SceneParams};

fn main() {
    let scene = Scene::new(
        SceneParams {
            width: 480,
            height: 96,
            objects: 4,
            max_speed: 2.5,
        },
        77,
    );
    let frames = scene.sequence(6);

    println!(
        "frame-differencing a {}-frame sequence ({}x{} px)\n",
        frames.len(),
        480,
        96
    );

    let mut total_iterations = 0u64;
    let mut total_seq_iterations = 0u64;
    for t in 1..frames.len() {
        let (prev, cur) = (&frames[t - 1], &frames[t]);
        let (diff, stats) = xor_image(prev, cur).unwrap();

        // What the sequential merge would pay on the same rows.
        let seq: u64 = prev
            .rows()
            .iter()
            .zip(cur.rows())
            .map(|(a, b)| {
                rle_systolic::rle::ops::xor_raw_with_stats(a, b)
                    .1
                    .iterations
            })
            .sum();

        total_iterations += stats.totals.iterations;
        total_seq_iterations += seq;
        println!(
            "frame {t:>2}: {:>6} changed px | systolic {:>5} iters (worst row {:>2}) | sequential merge {:>5} iters",
            diff.ones(),
            stats.totals.iterations,
            stats.max_row_iterations,
            seq,
        );

        if t == 1 {
            println!("\nmotion mask after frame 1 (rows 20..44, every 2nd column):");
            let art = diff.to_ascii();
            for line in art.lines().skip(20).take(24) {
                let thin: String = line.chars().step_by(2).collect();
                println!("  {thin}");
            }
            println!();
        }
    }

    println!(
        "\ntotals: systolic {} iterations vs sequential {} — {:.1}x less work in the array",
        total_iterations,
        total_seq_iterations,
        total_seq_iterations as f64 / total_iterations.max(1) as f64
    );
}
