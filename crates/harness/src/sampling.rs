//! Summary statistics over repeated trials.

/// Mean/deviation summary of a sample of measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected); 0 for n < 2.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarises a slice of samples. Returns the zero summary for an empty
    /// slice.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Summarises integer samples.
    #[must_use]
    pub fn of_u64(samples: &[u64]) -> Self {
        let floats: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Self::of(&floats)
    }

    /// Half-width of the normal-approximation 95 % confidence interval for
    /// the mean.
    #[must_use]
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[4.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!((s.min, s.max), (4.0, 4.0));
    }

    #[test]
    fn known_statistics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (2.0, 9.0));
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn u64_samples() {
        let s = Summary::of_u64(&[1, 2, 3]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
    }
}
