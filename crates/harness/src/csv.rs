//! Minimal CSV writing for experiment results.
//!
//! Hand-rolled on purpose: the offline dependency set has no CSV crate, and
//! our needs are a header plus numeric rows.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// An in-memory CSV document.
#[derive(Clone, Debug, Default)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Creates a document with the given column names.
    #[must_use]
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already-formatted fields.
    ///
    /// # Panics
    ///
    /// Panics if the field count does not match the header.
    pub fn push_row<S: Into<String>>(&mut self, fields: impl IntoIterator<Item = S>) {
        let row: Vec<String> = fields.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Appends a row of floats, formatted with 6 significant digits.
    pub fn push_floats(&mut self, fields: impl IntoIterator<Item = f64>) {
        let row: Vec<String> = fields.into_iter().map(|f| format!("{f:.6}")).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the document has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the document as CSV text. Fields containing commas, quotes
    /// or newlines are quoted per RFC 4180.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        write_line(&mut out, &self.header);
        for row in &self.rows {
            write_line(&mut out, row);
        }
        out
    }

    /// Writes the document to a file, creating parent directories.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.render())
    }
}

fn write_line(out: &mut String, fields: &[String]) {
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if field.contains([',', '"', '\n']) {
            let _ = write!(out, "\"{}\"", field.replace('"', "\"\""));
        } else {
            out.push_str(field);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_document() {
        let mut csv = Csv::new(["a", "b"]);
        csv.push_row(["1", "2"]);
        csv.push_floats([0.5, 1.0]);
        assert_eq!(csv.len(), 2);
        assert!(!csv.is_empty());
        assert_eq!(csv.render(), "a,b\n1,2\n0.500000,1.000000\n");
    }

    #[test]
    fn quoting() {
        let mut csv = Csv::new(["x"]);
        csv.push_row(["hello, \"world\""]);
        assert_eq!(csv.render(), "x\n\"hello, \"\"world\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width must match header")]
    fn mismatched_row_panics() {
        let mut csv = Csv::new(["a", "b"]);
        csv.push_row(["only one"]);
    }

    #[test]
    fn write_creates_directories() {
        let dir = std::env::temp_dir().join(format!("rle_systolic_csv_{}", std::process::id()));
        let path = dir.join("deep/nested/out.csv");
        let mut csv = Csv::new(["v"]);
        csv.push_row(["1"]);
        csv.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
