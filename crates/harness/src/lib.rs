//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment in [`experiments`] owns one artefact of the paper's
//! evaluation (see `DESIGN.md` for the full index):
//!
//! | module | paper artefact |
//! |---|---|
//! | [`experiments::fig1`] | Figure 1 — the worked image-difference example |
//! | [`experiments::fig3`] | Figure 3 — the step-by-step systolic trace |
//! | [`experiments::fig5`] | Figure 5 — iterations vs. error percentage |
//! | [`experiments::table1`] | Table 1 — systolic vs. sequential iterations by image size |
//! | [`experiments::observation`] | §5's unproven `k3 + 1` bound, tested empirically |
//! | [`experiments::ablation_bus`] | §6's broadcast-bus speedup, quantified |
//! | [`experiments::coalesce`] | §6's run-coalescing pass, pure systolic vs. bus |
//! | [`experiments::utilization`] | array utilization across the error sweep (our extension) |
//! | [`experiments::hardware`] | per-cell/area cost model over the paper's workload sizes (our extension) |
//! | [`experiments::scaling`] | wall-clock: compressed vs. dense vs. threads |
//!
//! The `repro` binary runs them (`repro all` or one by name), prints the
//! paper-style tables/series, and writes CSVs under `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ascii_plot;
pub mod csv;
pub mod experiments;
pub mod sampling;
pub mod svg_plot;
pub mod table;
