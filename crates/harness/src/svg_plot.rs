//! Minimal SVG line charts — publishable figure artefacts without a
//! plotting dependency.
//!
//! The experiments print ASCII charts for the terminal ([`crate::ascii_plot`])
//! and write these SVGs next to the CSVs so the reproduced Figure 5 (and
//! friends) can be dropped straight into a report.

use crate::ascii_plot::Series;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Chart geometry and labels.
#[derive(Clone, Debug)]
pub struct SvgChart {
    /// Title drawn above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Pixel width of the whole image.
    pub width: u32,
    /// Pixel height of the whole image.
    pub height: u32,
}

impl Default for SvgChart {
    fn default() -> Self {
        Self {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width: 720,
            height: 480,
        }
    }
}

/// Series stroke colours, cycled.
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;

impl SvgChart {
    /// Renders the series as a complete SVG document.
    #[must_use]
    pub fn render(&self, series: &[Series]) -> String {
        let (w, h) = (f64::from(self.width), f64::from(self.height));
        let plot_w = w - MARGIN_L - MARGIN_R;
        let plot_h = h - MARGIN_T - MARGIN_B;

        let all: Vec<(f64, f64)> = series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut y_max = f64::NEG_INFINITY;
        for &(x, y) in &all {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_max = y_max.max(y);
        }
        if all.is_empty() {
            x_min = 0.0;
            x_max = 1.0;
            y_max = 1.0;
        }
        let y_min = 0.0;
        if (x_max - x_min).abs() < f64::EPSILON {
            x_max = x_min + 1.0;
        }
        if y_max <= y_min {
            y_max = y_min + 1.0;
        }

        let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
        let sy = |y: f64| MARGIN_T + plot_h - (y - y_min) / (y_max - y_min) * plot_h;

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}" font-family="sans-serif">"#,
            self.width, self.height, self.width, self.height
        );
        let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="20" text-anchor="middle" font-size="14">{}</text>"#,
            w / 2.0,
            escape(&self.title)
        );

        // Axes.
        let _ = writeln!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h,
            MARGIN_L + plot_w,
            MARGIN_T + plot_h
        );
        let _ = writeln!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h
        );

        // Ticks and grid: 5 intervals each axis.
        for i in 0..=5 {
            let fx = x_min + (x_max - x_min) * f64::from(i) / 5.0;
            let px = sx(fx);
            let _ = writeln!(
                svg,
                r##"<line x1="{px}" y1="{MARGIN_T}" x2="{px}" y2="{}" stroke="#ddd"/>"##,
                MARGIN_T + plot_h
            );
            let _ = writeln!(
                svg,
                r#"<text x="{px}" y="{}" text-anchor="middle" font-size="11">{}</text>"#,
                MARGIN_T + plot_h + 16.0,
                format_tick(fx)
            );
            let fy = y_min + (y_max - y_min) * f64::from(i) / 5.0;
            let py = sy(fy);
            let _ = writeln!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{py}" x2="{}" y2="{py}" stroke="#ddd"/>"##,
                MARGIN_L + plot_w
            );
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="end" font-size="11">{}</text>"#,
                MARGIN_L - 6.0,
                py + 4.0,
                format_tick(fy)
            );
        }

        // Axis labels.
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            h - 10.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            r#"<text x="14" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 14 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Series polylines + markers + legend.
        for (si, s) in series.iter().enumerate() {
            let color = COLORS[si % COLORS.len()];
            let mut sorted = s.points.clone();
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
            let pts: String = sorted
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1} ", sx(x), sy(y)))
                .collect();
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.5"/>"#,
                pts.trim_end()
            );
            for &(x, y) in &sorted {
                let _ = writeln!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="2.5" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            let ly = MARGIN_T + 14.0 * si as f64 + 4.0;
            let _ = writeln!(
                svg,
                r#"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
                MARGIN_L + 10.0,
                MARGIN_L + 34.0
            );
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{}" font-size="11">{}</text>"#,
                MARGIN_L + 40.0,
                ly + 4.0,
                escape(&s.label)
            );
        }

        svg.push_str("</svg>\n");
        svg
    }

    /// Renders and writes to a file, creating parent directories.
    pub fn write_to(&self, series: &[Series], path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render(series))
    }
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> SvgChart {
        SvgChart {
            title: "Figure 5 <reproduced>".into(),
            x_label: "percent different".into(),
            y_label: "iterations".into(),
            ..Default::default()
        }
    }

    fn sample_series() -> Vec<Series> {
        vec![
            Series::new(
                "iterations",
                (0..10).map(|i| (f64::from(i), f64::from(i * i))).collect(),
            ),
            Series::new(
                "bound",
                (0..10)
                    .map(|i| (f64::from(i), f64::from(i * i + 5)))
                    .collect(),
            ),
        ]
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = chart().render(&sample_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Balanced text/line/polyline elements: every opened tag closes.
        for tag in ["<svg", "</svg>"] {
            assert_eq!(svg.matches(tag).count(), 1, "{tag}");
        }
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.matches("<circle").count() >= 20);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let svg = chart().render(&sample_series());
        assert!(svg.contains("Figure 5 &lt;reproduced&gt;"));
        assert!(!svg.contains("<reproduced>"));
    }

    #[test]
    fn legend_contains_series_labels() {
        let svg = chart().render(&sample_series());
        assert!(svg.contains(">iterations</text>"));
        assert!(svg.contains(">bound</text>"));
    }

    #[test]
    fn empty_series_render_without_panic() {
        let svg = chart().render(&[]);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn degenerate_ranges_do_not_divide_by_zero() {
        let flat = vec![Series::new("flat", vec![(2.0, 5.0), (2.0, 5.0)])];
        let svg = chart().render(&flat);
        assert!(svg.contains("<polyline"));
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join(format!("svg_test_{}", std::process::id()));
        let path = dir.join("nested/fig.svg");
        chart().write_to(&sample_series(), &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("</svg>"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
