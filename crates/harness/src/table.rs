//! Plain-text table rendering for paper-style result tables.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column names.
    #[must_use]
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the field count does not match the header.
    pub fn push_row<S: Into<String>>(&mut self, fields: impl IntoIterator<Item = S>) {
        let row: Vec<String> = fields.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Renders with column alignment: first column left, the rest right.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, field) in row.iter().enumerate() {
                widths[i] = widths[i].max(field.len());
            }
        }
        let mut out = String::new();
        let emit = |row: &[String], out: &mut String| {
            for (i, field) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{field:<w$}", w = widths[i]));
                } else {
                    out.push_str(&format!("{field:>w$}", w = widths[i]));
                }
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["Algorithm", "128", "2048"]);
        t.push_row(["Systolic", "5.2", "5.1"]);
        t.push_row(["Sequential", "12.0", "190.0"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Algorithm"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right alignment: the numeric columns end at the same offset.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width must match header")]
    fn wrong_width_panics() {
        let mut t = TextTable::new(["a"]);
        t.push_row(["1", "2"]);
    }
}
