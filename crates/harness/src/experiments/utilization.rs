//! Experiment E14 — hardware utilization of the array (our extension).
//!
//! The machine is provisioned with `k1 + k2` cells (Corollary 1.2), but on
//! similar images most pairs annihilate within a few iterations, leaving
//! silicon idle while the surviving runs settle. This experiment measures
//! the mean fraction of busy cells per iteration across the error sweep —
//! the utilization a hardware designer would weigh against the array's
//! constant-time promise.

use crate::csv::Csv;
use crate::sampling::Summary;
use crate::table::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::Pixel;
use workload::{ErrorModel, GenParams, RowGenerator};

/// Sweep configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct UtilizationConfig {
    /// Row width.
    pub width: Pixel,
    /// Foreground density.
    pub density: f64,
    /// Error percentages to sweep.
    pub error_percents: Vec<f64>,
    /// Trials per point.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for UtilizationConfig {
    fn default() -> Self {
        Self {
            width: 10_000,
            density: 0.3,
            error_percents: vec![1.0, 5.0, 10.0, 20.0, 35.0, 47.0],
            trials: 15,
            seed: 0x0717_1124,
        }
    }
}

/// One point of the sweep.
#[derive(Clone, Debug)]
pub struct UtilizationPoint {
    /// Error percentage.
    pub percent: f64,
    /// Cells provisioned (`k1 + k2`).
    pub cells: Summary,
    /// Iterations run.
    pub iterations: Summary,
    /// Mean busy-cell fraction per iteration.
    pub utilization: Summary,
}

/// Full sweep result.
#[derive(Clone, Debug)]
pub struct UtilizationResult {
    /// The configuration that produced it.
    pub config: UtilizationConfig,
    /// One entry per error percentage.
    pub points: Vec<UtilizationPoint>,
}

/// Runs the sweep.
#[must_use]
pub fn run(config: &UtilizationConfig) -> UtilizationResult {
    let params = GenParams::for_density(config.width, config.density);
    let points = config
        .error_percents
        .iter()
        .enumerate()
        .map(|(pi, &percent)| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ ((pi as u64) << 9));
            let mut cells = Vec::new();
            let mut iterations = Vec::new();
            let mut utilization = Vec::new();
            for _ in 0..config.trials {
                let a = RowGenerator::new(params, rng.gen()).next_row();
                let model = ErrorModel::fraction(percent / 100.0);
                let b = workload::errors::apply_errors_rng(&a, &model, &mut rng);
                let (_, stats) = systolic_core::systolic_xor(&a, &b).expect("systolic run");
                cells.push(stats.cells as f64);
                iterations.push(stats.iterations as f64);
                utilization.push(stats.utilization().unwrap_or(0.0));
            }
            UtilizationPoint {
                percent,
                cells: Summary::of(&cells),
                iterations: Summary::of(&iterations),
                utilization: Summary::of(&utilization),
            }
        })
        .collect();
    UtilizationResult {
        config: config.clone(),
        points,
    }
}

/// Renders the utilization table.
#[must_use]
pub fn report(result: &UtilizationResult) -> String {
    let mut table = TextTable::new(["err%", "cells (k1+k2)", "iterations", "busy cells / iter"]);
    for p in &result.points {
        table.push_row([
            format!("{:.1}", p.percent),
            format!("{:.0}", p.cells.mean),
            format!("{:.1}", p.iterations.mean),
            format!("{:.1}%", p.utilization.mean * 100.0),
        ]);
    }
    format!(
        "Array utilization (our extension) — fraction of cells holding a run per iteration\n\n{}",
        table.render()
    )
}

/// Exports as CSV.
#[must_use]
pub fn to_csv(result: &UtilizationResult) -> Csv {
    let mut csv = Csv::new(["percent", "cells", "iterations", "utilization"]);
    for p in &result.points {
        csv.push_floats([
            p.percent,
            p.cells.mean,
            p.iterations.mean,
            p.utilization.mean,
        ]);
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> UtilizationConfig {
        UtilizationConfig {
            width: 2_000,
            error_percents: vec![2.0, 40.0],
            trials: 5,
            ..Default::default()
        }
    }

    #[test]
    fn utilization_is_a_fraction_and_grows_with_dissimilarity() {
        let r = run(&small());
        for p in &r.points {
            assert!(
                p.utilization.mean > 0.0 && p.utilization.mean <= 1.0,
                "{p:?}"
            );
        }
        // More errors → more surviving runs → busier array.
        assert!(
            r.points[1].utilization.mean > r.points[0].utilization.mean,
            "{:?}",
            r.points
                .iter()
                .map(|p| p.utilization.mean)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn report_and_csv() {
        let r = run(&small());
        assert!(report(&r).contains("utilization"));
        assert_eq!(to_csv(&r).len(), 2);
    }
}
