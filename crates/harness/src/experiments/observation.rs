//! Experiment E9 — the paper's unproven Observation (§5):
//!
//! > "If the runs of the two input bitstrings are encoded such that none of
//! > the runs are adjacent ... then the systolic XOR algorithm terminates
//! > after at most `k3 + 1` steps, where `k3` is the number of runs in the
//! > output from the systolic algorithm."
//!
//! The authors state they have not proven this bound. We stress-test it
//! empirically over both similar pairs (error-derived) and independent
//! pairs, recording every violation and how close typical runs come to the
//! bound. A reproducible counterexample would be a genuine research
//! finding; EXPERIMENTS.md records the outcome.

use crate::csv::Csv;
use crate::table::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::{Pixel, RleRow};
use workload::{ErrorModel, GenParams, RowGenerator};

/// Stress-test configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ObservationConfig {
    /// Row width.
    pub width: Pixel,
    /// Foreground density.
    pub density: f64,
    /// Trials with error-derived (similar) pairs.
    pub similar_trials: usize,
    /// Trials with independently drawn pairs.
    pub independent_trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ObservationConfig {
    fn default() -> Self {
        Self {
            width: 4_096,
            density: 0.3,
            similar_trials: 2_000,
            independent_trials: 2_000,
            seed: 0x0B5E_51E0,
        }
    }
}

/// A counterexample to the Observation, if one is ever found.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The first input row's runs as (start, len) pairs.
    pub a: Vec<(Pixel, Pixel)>,
    /// The second input row's runs.
    pub b: Vec<(Pixel, Pixel)>,
    /// Iterations taken.
    pub iterations: u64,
    /// Runs in the systolic output (`k3`).
    pub k3: usize,
}

/// Aggregate outcome.
#[derive(Clone, Debug)]
pub struct ObservationResult {
    /// The configuration that produced it.
    pub config: ObservationConfig,
    /// Total pairs tested.
    pub trials: usize,
    /// Counterexamples found (empty = Observation held).
    pub violations: Vec<Violation>,
    /// Largest observed `iterations − k3` (≤ 1 if the Observation holds).
    pub max_slack: i64,
    /// Pairs for which `iterations == k3 + 1` exactly (bound is tight).
    pub tight_cases: usize,
    /// Mean of `k3 + 1 − iterations` (how much headroom typical runs have).
    pub mean_headroom: f64,
}

/// Runs the stress test.
#[must_use]
pub fn run(config: &ObservationConfig) -> ObservationResult {
    let params = GenParams::for_density(config.width, config.density);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut violations = Vec::new();
    let mut max_slack = i64::MIN;
    let mut tight_cases = 0usize;
    let mut headroom_sum = 0f64;
    let mut trials = 0usize;

    let mut check = |a: &RleRow, b: &RleRow| {
        debug_assert!(a.is_canonical() && b.is_canonical());
        let (_, stats) = systolic_core::systolic_xor(a, b).expect("systolic run");
        let k3 = stats.output_runs as i64;
        let slack = stats.iterations as i64 - k3;
        max_slack = max_slack.max(slack);
        if slack > 1 {
            violations.push(Violation {
                a: a.runs().iter().map(|r| (r.start(), r.len())).collect(),
                b: b.runs().iter().map(|r| (r.start(), r.len())).collect(),
                iterations: stats.iterations,
                k3: stats.output_runs,
            });
        }
        if slack == 1 {
            tight_cases += 1;
        }
        headroom_sum += (k3 + 1 - stats.iterations as i64) as f64;
        trials += 1;
    };

    for _ in 0..config.similar_trials {
        let a = RowGenerator::new(params, rng.gen()).next_row();
        let fraction = rng.gen_range(0.005..0.4);
        let model = ErrorModel::fraction(fraction);
        let b = workload::errors::apply_errors_rng(&a, &model, &mut rng);
        check(&a, &b);
    }
    for _ in 0..config.independent_trials {
        let a = RowGenerator::new(params, rng.gen()).next_row();
        let b = RowGenerator::new(params, rng.gen()).next_row();
        check(&a, &b);
    }

    let mean_headroom = if trials == 0 {
        0.0
    } else {
        headroom_sum / trials as f64
    };
    ObservationResult {
        config: config.clone(),
        trials,
        violations,
        max_slack: if trials == 0 { 0 } else { max_slack },
        tight_cases,
        mean_headroom,
    }
}

/// Renders the verdict.
#[must_use]
pub fn report(result: &ObservationResult) -> String {
    let mut table = TextTable::new(["quantity", "value"]);
    table.push_row(["pairs tested", &result.trials.to_string()]);
    table.push_row([
        "violations (iterations > k3 + 1)",
        &result.violations.len().to_string(),
    ]);
    table.push_row([
        "max observed iterations − k3",
        &result.max_slack.to_string(),
    ]);
    table.push_row([
        "cases exactly at the bound",
        &result.tight_cases.to_string(),
    ]);
    table.push_row([
        "mean headroom (k3 + 1 − iterations)",
        &format!("{:.2}", result.mean_headroom),
    ]);
    let verdict = if result.violations.is_empty() {
        "Observation HELD on every tested pair (consistent with the paper's conjecture)."
    } else {
        "Observation VIOLATED — counterexamples recorded below!"
    };
    let mut out = format!(
        "Observation (§5) — systolic iterations ≤ k3 + 1 for fully-compressed inputs\n\n{}\n{verdict}\n",
        table.render()
    );
    for v in result.violations.iter().take(5) {
        out.push_str(&format!(
            "  counterexample: iterations={} k3={} a={:?} b={:?}\n",
            v.iterations, v.k3, v.a, v.b
        ));
    }
    out
}

/// Exports summary numbers as CSV.
#[must_use]
pub fn to_csv(result: &ObservationResult) -> Csv {
    let mut csv = Csv::new([
        "trials",
        "violations",
        "max_slack",
        "tight_cases",
        "mean_headroom",
    ]);
    csv.push_row([
        result.trials.to_string(),
        result.violations.len().to_string(),
        result.max_slack.to_string(),
        result.tight_cases.to_string(),
        format!("{:.4}", result.mean_headroom),
    ]);
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_holds_on_small_stress() {
        let r = run(&ObservationConfig {
            width: 1_024,
            similar_trials: 150,
            independent_trials: 150,
            ..Default::default()
        });
        assert_eq!(r.trials, 300);
        assert!(
            r.violations.is_empty(),
            "found counterexamples to the paper's Observation: {:?}",
            r.violations.first()
        );
        assert!(r.max_slack <= 1);
    }

    #[test]
    fn report_mentions_verdict() {
        let r = run(&ObservationConfig {
            width: 512,
            similar_trials: 20,
            independent_trials: 20,
            ..Default::default()
        });
        let rep = report(&r);
        assert!(rep.contains("HELD") || rep.contains("VIOLATED"));
        assert_eq!(to_csv(&r).len(), 1);
    }
}
