//! Experiment E11/E12 — wall-clock measurements on the host:
//!
//! * compressed-domain algorithms (sequential RLE merge, systolic
//!   simulation) vs. the uncompressed baselines (word-wise dense XOR,
//!   multi-threaded dense XOR) on the same images — the trade-off the
//!   paper's conclusions discuss;
//! * scaling of the parallel systolic engine with worker threads on a very
//!   large row pair (our simulator substrate, not a paper artefact).
//!
//! Criterion benches in `crates/bench` measure the same quantities with
//! statistical rigour; this experiment gives quick one-shot numbers inside
//! the `repro` report.

use crate::csv::Csv;
use crate::table::TextTable;
use bitimg::convert::decode_row;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::Pixel;
use std::time::Instant;
use workload::{ErrorModel, GenParams, RowGenerator};

/// Configuration of the wall-clock comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingConfig {
    /// Row width for the algorithm comparison.
    pub width: Pixel,
    /// Foreground density.
    pub density: f64,
    /// Error fraction between the two rows.
    pub error_fraction: f64,
    /// Row width for the thread-scaling measurement.
    pub big_width: Pixel,
    /// Worker thread counts to measure.
    pub threads: Vec<usize>,
    /// Repetitions per measurement (the minimum is reported).
    pub reps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        Self {
            width: 1_000_000,
            density: 0.3,
            error_fraction: 0.01,
            big_width: 8_000_000,
            threads: vec![1, 2, 4, 8],
            reps: 3,
            seed: 0x5CA1_AB1E,
        }
    }
}

/// One named wall-clock measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// What was measured.
    pub label: String,
    /// Best-of-`reps` wall-clock in microseconds.
    pub micros: f64,
}

/// Full result.
#[derive(Clone, Debug)]
pub struct ScalingResult {
    /// The configuration that produced it.
    pub config: ScalingConfig,
    /// Algorithm comparison on the same row pair.
    pub algorithms: Vec<Measurement>,
    /// Parallel-engine scaling (label = thread count).
    pub engine_scaling: Vec<Measurement>,
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// Runs both measurements.
#[must_use]
pub fn run(config: &ScalingConfig) -> ScalingResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let params = GenParams::for_density(config.width, config.density);
    let a = RowGenerator::new(params, rng.gen()).next_row();
    let model = ErrorModel::fraction(config.error_fraction);
    let b = workload::errors::apply_errors_rng(&a, &model, &mut rng);
    let (dense_a, dense_b) = (decode_row(&a), decode_row(&b));

    let mut algorithms = Vec::new();
    algorithms.push(Measurement {
        label: format!(
            "sequential RLE merge ({} + {} runs)",
            a.run_count(),
            b.run_count()
        ),
        micros: best_of(config.reps, || {
            std::hint::black_box(rle::ops::xor_raw_with_stats(&a, &b));
        }),
    });
    algorithms.push(Measurement {
        label: "systolic simulation (sequential engine)".into(),
        micros: best_of(config.reps, || {
            let mut m = systolic_core::SystolicArray::load(&a, &b).unwrap();
            m.enable_invariant_checks(false);
            m.run().unwrap();
            std::hint::black_box(m.stats().iterations);
        }),
    });
    algorithms.push(Measurement {
        label: format!("dense word XOR ({} px)", config.width),
        micros: best_of(config.reps, || {
            std::hint::black_box(bitimg::ops::xor_row(&dense_a, &dense_b));
        }),
    });
    algorithms.push(Measurement {
        label: "dense XOR + re-encode to RLE".into(),
        micros: best_of(config.reps, || {
            let x = bitimg::ops::xor_row(&dense_a, &dense_b);
            std::hint::black_box(bitimg::convert::encode_row(&x));
        }),
    });

    // Thread scaling on a much larger pair.
    let big_params = GenParams::for_density(config.big_width, config.density);
    let big_a = RowGenerator::new(big_params, rng.gen()).next_row();
    let big_b = workload::errors::apply_errors_rng(&big_a, &model, &mut rng);
    let engine_scaling = config
        .threads
        .iter()
        .map(|&t| Measurement {
            label: format!("{t} threads"),
            micros: best_of(config.reps, || {
                let mut m = systolic_core::SystolicArray::load(&big_a, &big_b).unwrap();
                m.enable_invariant_checks(false);
                systolic_core::engine::parallel::run_parallel(&mut m, t).unwrap();
                std::hint::black_box(m.stats().iterations);
            }),
        })
        .collect();

    ScalingResult {
        config: config.clone(),
        algorithms,
        engine_scaling,
    }
}

/// Renders both tables.
#[must_use]
pub fn report(result: &ScalingResult) -> String {
    let mut alg = TextTable::new(["algorithm", "best wall-clock"]);
    for m in &result.algorithms {
        alg.push_row([m.label.clone(), format_micros(m.micros)]);
    }
    let mut eng = TextTable::new(["parallel engine", "best wall-clock", "speedup vs 1 thread"]);
    let base = result.engine_scaling.first().map_or(1.0, |m| m.micros);
    for m in &result.engine_scaling {
        eng.push_row([
            m.label.clone(),
            format_micros(m.micros),
            format!("{:.2}x", base / m.micros),
        ]);
    }
    format!(
        "Wall-clock comparison ({} px rows, {:.1}% errors, host machine)\n\n{}\nParallel systolic engine scaling ({} px rows)\n\n{}",
        result.config.width,
        result.config.error_fraction * 100.0,
        alg.render(),
        result.config.big_width,
        eng.render()
    )
}

fn format_micros(us: f64) -> String {
    if us > 10_000.0 {
        format!("{:.2} ms", us / 1000.0)
    } else {
        format!("{us:.0} µs")
    }
}

/// Exports as CSV.
#[must_use]
pub fn to_csv(result: &ScalingResult) -> Csv {
    let mut csv = Csv::new(["kind", "label", "micros"]);
    for m in &result.algorithms {
        csv.push_row([
            "algorithm".to_string(),
            m.label.clone(),
            format!("{:.1}", m.micros),
        ]);
    }
    for m in &result.engine_scaling {
        csv.push_row([
            "engine".to_string(),
            m.label.clone(),
            format!("{:.1}", m.micros),
        ]);
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScalingConfig {
        ScalingConfig {
            width: 20_000,
            big_width: 60_000,
            threads: vec![1, 2],
            reps: 1,
            ..Default::default()
        }
    }

    #[test]
    fn produces_all_measurements() {
        let r = run(&tiny());
        assert_eq!(r.algorithms.len(), 4);
        assert_eq!(r.engine_scaling.len(), 2);
        for m in r.algorithms.iter().chain(&r.engine_scaling) {
            assert!(m.micros > 0.0, "{}", m.label);
        }
    }

    #[test]
    fn report_and_csv() {
        let r = run(&tiny());
        let rep = report(&r);
        assert!(rep.contains("Wall-clock"));
        assert!(rep.contains("threads"));
        assert_eq!(to_csv(&r).len(), 6);
    }
}
