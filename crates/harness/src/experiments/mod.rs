//! One module per paper artefact; see the crate docs for the index.

pub mod ablation_bus;
pub mod coalesce;
pub mod fig1;
pub mod fig3;
pub mod fig5;
pub mod hardware;
pub mod observation;
pub mod scaling;
pub mod table1;
pub mod utilization;
