//! Experiment E5 — Table 1: average iterations of the systolic vs. the
//! sequential algorithm as the image size grows, for two error regimes:
//!
//! * errors ≈ 3.5 % of the image — both algorithms scale linearly with the
//!   image size;
//! * errors fixed at 6 runs of 4 pixels — the sequential algorithm still
//!   scales linearly (it always walks all `k1 + k2` runs) while the
//!   systolic algorithm stays flat at a handful of iterations ("averages
//!   just over 5 iterations regardless of how large the image gets").

use crate::csv::Csv;
use crate::sampling::Summary;
use crate::table::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::Pixel;
use workload::{ErrorModel, GenParams, RowGenerator};

/// Sweep configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Config {
    /// Image sizes (row widths); the paper sweeps 128–2048.
    pub sizes: Vec<Pixel>,
    /// Foreground density of the base image.
    pub density: f64,
    /// Fraction of pixels flipped in the percentage regime (paper: 3.5 %).
    pub error_fraction: f64,
    /// (count, length) of error runs in the fixed regime (paper: 6 × 4 px).
    pub fixed_errors: (usize, Pixel),
    /// Trials per cell.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Self {
            sizes: vec![128, 256, 512, 1024, 2048],
            density: 0.3,
            error_fraction: 0.035,
            fixed_errors: (6, 4),
            trials: 200,
            seed: 0x7AB1_E001,
        }
    }
}

/// Measured iteration counts for one (algorithm, regime, size) cell.
#[derive(Clone, Debug)]
pub struct Table1Cell {
    /// Image size in pixels.
    pub size: Pixel,
    /// Systolic iterations.
    pub systolic: Summary,
    /// Sequential merge iterations.
    pub sequential: Summary,
}

/// Full table: one row of cells per error regime.
#[derive(Clone, Debug)]
pub struct Table1Result {
    /// The configuration that produced it.
    pub config: Table1Config,
    /// Cells for the percentage regime.
    pub percent_regime: Vec<Table1Cell>,
    /// Cells for the fixed-run-count regime.
    pub fixed_regime: Vec<Table1Cell>,
}

/// Runs both regimes over all sizes.
#[must_use]
pub fn run(config: &Table1Config) -> Table1Result {
    let percent_model = ErrorModel::fraction(config.error_fraction);
    let fixed_model = ErrorModel::fixed(config.fixed_errors.0, config.fixed_errors.1);
    let percent_regime = sweep(config, &percent_model, 0x5050);
    let fixed_regime = sweep(config, &fixed_model, 0xF1F1);
    Table1Result {
        config: config.clone(),
        percent_regime,
        fixed_regime,
    }
}

fn sweep(config: &Table1Config, model: &ErrorModel, salt: u64) -> Vec<Table1Cell> {
    config
        .sizes
        .iter()
        .map(|&size| {
            let params = GenParams::for_density(size, config.density);
            let mut systolic = Vec::with_capacity(config.trials);
            let mut sequential = Vec::with_capacity(config.trials);
            let mut rng = StdRng::seed_from_u64(config.seed ^ salt ^ u64::from(size));
            for _ in 0..config.trials {
                let a = RowGenerator::new(params, rng.gen()).next_row();
                let b = workload::errors::apply_errors_rng(&a, model, &mut rng);
                let (_, sys_stats) = systolic_core::systolic_xor(&a, &b).expect("systolic run");
                let (_, seq_stats) = rle::ops::xor_raw_with_stats(&a, &b);
                systolic.push(sys_stats.iterations as f64);
                sequential.push(seq_stats.iterations as f64);
            }
            Table1Cell {
                size,
                systolic: Summary::of(&systolic),
                sequential: Summary::of(&sequential),
            }
        })
        .collect()
}

/// Renders the paper-style table: four algorithm/regime rows, one column
/// per image size.
#[must_use]
pub fn report(result: &Table1Result) -> String {
    let mut header = vec!["Algorithm".to_string(), "Errors".to_string()];
    header.extend(result.config.sizes.iter().map(ToString::to_string));
    let mut table = TextTable::new(header);

    let percent_label = format!("{:.1}%", result.config.error_fraction * 100.0);
    let fixed_label = format!("{} runs", result.config.fixed_errors.0);
    type RowSpec<'a> = (&'a str, String, &'a [Table1Cell], fn(&Table1Cell) -> f64);
    let rows: [RowSpec; 4] = [
        (
            "Systolic",
            percent_label.clone(),
            &result.percent_regime,
            |c| c.systolic.mean,
        ),
        ("Sequential", percent_label, &result.percent_regime, |c| {
            c.sequential.mean
        }),
        ("Systolic", fixed_label.clone(), &result.fixed_regime, |c| {
            c.systolic.mean
        }),
        ("Sequential", fixed_label, &result.fixed_regime, |c| {
            c.sequential.mean
        }),
    ];
    for (alg, regime, cells, pick) in rows {
        let mut row = vec![alg.to_string(), regime];
        row.extend(cells.iter().map(|c| format!("{:.1}", pick(c))));
        table.push_row(row);
    }
    format!(
        "Table 1 — average iterations vs image size (runs 4–20 px, error runs 2–6 px)\n\n{}",
        table.render()
    )
}

/// Exports all cells as CSV.
#[must_use]
pub fn to_csv(result: &Table1Result) -> Csv {
    let mut csv = Csv::new([
        "regime",
        "size",
        "systolic_mean",
        "systolic_std",
        "sequential_mean",
        "sequential_std",
    ]);
    for (regime, cells) in [
        ("percent", &result.percent_regime),
        ("fixed", &result.fixed_regime),
    ] {
        for c in cells {
            csv.push_row([
                regime.to_string(),
                c.size.to_string(),
                format!("{:.3}", c.systolic.mean),
                format!("{:.3}", c.systolic.std_dev),
                format!("{:.3}", c.sequential.mean),
                format!("{:.3}", c.sequential.std_dev),
            ]);
        }
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Table1Config {
        Table1Config {
            sizes: vec![128, 512, 2048],
            trials: 30,
            ..Default::default()
        }
    }

    #[test]
    fn shapes_match_the_papers_claims() {
        let r = run(&small_config());

        // Percentage regime: both algorithms grow roughly linearly.
        let sys = &r.percent_regime;
        assert!(
            sys.last().unwrap().systolic.mean > sys[0].systolic.mean * 4.0,
            "systolic at 3.5% must grow with size: {:?}",
            sys.iter().map(|c| c.systolic.mean).collect::<Vec<_>>()
        );
        assert!(sys.last().unwrap().sequential.mean > sys[0].sequential.mean * 4.0);

        // Fixed regime: sequential keeps growing, systolic stays flat.
        let fixed = &r.fixed_regime;
        assert!(fixed.last().unwrap().sequential.mean > fixed[0].sequential.mean * 4.0);
        let flat_lo = fixed[0].systolic.mean;
        let flat_hi = fixed.last().unwrap().systolic.mean;
        assert!(
            flat_hi < flat_lo * 2.0 + 4.0,
            "systolic with fixed errors must stay nearly constant: {flat_lo} -> {flat_hi}"
        );
        // "averages just over 5 iterations regardless of how large the
        // image gets" — allow a loose band around that.
        assert!(
            flat_hi < 15.0,
            "expected a handful of iterations, got {flat_hi}"
        );
    }

    #[test]
    fn sequential_tracks_total_runs() {
        // The sequential cost is Θ(k1 + k2): with ~12px mean run and 30%
        // density, a 2048px row has ~51 runs per side.
        let r = run(&small_config());
        let big = r.percent_regime.last().unwrap();
        assert!(big.sequential.mean > 50.0, "{}", big.sequential.mean);
    }

    #[test]
    fn report_and_csv() {
        let r = run(&Table1Config {
            sizes: vec![128, 256],
            trials: 5,
            ..Default::default()
        });
        let rep = report(&r);
        assert!(rep.contains("Systolic"));
        assert!(rep.contains("3.5%"));
        assert!(rep.contains("6 runs"));
        assert!(rep.contains("128"));
        assert_eq!(to_csv(&r).len(), 4);
    }
}
