//! Experiment E10 — the broadcast-bus ablation.
//!
//! §6 conjectures that a broadcast bus could perform the shift cascades
//! "more efficiently thus significantly decreasing the running time". This
//! experiment quantifies the claim on the Figure-5 workload: for each error
//! percentage it measures iterations of the pure machine vs. the
//! bus-assisted machine (bus widths 1 and 4) and the shift traffic saved.

use crate::csv::Csv;
use crate::sampling::Summary;
use crate::table::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::Pixel;
use systolic_core::bus::BusArray;
use workload::{ErrorModel, GenParams, RowGenerator};

/// Sweep configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct BusConfig {
    /// Row width.
    pub width: Pixel,
    /// Foreground density.
    pub density: f64,
    /// Error percentages to sweep.
    pub error_percents: Vec<f64>,
    /// Trials per point.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            width: 10_000,
            density: 0.3,
            error_percents: vec![1.0, 2.5, 5.0, 10.0, 20.0, 35.0, 50.0, 70.0],
            trials: 15,
            seed: 0xB005_1999,
        }
    }
}

/// One point of the ablation.
#[derive(Clone, Debug)]
pub struct BusPoint {
    /// Error percentage.
    pub percent: f64,
    /// Pure systolic iterations.
    pub pure_iters: Summary,
    /// Bus-assisted iterations (single transaction per cycle).
    pub bus1_iters: Summary,
    /// Bus-assisted iterations (four transactions per cycle).
    pub bus4_iters: Summary,
    /// Mesh-assisted iterations (segment inserts, unlimited disjoint
    /// deliveries).
    pub mesh_iters: Summary,
    /// Shift data movement of the pure machine.
    pub pure_shifts: Summary,
    /// Shift data movement with the single bus.
    pub bus1_shifts: Summary,
}

/// Full ablation result.
#[derive(Clone, Debug)]
pub struct BusResult {
    /// The configuration that produced it.
    pub config: BusConfig,
    /// One entry per error percentage.
    pub points: Vec<BusPoint>,
}

/// Runs the ablation.
#[must_use]
pub fn run(config: &BusConfig) -> BusResult {
    let params = GenParams::for_density(config.width, config.density);
    let points = config
        .error_percents
        .iter()
        .enumerate()
        .map(|(pi, &percent)| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ (pi as u64) << 17);
            let mut pure_iters = Vec::new();
            let mut bus1_iters = Vec::new();
            let mut bus4_iters = Vec::new();
            let mut mesh_iters = Vec::new();
            let mut pure_shifts = Vec::new();
            let mut bus1_shifts = Vec::new();
            for _ in 0..config.trials {
                let a = RowGenerator::new(params, rng.gen()).next_row();
                let model = ErrorModel::fraction(percent / 100.0);
                let b = workload::errors::apply_errors_rng(&a, &model, &mut rng);

                let (pure_row, pure) = systolic_core::systolic_xor(&a, &b).expect("pure run");
                let (bus1_row, bus1) =
                    systolic_core::bus::systolic_xor_bus(&a, &b).expect("bus run");
                let mut wide = BusArray::load(&a, &b)
                    .expect("bus4 load")
                    .with_bus_capacity(4);
                wide.run().expect("bus4 run");
                let bus4 = *wide.stats();
                let (mesh_row, mesh) =
                    systolic_core::bus::systolic_xor_mesh(&a, &b).expect("mesh run");

                assert_eq!(pure_row, bus1_row, "bus must not change the result");
                assert_eq!(pure_row, mesh_row, "mesh must not change the result");
                pure_iters.push(pure.iterations as f64);
                bus1_iters.push(bus1.iterations as f64);
                bus4_iters.push(bus4.iterations as f64);
                mesh_iters.push(mesh.iterations as f64);
                pure_shifts.push(pure.run_shifts as f64);
                bus1_shifts.push(bus1.run_shifts as f64);
            }
            BusPoint {
                percent,
                pure_iters: Summary::of(&pure_iters),
                bus1_iters: Summary::of(&bus1_iters),
                bus4_iters: Summary::of(&bus4_iters),
                mesh_iters: Summary::of(&mesh_iters),
                pure_shifts: Summary::of(&pure_shifts),
                bus1_shifts: Summary::of(&bus1_shifts),
            }
        })
        .collect();
    BusResult {
        config: config.clone(),
        points,
    }
}

/// Renders the ablation table.
#[must_use]
pub fn report(result: &BusResult) -> String {
    let mut table = TextTable::new([
        "err%",
        "pure iters",
        "bus(1) iters",
        "bus(4) iters",
        "mesh iters",
        "mesh speedup",
        "shift traffic saved",
    ]);
    for p in &result.points {
        let speedup = if p.mesh_iters.mean > 0.0 {
            p.pure_iters.mean / p.mesh_iters.mean
        } else {
            1.0
        };
        let saved = if p.pure_shifts.mean > 0.0 {
            100.0 * (1.0 - p.bus1_shifts.mean / p.pure_shifts.mean)
        } else {
            0.0
        };
        table.push_row([
            format!("{:.1}", p.percent),
            format!("{:.1}", p.pure_iters.mean),
            format!("{:.1}", p.bus1_iters.mean),
            format!("{:.1}", p.bus4_iters.mean),
            format!("{:.1}", p.mesh_iters.mean),
            format!("{speedup:.2}x"),
            format!("{saved:.0}%"),
        ]);
    }
    format!(
        "Broadcast-bus ablation (§6 future work) — Figure-5 workload, identical results asserted\n\n{}",
        table.render()
    )
}

/// Exports as CSV.
#[must_use]
pub fn to_csv(result: &BusResult) -> Csv {
    let mut csv = Csv::new([
        "percent",
        "pure_iters",
        "bus1_iters",
        "bus4_iters",
        "mesh_iters",
        "pure_shifts",
        "bus1_shifts",
    ]);
    for p in &result.points {
        csv.push_floats([
            p.percent,
            p.pure_iters.mean,
            p.bus1_iters.mean,
            p.bus4_iters.mean,
            p.mesh_iters.mean,
            p.pure_shifts.mean,
            p.bus1_shifts.mean,
        ]);
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BusConfig {
        BusConfig {
            width: 2_000,
            error_percents: vec![2.0, 20.0, 50.0],
            trials: 5,
            ..Default::default()
        }
    }

    #[test]
    fn mesh_delivers_the_conjectured_speedup() {
        let r = run(&small());
        for p in &r.points {
            assert!(
                p.bus1_iters.mean <= p.pure_iters.mean + 1e-9,
                "bus slower at {}%: {} vs {}",
                p.percent,
                p.bus1_iters.mean,
                p.pure_iters.mean
            );
            assert!(
                p.mesh_iters.mean <= p.bus1_iters.mean + 1e-9,
                "mesh slower than bus at {}%",
                p.percent
            );
        }
        // The mesh (segment inserts) must actually shorten the run —
        // the paper's conjecture.
        assert!(
            r.points
                .iter()
                .any(|p| p.mesh_iters.mean < p.pure_iters.mean * 0.7),
            "mesh never helped substantially: {:?}",
            r.points
                .iter()
                .map(|p| (p.pure_iters.mean, p.mesh_iters.mean))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn report_and_csv() {
        let r = run(&small());
        let rep = report(&r);
        assert!(rep.contains("Broadcast-bus"));
        assert!(rep.contains("speedup"));
        assert_eq!(to_csv(&r).len(), 3);
    }
}
