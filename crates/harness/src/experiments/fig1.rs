//! Experiment E1 — Figure 1: the worked image-difference example.
//!
//! The paper's Figure 1 gives two encoded rows and their XOR. This
//! experiment recomputes the difference three ways — the sequential merge,
//! the pure systolic array, and the bus-assisted array — and checks all of
//! them against the published output.

use rle::{RleRow, Run};
use std::fmt::Write as _;

/// The published inputs and output of Figure 1 (row width is not stated in
/// the paper; 40 comfortably contains every run).
#[must_use]
pub fn figure1_rows() -> (RleRow, RleRow, RleRow) {
    let a = RleRow::from_pairs(40, &[(10, 3), (16, 2), (23, 2), (27, 3)]).unwrap();
    let b = RleRow::from_pairs(40, &[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)]).unwrap();
    let expected = RleRow::from_pairs(40, &[(3, 4), (8, 2), (15, 1), (18, 2), (30, 1)]).unwrap();
    (a, b, expected)
}

/// Outcome of the Figure 1 reproduction.
#[derive(Clone, Debug)]
pub struct Fig1Result {
    /// Difference computed by the sequential merge.
    pub sequential: RleRow,
    /// Difference computed by the systolic array.
    pub systolic: RleRow,
    /// Difference computed by the bus-assisted array.
    pub bus: RleRow,
    /// The published expected difference.
    pub expected: RleRow,
}

impl Fig1Result {
    /// Whether all three implementations match the paper.
    #[must_use]
    pub fn all_match(&self) -> bool {
        self.sequential == self.expected
            && self.systolic == self.expected
            && self.bus == self.expected
    }
}

/// Runs the experiment.
#[must_use]
pub fn run() -> Fig1Result {
    let (a, b, expected) = figure1_rows();
    let sequential = rle::ops::xor(&a, &b);
    let (systolic, _) = systolic_core::systolic_xor(&a, &b).unwrap();
    let (bus, _) = systolic_core::bus::systolic_xor_bus(&a, &b).unwrap();
    Fig1Result {
        sequential,
        systolic,
        bus,
        expected,
    }
}

/// Renders a report in the figure's visual style: three aligned pixel rows.
#[must_use]
pub fn report() -> String {
    let (a, b, expected) = figure1_rows();
    let result = run();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1 — image difference (XOR) worked example");
    let _ = writeln!(out, "  Row of image 1 : {}", runs_str(&a));
    let _ = writeln!(out, "  Row of image 2 : {}", runs_str(&b));
    let _ = writeln!(out, "  Published XOR  : {}", runs_str(&expected));
    let _ = writeln!(out, "  Sequential     : {}", runs_str(&result.sequential));
    let _ = writeln!(out, "  Systolic       : {}", runs_str(&result.systolic));
    let _ = writeln!(out, "  Broadcast bus  : {}", runs_str(&result.bus));
    let _ = writeln!(out);
    let _ = writeln!(out, "  img1: {}", bits_str(&a));
    let _ = writeln!(out, "  img2: {}", bits_str(&b));
    let _ = writeln!(out, "  diff: {}", bits_str(&result.systolic));
    let _ = writeln!(
        out,
        "  => {}",
        if result.all_match() {
            "MATCH (all three agree with the paper)"
        } else {
            "MISMATCH"
        }
    );
    out
}

fn runs_str(row: &RleRow) -> String {
    row.runs()
        .iter()
        .map(|r: &Run| format!("{r} "))
        .collect::<String>()
        .trim_end()
        .to_string()
}

fn bits_str(row: &RleRow) -> String {
    row.to_bits()
        .iter()
        .map(|&b| if b { '#' } else { '.' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_implementations_match_the_paper() {
        assert!(run().all_match());
    }

    #[test]
    fn report_declares_match() {
        let r = report();
        assert!(r.contains("MATCH"), "{r}");
        assert!(r.contains("(3, 4) (8, 2) (15, 1) (18, 2) (30, 1)"), "{r}");
    }
}
