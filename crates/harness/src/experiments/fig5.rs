//! Experiment E4 — Figure 5: systolic iterations as a function of the
//! percentage of differing pixels, plotted alongside the two quantities the
//! paper identifies as the dominating factors:
//!
//! * the difference in the number of runs between the two images
//!   (tracks the iteration count up to ~30–40 % error), and
//! * the number of runs in the XOR produced by the algorithm (the
//!   conjectured upper bound).
//!
//! Setup per the paper: rows of 10 000 pixels at ≈30 % density (≈250 runs),
//! image runs 4–20 px, error runs 2–6 px, error percentage swept.

use crate::ascii_plot::{plot, Series};
use crate::csv::Csv;
use crate::sampling::Summary;
use crate::table::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::metrics::row_similarity;
use rle::{Pixel, RleRow};
use systolic_core::{ArrayStats, DiffPipelineConfig, Kernel, MetricsSnapshot};
use workload::{GenParams, RowGenerator};

/// Sweep configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig5Config {
    /// Row width; the paper uses 10 000.
    pub width: Pixel,
    /// Foreground density; the paper uses ≈30 %.
    pub density: f64,
    /// Error percentages to sweep (x-axis of the figure).
    pub error_percents: Vec<f64>,
    /// Trials per point.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Self {
            width: 10_000,
            density: 0.3,
            error_percents: (1..=19).map(|i| f64::from(i) * 2.5).collect(),
            trials: 25,
            seed: 0x1999_0412,
        }
    }
}

/// One point of the sweep.
#[derive(Clone, Debug)]
pub struct Fig5Point {
    /// Requested error percentage.
    pub target_percent: f64,
    /// Realised percentage of differing pixels (mean over trials).
    pub realized_percent: f64,
    /// Systolic iterations.
    pub iterations: Summary,
    /// `|k1 − k2|`.
    pub diff_runs: Summary,
    /// Runs in the XOR as the algorithm produced it (raw output).
    pub xor_runs: Summary,
}

/// Full sweep result.
#[derive(Clone, Debug)]
pub struct Fig5Result {
    /// The configuration that produced it.
    pub config: Fig5Config,
    /// One entry per error percentage.
    pub points: Vec<Fig5Point>,
}

/// Runs the sweep on the bare systolic array.
#[must_use]
pub fn run(config: &Fig5Config) -> Fig5Result {
    sweep(config, &mut |a, b| {
        systolic_core::systolic_xor(a, b).expect("systolic run").1
    })
}

/// Runs the sweep through an *observed* [`systolic_core::DiffPipeline`]
/// (forced systolic kernel, so the per-row statistics are bit-identical to
/// [`run`]'s) and returns the figure data together with the pipeline's
/// [`MetricsSnapshot`], so the iteration sweep emits machine-readable
/// metrics alongside its CSV. The snapshot's `row_runs` histogram is the
/// `k1 + k2` distribution of the whole sweep.
#[must_use]
pub fn run_observed(config: &Fig5Config) -> (Fig5Result, MetricsSnapshot) {
    let mut pipeline = DiffPipelineConfig::new(2)
        .kernel(Kernel::Systolic)
        .observe()
        .build();
    let obs = pipeline.observer().expect("observer enabled above");
    let result = sweep(config, &mut |a, b| {
        pipeline.submit(a.clone(), b.clone());
        let outcome = pipeline.collect().expect("one row in flight");
        outcome.result.expect("systolic run").1
    });
    (result, obs.metrics_snapshot())
}

/// The shared sweep skeleton: generation, error injection and summary
/// statistics are identical for every engine; `diff` supplies the per-row
/// [`ArrayStats`].
fn sweep(config: &Fig5Config, diff: &mut impl FnMut(&RleRow, &RleRow) -> ArrayStats) -> Fig5Result {
    let params = GenParams::for_density(config.width, config.density);
    let mut points = Vec::with_capacity(config.error_percents.len());
    for (pi, &percent) in config.error_percents.iter().enumerate() {
        let mut iterations = Vec::with_capacity(config.trials);
        let mut diff_runs = Vec::with_capacity(config.trials);
        let mut xor_runs = Vec::with_capacity(config.trials);
        let mut realized = Vec::with_capacity(config.trials);
        let mut rng =
            StdRng::seed_from_u64(config.seed ^ (pi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for _ in 0..config.trials {
            let mut generator = RowGenerator::new(params, rng.gen());
            let a = generator.next_row();
            let model = workload::ErrorModel::fraction(percent / 100.0);
            let b = workload::errors::apply_errors_rng(&a, &model, &mut rng);
            let stats = diff(&a, &b);
            let sim = row_similarity(&a, &b);
            iterations.push(stats.iterations as f64);
            diff_runs.push(sim.run_count_difference as f64);
            xor_runs.push(stats.output_runs as f64);
            realized.push(sim.differing_fraction * 100.0);
        }
        points.push(Fig5Point {
            target_percent: percent,
            realized_percent: Summary::of(&realized).mean,
            iterations: Summary::of(&iterations),
            diff_runs: Summary::of(&diff_runs),
            xor_runs: Summary::of(&xor_runs),
        });
    }
    Fig5Result {
        config: config.clone(),
        points,
    }
}

/// The figure's three series, shared by the ASCII and SVG renderers.
#[must_use]
pub fn series(result: &Fig5Result) -> Vec<Series> {
    vec![
        Series::new(
            "Number of iterations",
            result
                .points
                .iter()
                .map(|p| (p.realized_percent, p.iterations.mean))
                .collect(),
        ),
        Series::new(
            "Difference in number of runs in the two images",
            result
                .points
                .iter()
                .map(|p| (p.realized_percent, p.diff_runs.mean))
                .collect(),
        ),
        Series::new(
            "Number of runs in the XOR",
            result
                .points
                .iter()
                .map(|p| (p.realized_percent, p.xor_runs.mean))
                .collect(),
        ),
    ]
}

/// Renders the figure as an SVG document.
#[must_use]
pub fn to_svg(result: &Fig5Result) -> String {
    crate::svg_plot::SvgChart {
        title: format!(
            "Figure 5 — iterations vs percent of differing pixels ({} px, {:.0}% density)",
            result.config.width,
            result.config.density * 100.0
        ),
        x_label: "percent of pixels that are different between the two images".into(),
        y_label: "mean over trials".into(),
        ..Default::default()
    }
    .render(&series(result))
}

/// Renders the figure as an ASCII chart plus a data table.
#[must_use]
pub fn report(result: &Fig5Result) -> String {
    let series = series(result);
    let chart = plot(
        &series,
        72,
        22,
        "Figure 5 — iterations vs percent of pixels that differ (10,000 px, ~250 runs, 30% density)",
    );

    let mut table = TextTable::new(["err% (real)", "iterations", "|k1-k2|", "runs in XOR"]);
    for p in &result.points {
        table.push_row([
            format!("{:.1}", p.realized_percent),
            format!("{:.1} ±{:.1}", p.iterations.mean, p.iterations.ci95()),
            format!("{:.1}", p.diff_runs.mean),
            format!("{:.1}", p.xor_runs.mean),
        ]);
    }
    format!("{chart}\n{}", table.render())
}

/// Exports the sweep as CSV.
#[must_use]
pub fn to_csv(result: &Fig5Result) -> Csv {
    let mut csv = Csv::new([
        "target_percent",
        "realized_percent",
        "iterations_mean",
        "iterations_std",
        "diff_runs_mean",
        "xor_runs_mean",
    ]);
    for p in &result.points {
        csv.push_floats([
            p.target_percent,
            p.realized_percent,
            p.iterations.mean,
            p.iterations.std_dev,
            p.diff_runs.mean,
            p.xor_runs.mean,
        ]);
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Fig5Config {
        Fig5Config {
            width: 2_000,
            density: 0.3,
            error_percents: vec![2.0, 10.0, 30.0, 50.0],
            trials: 6,
            seed: 7,
        }
    }

    #[test]
    fn sweep_produces_all_points() {
        let r = run(&small_config());
        assert_eq!(r.points.len(), 4);
        for p in &r.points {
            assert_eq!(p.iterations.n, 6);
            assert!(p.realized_percent > 0.0);
        }
    }

    #[test]
    fn iterations_track_diff_runs_at_low_error() {
        // The paper's headline correlation: below ~30 % error the iteration
        // count follows |k1 - k2| closely (and is upper-bounded by the XOR
        // run count).
        let r = run(&Fig5Config {
            trials: 12,
            ..small_config()
        });
        let low = &r.points[0]; // 2 % errors
        assert!(
            (low.iterations.mean - low.diff_runs.mean).abs() <= (3.0 + 0.3 * low.diff_runs.mean),
            "iterations {} should track diff_runs {}",
            low.iterations.mean,
            low.diff_runs.mean
        );
        for p in &r.points {
            assert!(
                p.iterations.mean <= p.xor_runs.mean + 1.0 + 1e-9,
                "observation bound: iterations {} vs xor runs {}",
                p.iterations.mean,
                p.xor_runs.mean
            );
        }
    }

    #[test]
    fn iterations_grow_with_error_percent() {
        let r = run(&small_config());
        assert!(
            r.points.last().unwrap().iterations.mean > r.points[0].iterations.mean * 2.0,
            "more errors must cost more iterations"
        );
    }

    #[test]
    fn observed_sweep_matches_bare_array_and_reconciles_metrics() {
        let config = small_config();
        let bare = run(&config);
        let (piped, metrics) = run_observed(&config);
        for (a, b) in bare.points.iter().zip(&piped.points) {
            assert_eq!(
                a.iterations.mean, b.iterations.mean,
                "same machine, same stats"
            );
            assert_eq!(a.xor_runs.mean, b.xor_runs.mean);
            assert_eq!(a.realized_percent, b.realized_percent);
        }
        let rows = (config.error_percents.len() * config.trials) as u64;
        assert_eq!(metrics.rows_completed, rows);
        assert_eq!(metrics.rows_diffed, rows);
        assert_eq!(metrics.row_runs.count, rows, "one k1+k2 sample per trial");
        assert_eq!(metrics.row_runs.bucket_total(), rows);
        assert!(metrics
            .to_prometheus()
            .contains("diffpipeline_rows_completed_total"));
    }

    #[test]
    fn report_and_csv_shapes() {
        let r = run(&small_config());
        let rep = report(&r);
        assert!(rep.contains("Figure 5"));
        assert!(rep.contains("runs in XOR"));
        let csv = to_csv(&r);
        assert_eq!(csv.len(), 4);
    }
}
