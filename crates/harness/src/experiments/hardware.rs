//! Experiment E15 — the hardware cost model (our extension).
//!
//! The paper proposes the machine without area/timing estimates. Using
//! the transparent unit-weight model of `systolic_core::datapath`, this
//! report tabulates the design space: coordinate width vs. per-cell cost
//! vs. array totals for the paper's own workload sizes, plus what the §6
//! interconnect options add qualitatively.

use crate::csv::Csv;
use systolic_core::datapath::{array_cost, coord_bits_for};

/// The workload sizes the paper itself discusses: Table 1's largest row,
/// Figure 5's row, and a megapixel-scan extrapolation.
const SCENARIOS: [(&str, u32, usize); 3] = [
    ("Table 1 max (2048 px, ~51 runs)", 2_048, 51),
    ("Figure 5 (10,000 px, ~250 runs)", 10_000, 250),
    ("Mega-scan row (1M px, ~25k runs)", 1_000_000, 25_000),
];

/// Renders the report.
#[must_use]
pub fn report() -> String {
    let mut out = String::from(
        "Hardware cost model (our extension; unit-weight gate equivalents)\n\n\
         scenario                              w   regs/cell  logic/cell  cells   total logic GE  total reg bits\n\
         ----------------------------------------------------------------------------------------------------\n",
    );
    for (label, width, runs) in SCENARIOS {
        let a = array_cost(width, runs);
        out.push_str(&format!(
            "{label:<36} {:>2}  {:>9}  {:>10}  {:>5}  {:>14}  {:>14}\n",
            a.cell.coord_bits,
            a.cell.register_bits,
            a.cell.logic_ge(),
            a.cells,
            a.total_logic_ge,
            a.total_register_bits,
        ));
    }
    out.push_str(
        "\nNotes: logic is dominated by the 5 w-bit comparators and 8 w-bit muxes of\n\
         steps 1-2; the critical path is ~4w gate delays (compare, select, increment,\n\
         select), so the cycle time grows only logarithmically with row width. The §6\n\
         broadcast bus adds one w-bit global wire pair; the mesh adds a switch per cell.\n",
    );
    out
}

/// Exports the scenario table as CSV.
#[must_use]
pub fn to_csv() -> Csv {
    let mut csv = Csv::new([
        "scenario",
        "row_width",
        "coord_bits",
        "register_bits_per_cell",
        "logic_ge_per_cell",
        "cells",
        "total_logic_ge",
    ]);
    for (label, width, runs) in SCENARIOS {
        let a = array_cost(width, runs);
        csv.push_row([
            label.to_string(),
            width.to_string(),
            coord_bits_for(width).to_string(),
            a.cell.register_bits.to_string(),
            a.cell.logic_ge().to_string(),
            a.cells.to_string(),
            a.total_logic_ge.to_string(),
        ]);
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_scenarios() {
        let r = report();
        assert!(r.contains("Figure 5"));
        assert!(r.contains("Mega-scan"));
        assert!(r.contains("critical path"));
    }

    #[test]
    fn csv_has_one_row_per_scenario() {
        assert_eq!(to_csv().len(), 3);
    }
}
