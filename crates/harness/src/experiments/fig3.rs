//! Experiment E2 — Figure 3: the step-by-step systolic execution trace.
//!
//! Replays the paper's worked example through the simulator with full
//! tracing and renders the same two-line-per-step table the figure shows.

use super::fig1::figure1_rows;
use systolic_core::trace::{run_traced, Trace};
use systolic_core::SystolicArray;

/// Runs the traced execution of the Figure 1 inputs.
#[must_use]
pub fn run() -> Trace {
    let (a, b, _) = figure1_rows();
    let mut array = SystolicArray::load(&a, &b).unwrap();
    run_traced(&mut array).unwrap()
}

/// Renders the Figure-3-style table plus a summary line.
#[must_use]
pub fn report() -> String {
    let trace = run();
    format!(
        "Figure 3 — systolic execution on the Figure 1 inputs\n\n{}\nterminated after {} iterations (paper: 3); result: {:?}\n",
        trace.to_figure3_table(),
        trace.iterations,
        trace.result.runs(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_matches_paper_iteration_count() {
        let trace = run();
        assert_eq!(trace.iterations, 3);
    }

    #[test]
    fn report_contains_key_published_values() {
        let r = report();
        for needle in ["1.1", "2.2", "3.1", "(3,4)", "(30,1)", "terminated after 3"] {
            assert!(r.contains(needle), "missing {needle:?} in:\n{r}");
        }
    }
}
