//! Experiment E13 — the §6 coalescing pass.
//!
//! "The task of combining the adjacent runs in different cells at the end
//! of the algorithm ... is not fast on a pure systolic system, but could be
//! performed quickly with the help of a broadcast bus." We measure both on
//! the Figure-5 workload: after the XOR machine halts, the pure systolic
//! compact-and-merge pass runs for ~array-length iterations, while the bus
//! needs exactly one transaction per output run.

use crate::csv::Csv;
use crate::sampling::Summary;
use crate::table::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::Pixel;
use systolic_core::coalesce::{bus_coalesce, CoalescePass};
use systolic_core::SystolicArray;
use workload::{ErrorModel, GenParams, RowGenerator};

/// Sweep configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct CoalesceConfig {
    /// Row width.
    pub width: Pixel,
    /// Foreground density.
    pub density: f64,
    /// Error percentages to sweep.
    pub error_percents: Vec<f64>,
    /// Trials per point.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        Self {
            width: 10_000,
            density: 0.3,
            error_percents: vec![1.0, 5.0, 20.0, 40.0],
            trials: 15,
            seed: 0xC0A1_E5CE,
        }
    }
}

/// One point of the sweep.
#[derive(Clone, Debug)]
pub struct CoalescePoint {
    /// Error percentage.
    pub percent: f64,
    /// Iterations of the XOR machine itself (context).
    pub xor_iterations: Summary,
    /// Runs in the raw output chain.
    pub output_runs: Summary,
    /// Touching neighbour pairs in the raw output (work to do).
    pub adjacent_pairs: Summary,
    /// Iterations of the pure systolic coalesce pass.
    pub systolic_iterations: Summary,
    /// Bus transactions of the bus-assisted pass.
    pub bus_transactions: Summary,
}

/// Full sweep result.
#[derive(Clone, Debug)]
pub struct CoalesceResult {
    /// The configuration that produced it.
    pub config: CoalesceConfig,
    /// One entry per error percentage.
    pub points: Vec<CoalescePoint>,
}

/// Runs the sweep.
#[must_use]
pub fn run(config: &CoalesceConfig) -> CoalesceResult {
    let params = GenParams::for_density(config.width, config.density);
    let points = config
        .error_percents
        .iter()
        .enumerate()
        .map(|(pi, &percent)| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ ((pi as u64) << 13));
            let mut xor_iterations = Vec::new();
            let mut output_runs = Vec::new();
            let mut adjacent_pairs = Vec::new();
            let mut systolic_iterations = Vec::new();
            let mut bus_transactions = Vec::new();
            for _ in 0..config.trials {
                let a = RowGenerator::new(params, rng.gen()).next_row();
                let model = ErrorModel::fraction(percent / 100.0);
                let b = workload::errors::apply_errors_rng(&a, &model, &mut rng);

                let mut machine = SystolicArray::load(&a, &b).expect("load");
                machine.enable_invariant_checks(false);
                machine.run().expect("xor run");
                let raw = machine.extract_raw().expect("extract");
                let adjacencies = rle::canonical::count_adjacencies(raw.runs());

                let chain: Vec<_> = machine.views().map(|c| c.small).collect();
                let mut pass = CoalescePass::from_array(&machine);
                pass.run().expect("coalesce run");
                let (bus_row, tx) = bus_coalesce(machine.width(), &chain);
                let systolic_row = pass.extract().expect("coalesce extract");
                assert_eq!(systolic_row, bus_row, "passes must agree");
                assert_eq!(systolic_row, raw.canonicalized(), "must canonicalize");

                xor_iterations.push(machine.stats().iterations as f64);
                output_runs.push(raw.run_count() as f64);
                adjacent_pairs.push(adjacencies as f64);
                systolic_iterations.push(pass.stats().iterations as f64);
                bus_transactions.push(tx as f64);
            }
            CoalescePoint {
                percent,
                xor_iterations: Summary::of(&xor_iterations),
                output_runs: Summary::of(&output_runs),
                adjacent_pairs: Summary::of(&adjacent_pairs),
                systolic_iterations: Summary::of(&systolic_iterations),
                bus_transactions: Summary::of(&bus_transactions),
            }
        })
        .collect();
    CoalesceResult {
        config: config.clone(),
        points,
    }
}

/// Renders the comparison table.
#[must_use]
pub fn report(result: &CoalesceResult) -> String {
    let mut table = TextTable::new([
        "err%",
        "XOR iters",
        "output runs",
        "adjacent pairs",
        "coalesce iters (systolic)",
        "bus transactions",
    ]);
    for p in &result.points {
        table.push_row([
            format!("{:.1}", p.percent),
            format!("{:.1}", p.xor_iterations.mean),
            format!("{:.1}", p.output_runs.mean),
            format!("{:.1}", p.adjacent_pairs.mean),
            format!("{:.1}", p.systolic_iterations.mean),
            format!("{:.1}", p.bus_transactions.mean),
        ]);
    }
    format!(
        "Coalescing pass (§6 future work) — merging adjacent runs after the XOR\n\n{}\nThe pure systolic pass pays ~array-length iterations for compaction;\nthe bus pays one transaction per output run — the paper's prediction.\n",
        table.render()
    )
}

/// Exports as CSV.
#[must_use]
pub fn to_csv(result: &CoalesceResult) -> Csv {
    let mut csv = Csv::new([
        "percent",
        "xor_iterations",
        "output_runs",
        "adjacent_pairs",
        "systolic_iterations",
        "bus_transactions",
    ]);
    for p in &result.points {
        csv.push_floats([
            p.percent,
            p.xor_iterations.mean,
            p.output_runs.mean,
            p.adjacent_pairs.mean,
            p.systolic_iterations.mean,
            p.bus_transactions.mean,
        ]);
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CoalesceConfig {
        CoalesceConfig {
            width: 2_000,
            error_percents: vec![2.0, 20.0],
            trials: 5,
            ..Default::default()
        }
    }

    #[test]
    fn passes_agree_and_bus_is_cheaper() {
        let r = run(&small());
        for p in &r.points {
            // One transaction per output run.
            assert!((p.bus_transactions.mean - p.output_runs.mean).abs() < 1e-9);
            // Pure systolic pays far more steps than the bus pays
            // transactions relative to the work (compaction dominates).
            assert!(
                p.systolic_iterations.mean > 0.0,
                "coalescing work must exist at {}%",
                p.percent
            );
        }
    }

    #[test]
    fn report_and_csv() {
        let r = run(&small());
        assert!(report(&r).contains("Coalescing pass"));
        assert_eq!(to_csv(&r).len(), 2);
    }
}
