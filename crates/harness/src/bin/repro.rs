//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [experiment ...] [--quick] [--out DIR]
//!
//! experiments: fig1 fig3 fig5 table1 observation bus scaling all (default: all)
//! --quick     smaller sweeps/trials, for smoke runs
//! --out DIR   where CSVs are written (default: results/)
//! ```

use harness::experiments::{
    ablation_bus, coalesce, fig1, fig3, fig5, hardware, observation, scaling, table1, utilization,
};
use std::path::PathBuf;

struct Options {
    experiments: Vec<String>,
    quick: bool,
    out: PathBuf,
}

fn parse_args() -> Options {
    let mut experiments = Vec::new();
    let mut quick = false;
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [fig1|fig3|fig5|table1|observation|bus|coalesce|utilization|scaling|all ...] [--quick] [--out DIR]"
                );
                std::process::exit(0);
            }
            name => experiments.push(name.to_string()),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = [
            "fig1",
            "fig3",
            "fig5",
            "table1",
            "observation",
            "bus",
            "coalesce",
            "utilization",
            "hardware",
            "scaling",
        ]
        .map(String::from)
        .to_vec();
    }
    Options {
        experiments,
        quick,
        out,
    }
}

fn main() {
    let opts = parse_args();
    let mut unknown = Vec::new();

    for name in &opts.experiments {
        let banner = format!(
            "══ {name} {}",
            "═".repeat(66_usize.saturating_sub(name.len()))
        );
        match name.as_str() {
            "fig1" => {
                println!("{banner}");
                print!("{}", fig1::report());
            }
            "fig3" => {
                println!("{banner}");
                print!("{}", fig3::report());
            }
            "fig5" => {
                println!("{banner}");
                let config = if opts.quick {
                    fig5::Fig5Config {
                        width: 4_000,
                        trials: 8,
                        error_percents: (1..=14).map(|i| f64::from(i) * 5.0).collect(),
                        ..Default::default()
                    }
                } else {
                    fig5::Fig5Config::default()
                };
                // The sweep runs through an observed DiffPipeline (stats are
                // bit-identical to the bare array) so the iteration figure
                // ships with a machine-readable metrics snapshot.
                let (result, metrics) = fig5::run_observed(&config);
                print!("{}", fig5::report(&result));
                write_csv(&opts, "fig5.csv", &fig5::to_csv(&result));
                let svg_path = opts.out.join("fig5.svg");
                match std::fs::create_dir_all(&opts.out)
                    .and_then(|()| std::fs::write(&svg_path, fig5::to_svg(&result)))
                {
                    Ok(()) => println!("[svg] wrote {}", svg_path.display()),
                    Err(e) => eprintln!("[svg] failed to write {}: {e}", svg_path.display()),
                }
                for (file, body) in [
                    ("fig5_metrics.prom", metrics.to_prometheus()),
                    ("fig5_metrics.json", metrics.to_json()),
                ] {
                    let path = opts.out.join(file);
                    match std::fs::write(&path, body) {
                        Ok(()) => println!("[metrics] wrote {}", path.display()),
                        Err(e) => eprintln!("[metrics] failed to write {}: {e}", path.display()),
                    }
                }
            }
            "table1" => {
                println!("{banner}");
                let config = if opts.quick {
                    table1::Table1Config {
                        trials: 40,
                        ..Default::default()
                    }
                } else {
                    table1::Table1Config::default()
                };
                let result = table1::run(&config);
                print!("{}", table1::report(&result));
                write_csv(&opts, "table1.csv", &table1::to_csv(&result));
            }
            "observation" => {
                println!("{banner}");
                let config = if opts.quick {
                    observation::ObservationConfig {
                        width: 1_024,
                        similar_trials: 300,
                        independent_trials: 300,
                        ..Default::default()
                    }
                } else {
                    observation::ObservationConfig::default()
                };
                let result = observation::run(&config);
                print!("{}", observation::report(&result));
                write_csv(&opts, "observation.csv", &observation::to_csv(&result));
            }
            "bus" => {
                println!("{banner}");
                let config = if opts.quick {
                    ablation_bus::BusConfig {
                        width: 3_000,
                        trials: 5,
                        ..Default::default()
                    }
                } else {
                    ablation_bus::BusConfig::default()
                };
                let result = ablation_bus::run(&config);
                print!("{}", ablation_bus::report(&result));
                write_csv(&opts, "ablation_bus.csv", &ablation_bus::to_csv(&result));
            }
            "coalesce" => {
                println!("{banner}");
                let config = if opts.quick {
                    coalesce::CoalesceConfig {
                        width: 3_000,
                        trials: 5,
                        ..Default::default()
                    }
                } else {
                    coalesce::CoalesceConfig::default()
                };
                let result = coalesce::run(&config);
                print!("{}", coalesce::report(&result));
                write_csv(&opts, "coalesce.csv", &coalesce::to_csv(&result));
            }
            "utilization" => {
                println!("{banner}");
                let config = if opts.quick {
                    utilization::UtilizationConfig {
                        width: 3_000,
                        trials: 5,
                        ..Default::default()
                    }
                } else {
                    utilization::UtilizationConfig::default()
                };
                let result = utilization::run(&config);
                print!("{}", utilization::report(&result));
                write_csv(&opts, "utilization.csv", &utilization::to_csv(&result));
            }
            "hardware" => {
                println!("{banner}");
                print!("{}", hardware::report());
                write_csv(&opts, "hardware.csv", &hardware::to_csv());
            }
            "scaling" => {
                println!("{banner}");
                let config = if opts.quick {
                    scaling::ScalingConfig {
                        width: 100_000,
                        big_width: 400_000,
                        reps: 2,
                        ..Default::default()
                    }
                } else {
                    scaling::ScalingConfig::default()
                };
                let result = scaling::run(&config);
                print!("{}", scaling::report(&result));
                write_csv(&opts, "scaling.csv", &scaling::to_csv(&result));
            }
            other => unknown.push(other.to_string()),
        }
        println!();
    }

    if !unknown.is_empty() {
        eprintln!("unknown experiments: {}", unknown.join(", "));
        eprintln!("known: fig1 fig3 fig5 table1 observation bus coalesce utilization hardware scaling all");
        std::process::exit(2);
    }
}

fn write_csv(opts: &Options, file: &str, csv: &harness::csv::Csv) {
    let path = opts.out.join(file);
    match csv.write_to(&path) {
        Ok(()) => println!("[csv] wrote {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}
