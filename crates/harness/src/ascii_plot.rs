//! Terminal line plots for figure reproduction.
//!
//! Good enough to see the *shape* the paper's Figure 5 shows — which series
//! tracks which, and where they diverge — directly in the experiment
//! output, without any plotting dependency.

/// One named series of (x, y) points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, not necessarily sorted.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// Renders series as an ASCII scatter/line chart of the given size.
/// Each series is drawn with its own glyph; overlapping points show the
/// later series' glyph.
#[must_use]
pub fn plot(series: &[Series], width: usize, height: usize, title: &str) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let (width, height) = (width.max(16), height.max(4));
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    y_min = y_min.min(0.0);
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out.push_str(&format!("{y_max:>10.1} ┤"));
    out.push('\n');
    for row in &grid {
        out.push_str("           │");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{y_min:>10.1} └{}\n", "─".repeat(width)));
    out.push_str(&format!(
        "            {:<10.2}{:>width$.2}\n",
        x_min,
        x_max,
        width = width - 10
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plot() {
        let out = plot(&[], 40, 10, "nothing");
        assert!(out.contains("(no data)"));
    }

    #[test]
    fn single_series_renders_points() {
        let s = Series::new(
            "line",
            (0..10).map(|i| (f64::from(i), f64::from(i))).collect(),
        );
        let out = plot(&[s], 40, 10, "diag");
        assert!(out.contains("diag"));
        assert!(out.contains("* line"));
        assert!(out.matches('*').count() >= 10, "{out}");
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let a = Series::new("a", vec![(0.0, 0.0), (1.0, 1.0)]);
        let b = Series::new("b", vec![(0.0, 1.0), (1.0, 0.0)]);
        let out = plot(&[a, b], 30, 8, "two");
        assert!(out.contains("* a"));
        assert!(out.contains("o b"));
        assert!(out.contains('o'), "{out}");
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let s = Series::new("flat", vec![(2.0, 5.0), (2.0, 5.0)]);
        let out = plot(&[s], 20, 5, "flat");
        assert!(out.contains('*'));
    }
}
