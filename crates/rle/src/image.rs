//! A full RLE-encoded binary image: a stack of equally-wide rows.
//!
//! The paper's systolic system diffs two images row by row (Figure 1 shows
//! "Row of Image 1" vs "Row of Image 2"); [`RleImage`] provides the
//! image-level bookkeeping and whole-image operations built from the row
//! operations in [`crate::ops`].

use crate::error::RleError;
use crate::metrics::{row_similarity, RowSimilarity};
use crate::ops;
use crate::row::RleRow;
use crate::run::Pixel;
use std::fmt;

/// A binary image stored row-wise in RLE form.
#[derive(Clone, PartialEq, Eq)]
pub struct RleImage {
    width: Pixel,
    rows: Vec<RleRow>,
}

impl RleImage {
    /// Creates an all-background image of the given dimensions.
    #[must_use]
    pub fn new(width: Pixel, height: usize) -> Self {
        Self {
            width,
            rows: vec![RleRow::new(width); height],
        }
    }

    /// Builds an image from rows, validating that all widths match.
    pub fn from_rows(width: Pixel, rows: Vec<RleRow>) -> Result<Self, RleError> {
        for (i, row) in rows.iter().enumerate() {
            if row.width() != width {
                return Err(RleError::RowWidthMismatch {
                    row: i,
                    expected: width,
                    actual: row.width(),
                });
            }
        }
        Ok(Self { width, rows })
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> Pixel {
        self.width
    }

    /// Image height in rows.
    #[must_use]
    pub fn height(&self) -> usize {
        self.rows.len()
    }

    /// The rows, top to bottom.
    #[must_use]
    pub fn rows(&self) -> &[RleRow] {
        &self.rows
    }

    /// Consumes the image into its rows, top to bottom. The inverse of
    /// [`RleImage::from_rows`]; lets row-streaming consumers (e.g. a diff
    /// pipeline's submit queue) take ownership without cloning.
    #[must_use]
    pub fn into_rows(self) -> Vec<RleRow> {
        self.rows
    }

    /// Mutable access to a row.
    pub fn row_mut(&mut self, i: usize) -> &mut RleRow {
        &mut self.rows[i]
    }

    /// Replaces a row, validating its width.
    pub fn set_row(&mut self, i: usize, row: RleRow) -> Result<(), RleError> {
        if row.width() != self.width {
            return Err(RleError::RowWidthMismatch {
                row: i,
                expected: self.width,
                actual: row.width(),
            });
        }
        self.rows[i] = row;
        Ok(())
    }

    /// Total number of runs across all rows (`k` for whole-image costs).
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.rows.iter().map(RleRow::run_count).sum()
    }

    /// Total foreground pixels.
    #[must_use]
    pub fn ones(&self) -> u64 {
        self.rows.iter().map(RleRow::ones).sum()
    }

    /// Foreground fraction over the whole image.
    #[must_use]
    pub fn density(&self) -> f64 {
        let total = u64::from(self.width) * self.rows.len() as u64;
        if total == 0 {
            0.0
        } else {
            self.ones() as f64 / total as f64
        }
    }

    /// Pixel accessor.
    #[must_use]
    pub fn get(&self, x: Pixel, y: usize) -> bool {
        self.rows[y].get(x)
    }

    /// Per-row signatures, in row order (computed on first use and cached
    /// on each [`RleRow`]; see [`crate::sig`]).
    #[must_use]
    pub fn row_signatures(&self) -> Vec<u64> {
        self.rows.iter().map(RleRow::signature).collect()
    }

    /// Whole-image signature folding the dimensions and every row
    /// signature (see [`crate::sig::image_signature`]). Never 0.
    #[must_use]
    pub fn signature(&self) -> u64 {
        crate::sig::image_signature(self)
    }

    /// Canonicalizes every row in place; returns total merges.
    pub fn canonicalize(&mut self) -> usize {
        self.rows.iter_mut().map(RleRow::canonicalize).sum()
    }

    /// Whether every row is canonical.
    #[must_use]
    pub fn is_canonical(&self) -> bool {
        self.rows.iter().all(RleRow::is_canonical)
    }

    /// Row-wise XOR (image difference) of two images.
    pub fn xor(&self, other: &RleImage) -> Result<RleImage, RleError> {
        self.zip_rows(other, ops::xor)
    }

    /// Row-wise AND.
    pub fn and(&self, other: &RleImage) -> Result<RleImage, RleError> {
        self.zip_rows(other, ops::and)
    }

    /// Row-wise OR.
    pub fn or(&self, other: &RleImage) -> Result<RleImage, RleError> {
        self.zip_rows(other, ops::or)
    }

    /// Row-wise set difference `self AND NOT other`.
    pub fn sub(&self, other: &RleImage) -> Result<RleImage, RleError> {
        self.zip_rows(other, ops::sub)
    }

    /// Complement of the image.
    #[must_use]
    pub fn complement(&self) -> RleImage {
        RleImage {
            width: self.width,
            rows: self.rows.iter().map(ops::not).collect(),
        }
    }

    fn zip_rows(
        &self,
        other: &RleImage,
        f: impl Fn(&RleRow, &RleRow) -> RleRow,
    ) -> Result<RleImage, RleError> {
        if self.width != other.width || self.height() != other.height() {
            return Err(RleError::DimensionMismatch {
                left: u64::from(self.width) << 32 | self.height() as u64,
                right: u64::from(other.width) << 32 | other.height() as u64,
            });
        }
        Ok(RleImage {
            width: self.width,
            rows: self
                .rows
                .iter()
                .zip(&other.rows)
                .map(|(a, b)| f(a, b))
                .collect(),
        })
    }

    /// Per-row similarity metrics against another image.
    pub fn row_similarities(&self, other: &RleImage) -> Result<Vec<RowSimilarity>, RleError> {
        if self.width != other.width || self.height() != other.height() {
            return Err(RleError::DimensionMismatch {
                left: u64::from(self.width) << 32 | self.height() as u64,
                right: u64::from(other.width) << 32 | other.height() as u64,
            });
        }
        Ok(self
            .rows
            .iter()
            .zip(&other.rows)
            .map(|(a, b)| row_similarity(a, b))
            .collect())
    }

    /// Renders the image as lines of `.` / `#` characters — handy in tests
    /// and example output.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut s = String::with_capacity((self.width as usize + 1) * self.rows.len());
        for row in &self.rows {
            for p in 0..self.width {
                s.push(if row.get(p) { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }

    /// Parses the `.`/`#` format produced by [`RleImage::to_ascii`]. Any
    /// non-`.` character is treated as foreground.
    #[must_use]
    pub fn from_ascii(art: &str) -> RleImage {
        let lines: Vec<&str> = art.lines().filter(|l| !l.is_empty()).collect();
        let width = lines.iter().map(|l| l.chars().count()).max().unwrap_or(0) as Pixel;
        let rows = lines
            .iter()
            .map(|line| {
                let mut bits = vec![false; width as usize];
                for (i, c) in line.chars().enumerate() {
                    bits[i] = c != '.' && c != ' ';
                }
                RleRow::from_bits(&bits)
            })
            .collect();
        RleImage { width, rows }
    }
}

impl fmt::Debug for RleImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RleImage[{}x{}, {} runs, density {:.3}]",
            self.width,
            self.rows.len(),
            self.total_runs(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(art: &str) -> RleImage {
        RleImage::from_ascii(art)
    }

    #[test]
    fn new_is_empty() {
        let im = RleImage::new(16, 4);
        assert_eq!(im.width(), 16);
        assert_eq!(im.height(), 4);
        assert_eq!(im.total_runs(), 0);
        assert_eq!(im.ones(), 0);
    }

    #[test]
    fn ascii_round_trip() {
        let art = "\
..##..\n\
.#..#.\n\
......\n\
######\n";
        let im = img(art);
        assert_eq!(im.width(), 6);
        assert_eq!(im.height(), 4);
        assert_eq!(im.to_ascii(), art);
        assert_eq!(im.total_runs(), 4);
    }

    #[test]
    fn from_rows_validates_widths() {
        let rows = vec![RleRow::new(8), RleRow::new(9)];
        assert_eq!(
            RleImage::from_rows(8, rows),
            Err(RleError::RowWidthMismatch {
                row: 1,
                expected: 8,
                actual: 9
            })
        );
    }

    #[test]
    fn set_row_validates_width() {
        let mut im = RleImage::new(8, 2);
        assert!(im
            .set_row(0, RleRow::from_pairs(8, &[(0, 3)]).unwrap())
            .is_ok());
        assert!(im.set_row(1, RleRow::new(9)).is_err());
        assert_eq!(im.ones(), 3);
    }

    #[test]
    fn image_xor_is_rowwise() {
        let a = img("##..\n..##\n");
        let b = img("#.#.\n..##\n");
        let d = a.xor(&b).unwrap();
        assert_eq!(d.to_ascii(), ".##.\n....\n");
    }

    #[test]
    fn image_ops_dimension_mismatch() {
        let a = RleImage::new(4, 2);
        let b = RleImage::new(4, 3);
        assert!(a.xor(&b).is_err());
        assert!(a.and(&b).is_err());
        assert!(a.row_similarities(&b).is_err());
    }

    #[test]
    fn boolean_ops_and_complement() {
        let a = img("##..\n");
        let b = img("#.#.\n");
        assert_eq!(a.and(&b).unwrap().to_ascii(), "#...\n");
        assert_eq!(a.or(&b).unwrap().to_ascii(), "###.\n");
        assert_eq!(a.sub(&b).unwrap().to_ascii(), ".#..\n");
        assert_eq!(a.complement().to_ascii(), "..##\n");
    }

    #[test]
    fn density_and_pixel_access() {
        let a = img("#...\n..#.\n");
        assert!((a.density() - 0.25).abs() < 1e-12);
        assert!(a.get(0, 0));
        assert!(!a.get(1, 0));
        assert!(a.get(2, 1));
    }

    #[test]
    fn row_similarities_per_row() {
        let a = img("##..\n....\n");
        let b = img("##..\n...#\n");
        let sims = a.row_similarities(&b).unwrap();
        assert_eq!(sims[0].differing_pixels, 0);
        assert_eq!(sims[1].differing_pixels, 1);
    }

    #[test]
    fn canonicalize_whole_image() {
        let rows = vec![RleRow::from_pairs(8, &[(0, 2), (2, 2)]).unwrap()];
        let mut im = RleImage::from_rows(8, rows).unwrap();
        assert!(!im.is_canonical());
        assert_eq!(im.canonicalize(), 1);
        assert!(im.is_canonical());
    }

    #[test]
    fn debug_summary() {
        let im = img("##..\n");
        let dbg = format!("{im:?}");
        assert!(dbg.contains("4x1"), "{dbg}");
    }

    #[test]
    fn into_rows_round_trips() {
        let im = img("##..\n.##.\n..##\n");
        let rows = im.clone().into_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.as_slice(), im.rows());
        assert_eq!(RleImage::from_rows(4, rows).unwrap(), im);
    }
}
