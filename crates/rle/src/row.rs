//! A run-length-encoded binary image row.

use crate::error::RleError;
use crate::run::{Pixel, Run};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// One run-length-encoded row of a binary image.
///
/// Invariants (checked on construction, upheld by all mutators):
///
/// * runs are sorted by strictly increasing start,
/// * runs do not overlap (`prev.end < next.start`); adjacency
///   (`prev.end + 1 == next.start`) is allowed, matching the paper,
/// * every run lies within `[0, width)`.
///
/// A row where no two runs are adjacent is *canonical* (maximally
/// compressed); see [`RleRow::is_canonical`] and [`RleRow::canonicalize`].
pub struct RleRow {
    width: Pixel,
    runs: Vec<Run>,
    /// Lazily cached [`RleRow::signature`]; 0 means "not computed yet"
    /// (computed signatures are never 0; see [`crate::sig`]). `Relaxed`
    /// atomics suffice because racing readers compute and store the same
    /// deterministic value. The cache is *not* part of the row's identity:
    /// `Clone` copies it, but `PartialEq`/`Hash` ignore it.
    sig: AtomicU64,
}

impl Clone for RleRow {
    fn clone(&self) -> Self {
        Self {
            width: self.width,
            runs: self.runs.clone(),
            sig: AtomicU64::new(self.sig.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for RleRow {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width && self.runs == other.runs
    }
}

impl Eq for RleRow {}

impl Hash for RleRow {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.width.hash(state);
        self.runs.hash(state);
    }
}

impl RleRow {
    /// Creates an empty (all-background) row of the given width.
    #[must_use]
    pub fn new(width: Pixel) -> Self {
        Self {
            width,
            runs: Vec::new(),
            sig: AtomicU64::new(0),
        }
    }

    /// Creates an empty row whose run vector can hold `capacity` runs
    /// without reallocating — the seed for a reusable output buffer.
    #[must_use]
    pub fn with_capacity(width: Pixel, capacity: usize) -> Self {
        Self {
            width,
            runs: Vec::with_capacity(capacity),
            sig: AtomicU64::new(0),
        }
    }

    /// Clears the row and gives it a new width, keeping the run allocation
    /// so the row can be refilled without touching the allocator.
    pub fn reset(&mut self, width: Pixel) {
        self.width = width;
        self.runs.clear();
        *self.sig.get_mut() = 0;
    }

    /// Makes this row a copy of `src`, reusing the existing run allocation
    /// where possible (the buffer-reuse counterpart of `Clone`).
    pub fn copy_from(&mut self, src: &RleRow) {
        self.width = src.width;
        self.runs.clear();
        self.runs.extend_from_slice(&src.runs);
        // Equal content means the source's cached signature (possibly the
        // "unset" 0) is exactly right for us too.
        *self.sig.get_mut() = src.sig.load(Ordering::Relaxed);
    }

    /// Creates a row from a validated run list.
    pub fn from_runs(width: Pixel, runs: Vec<Run>) -> Result<Self, RleError> {
        Self::validate(width, &runs)?;
        Ok(Self {
            width,
            runs,
            sig: AtomicU64::new(0),
        })
    }

    /// Creates a row from the paper's `(start, length)` tuple notation.
    pub fn from_pairs(width: Pixel, pairs: &[(Pixel, Pixel)]) -> Result<Self, RleError> {
        let mut runs = Vec::with_capacity(pairs.len());
        for &(start, len) in pairs {
            runs.push(Run::try_new(start, len)?);
        }
        Self::from_runs(width, runs)
    }

    /// Creates a row from an unencoded bitstring, producing a canonical
    /// encoding (this is "run-length encoding" proper).
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Self {
        let width = Pixel::try_from(bits.len()).expect("row too wide for Pixel");
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < bits.len() {
            if bits[i] {
                let start = i;
                while i < bits.len() && bits[i] {
                    i += 1;
                }
                runs.push(Run::new(start as Pixel, (i - start) as Pixel));
            } else {
                i += 1;
            }
        }
        Self {
            width,
            runs,
            sig: AtomicU64::new(0),
        }
    }

    /// Decodes to an unencoded bitstring of length `width`.
    #[must_use]
    pub fn to_bits(&self) -> Vec<bool> {
        let mut bits = vec![false; self.width as usize];
        for run in &self.runs {
            for p in run.start()..=run.end() {
                bits[p as usize] = true;
            }
        }
        bits
    }

    fn validate(width: Pixel, runs: &[Run]) -> Result<(), RleError> {
        for (index, run) in runs.iter().enumerate() {
            if u64::from(run.start()) + u64::from(run.len()) > u64::from(width) {
                return Err(RleError::RunExceedsWidth { index, width });
            }
            if index > 0 {
                let prev = &runs[index - 1];
                // Strictly increasing starts and no overlap. Adjacency
                // (next.start == prev.end + 1) is valid input per the paper.
                if run.start() <= prev.end() {
                    return Err(RleError::OutOfOrder { index });
                }
            }
        }
        Ok(())
    }

    /// Row width `b` in pixels.
    #[must_use]
    pub fn width(&self) -> Pixel {
        self.width
    }

    /// The ordered run list.
    #[must_use]
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Consumes the row, returning its run list.
    #[must_use]
    pub fn into_runs(self) -> Vec<Run> {
        self.runs
    }

    /// Number of runs (`k` in the paper's complexity analysis).
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Whether the row has no foreground pixels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of foreground pixels.
    #[must_use]
    pub fn ones(&self) -> u64 {
        self.runs.iter().map(|r| u64::from(r.len())).sum()
    }

    /// Fraction of foreground pixels, in `[0, 1]`.
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.width == 0 {
            0.0
        } else {
            self.ones() as f64 / f64::from(self.width)
        }
    }

    /// Value of the pixel at position `p` (false = background).
    ///
    /// Binary-searches the run list, so `O(log k)`.
    #[must_use]
    pub fn get(&self, p: Pixel) -> bool {
        debug_assert!(
            p < self.width,
            "pixel {p} out of row of width {}",
            self.width
        );
        match self.runs.binary_search_by(|r| r.start().cmp(&p)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.runs[i - 1].contains(p),
        }
    }

    /// 64-bit signature of the row's canonical content (see [`crate::sig`]).
    ///
    /// Computed on first use and cached; every mutator invalidates the
    /// cache, so repeated calls on an unchanged row are one atomic load.
    /// Equal rows — including different (canonical vs non-canonical)
    /// encodings of the same bitstring — always return equal signatures,
    /// and a signature is never 0. Distinct rows collide with probability
    /// ~2⁻⁶⁴; callers that cannot tolerate that use the signature only as
    /// a prefilter (see the pipeline's `verify_signatures`).
    #[must_use]
    pub fn signature(&self) -> u64 {
        let cached = self.sig.load(Ordering::Relaxed);
        if cached != 0 {
            return cached;
        }
        let sig = crate::sig::signature_of_runs(self.width, &self.runs);
        self.sig.store(sig, Ordering::Relaxed);
        sig
    }

    /// The cached signature, if one has been computed since the last
    /// mutation. Mostly useful for tests pinning the cache discipline.
    #[must_use]
    pub fn cached_signature(&self) -> Option<u64> {
        match self.sig.load(Ordering::Relaxed) {
            0 => None,
            s => Some(s),
        }
    }

    /// Appends a run to the end of the row, validating ordering against the
    /// current last run.
    pub fn push_run(&mut self, run: Run) -> Result<(), RleError> {
        let index = self.runs.len();
        if u64::from(run.start()) + u64::from(run.len()) > u64::from(self.width) {
            return Err(RleError::RunExceedsWidth {
                index,
                width: self.width,
            });
        }
        if let Some(prev) = self.runs.last() {
            if run.start() <= prev.end() {
                return Err(RleError::OutOfOrder { index });
            }
        }
        self.runs.push(run);
        *self.sig.get_mut() = 0;
        Ok(())
    }

    /// Appends a run, merging it with the last run when they touch. Always
    /// succeeds as long as the run is in order and within the width; the
    /// result stays canonical if the row was canonical.
    pub fn push_run_coalescing(&mut self, run: Run) -> Result<(), RleError> {
        if let Some(prev) = self.runs.last_mut() {
            if run.start() < prev.start() {
                return Err(RleError::OutOfOrder {
                    index: self.runs.len(),
                });
            }
            if let Some(merged) = prev.union(&run) {
                if u64::from(merged.start()) + u64::from(merged.len()) > u64::from(self.width) {
                    return Err(RleError::RunExceedsWidth {
                        index: self.runs.len(),
                        width: self.width,
                    });
                }
                *prev = merged;
                *self.sig.get_mut() = 0;
                return Ok(());
            }
        }
        self.push_run(run)
    }

    /// Whether the encoding is maximally compressed (no two runs adjacent).
    #[must_use]
    pub fn is_canonical(&self) -> bool {
        self.runs
            .windows(2)
            .all(|w| w[0].end_exclusive() < w[1].start())
    }

    /// Merges adjacent runs in place, producing the canonical encoding.
    /// This is the "additional pass" the paper mentions at the end of §2.
    ///
    /// Returns the number of merges performed.
    ///
    /// The cached [`RleRow::signature`] survives: signatures are defined
    /// over the canonical view, so canonicalizing never changes them.
    pub fn canonicalize(&mut self) -> usize {
        crate::canonical::coalesce_in_place(&mut self.runs)
    }

    /// Returns a canonicalized copy of the row.
    #[must_use]
    pub fn canonicalized(&self) -> Self {
        let mut row = self.clone();
        row.canonicalize();
        row
    }

    /// The complement row (foreground and background exchanged).
    #[must_use]
    pub fn complement(&self) -> Self {
        crate::ops::not(self)
    }

    /// Iterator over positions of all foreground pixels.
    pub fn iter_ones(&self) -> impl Iterator<Item = Pixel> + '_ {
        self.runs.iter().flat_map(|r| r.start()..=r.end())
    }

    /// Extracts the window `[start, start + len)` as a new row of width
    /// `len`, with run positions rebased to the window. Runs straddling the
    /// window edges are clipped. The window is clamped to the row, so a
    /// window reaching past the end simply yields trailing background.
    #[must_use]
    pub fn crop(&self, start: Pixel, len: Pixel) -> RleRow {
        let mut out = RleRow::new(len);
        if len == 0 || start >= self.width {
            return out;
        }
        let end = start.saturating_add(len - 1).min(self.width - 1);
        for run in &self.runs {
            if run.end() < start {
                continue;
            }
            if run.start() > end {
                break;
            }
            let s = run.start().max(start);
            let e = run.end().min(end);
            out.push_run(Run::from_bounds(s - start, e - start))
                .expect("cropped runs stay ordered");
        }
        out
    }

    /// Rebuilds a row from runs that are sorted but possibly adjacent or
    /// overlapping, merging as needed. Useful for constructing rows from
    /// noisy generators. Runs must still be sorted by start.
    pub fn from_sorted_merging(width: Pixel, runs: Vec<Run>) -> Result<Self, RleError> {
        let mut row = RleRow::new(width);
        for (index, run) in runs.into_iter().enumerate() {
            if let Some(prev) = row.runs.last_mut() {
                if run.start() < prev.start() {
                    return Err(RleError::OutOfOrder { index });
                }
                if run.start() <= prev.end_exclusive() {
                    // Overlapping or adjacent: extend.
                    let merged = prev.hull(&run);
                    if u64::from(merged.start()) + u64::from(merged.len()) > u64::from(width) {
                        return Err(RleError::RunExceedsWidth { index, width });
                    }
                    *prev = merged;
                    continue;
                }
            }
            if u64::from(run.start()) + u64::from(run.len()) > u64::from(width) {
                return Err(RleError::RunExceedsWidth { index, width });
            }
            row.runs.push(run);
        }
        Ok(row)
    }
}

impl fmt::Debug for RleRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RleRow[w={}; ", self.width)?;
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{run:?}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(pairs: &[(Pixel, Pixel)]) -> RleRow {
        RleRow::from_pairs(64, pairs).unwrap()
    }

    #[test]
    fn empty_row() {
        let r = RleRow::new(10);
        assert!(r.is_empty());
        assert_eq!(r.run_count(), 0);
        assert_eq!(r.ones(), 0);
        assert_eq!(r.density(), 0.0);
        assert_eq!(r.to_bits(), vec![false; 10]);
        assert!(r.is_canonical());
    }

    #[test]
    fn from_pairs_valid() {
        let r = row(&[(3, 4), (8, 5), (15, 5)]);
        assert_eq!(r.run_count(), 3);
        assert_eq!(r.ones(), 14);
    }

    #[test]
    fn adjacent_runs_are_valid_but_not_canonical() {
        // Paper: "it is permissible, in general, for two intervals in a
        // single bitstring to be directly adjacent".
        let r = row(&[(3, 4), (7, 2)]);
        assert!(!r.is_canonical());
        let mut c = r.clone();
        assert_eq!(c.canonicalize(), 1);
        assert_eq!(c.runs(), &[Run::new(3, 6)]);
        assert!(c.is_canonical());
    }

    #[test]
    fn overlapping_runs_rejected() {
        assert_eq!(
            RleRow::from_pairs(64, &[(3, 4), (6, 2)]),
            Err(RleError::OutOfOrder { index: 1 })
        );
    }

    #[test]
    fn out_of_order_runs_rejected() {
        assert_eq!(
            RleRow::from_pairs(64, &[(10, 2), (3, 2)]),
            Err(RleError::OutOfOrder { index: 1 })
        );
        // Equal starts are also rejected (not strictly increasing).
        assert_eq!(
            RleRow::from_pairs(64, &[(10, 2), (10, 4)]),
            Err(RleError::OutOfOrder { index: 1 })
        );
    }

    #[test]
    fn run_past_width_rejected() {
        assert_eq!(
            RleRow::from_pairs(16, &[(14, 3)]),
            Err(RleError::RunExceedsWidth {
                index: 0,
                width: 16
            })
        );
        // Run ending exactly at width-1 is fine.
        assert!(RleRow::from_pairs(16, &[(14, 2)]).is_ok());
    }

    #[test]
    fn bits_round_trip() {
        let r = row(&[(0, 1), (2, 3), (10, 4), (63, 1)]);
        let bits = r.to_bits();
        assert_eq!(bits.len(), 64);
        let back = RleRow::from_bits(&bits);
        assert_eq!(back, r);
    }

    #[test]
    fn from_bits_produces_canonical() {
        let mut bits = vec![false; 20];
        for p in [1, 2, 3, 5, 6, 19] {
            bits[p] = true;
        }
        let r = RleRow::from_bits(&bits);
        assert!(r.is_canonical());
        assert_eq!(r.runs(), &[Run::new(1, 3), Run::new(5, 2), Run::new(19, 1)]);
    }

    #[test]
    fn get_binary_search() {
        let r = row(&[(3, 4), (10, 1), (20, 5)]);
        let bits = r.to_bits();
        for p in 0..64u32 {
            assert_eq!(r.get(p), bits[p as usize], "pixel {p}");
        }
    }

    #[test]
    fn push_run_validates() {
        let mut r = RleRow::new(32);
        r.push_run(Run::new(0, 4)).unwrap();
        assert_eq!(
            r.push_run(Run::new(2, 2)),
            Err(RleError::OutOfOrder { index: 1 })
        );
        r.push_run(Run::new(4, 2)).unwrap(); // adjacency ok
        assert_eq!(
            r.push_run(Run::new(30, 4)),
            Err(RleError::RunExceedsWidth {
                index: 2,
                width: 32
            })
        );
    }

    #[test]
    fn push_run_coalescing_merges() {
        let mut r = RleRow::new(32);
        r.push_run_coalescing(Run::new(0, 4)).unwrap();
        r.push_run_coalescing(Run::new(4, 2)).unwrap(); // adjacent → merged
        r.push_run_coalescing(Run::new(3, 5)).unwrap(); // overlapping → merged
        assert_eq!(r.runs(), &[Run::new(0, 8)]);
        r.push_run_coalescing(Run::new(10, 2)).unwrap();
        assert_eq!(r.run_count(), 2);
        assert!(r.is_canonical());
        assert_eq!(
            r.push_run_coalescing(Run::new(5, 1)),
            Err(RleError::OutOfOrder { index: 2 })
        );
    }

    #[test]
    fn from_sorted_merging_handles_overlaps() {
        let runs = vec![
            Run::new(0, 5),
            Run::new(3, 4),
            Run::new(7, 1),
            Run::new(20, 2),
        ];
        let r = RleRow::from_sorted_merging(32, runs).unwrap();
        assert_eq!(r.runs(), &[Run::new(0, 8), Run::new(20, 2)]);
    }

    #[test]
    fn crop_windows() {
        let r = row(&[(3, 4), (10, 5), (30, 10)]); // 3..6, 10..14, 30..39
                                                   // Window fully containing a run.
        assert_eq!(r.crop(2, 8).runs(), &[Run::new(1, 4)]);
        // Window clipping both sides of a run.
        assert_eq!(r.crop(11, 2).runs(), &[Run::new(0, 2)]);
        // Window spanning multiple runs.
        let w = r.crop(5, 10); // pixels 5..14
        assert_eq!(w.runs(), &[Run::new(0, 2), Run::new(5, 5)]);
        // Empty window region.
        assert!(r.crop(20, 5).is_empty());
        // Window past the end clamps.
        assert_eq!(r.crop(38, 10).runs(), &[Run::new(0, 2)]);
        assert_eq!(r.crop(38, 10).width(), 10);
        // Degenerate windows.
        assert!(r.crop(0, 0).is_empty());
        assert!(r.crop(64, 5).is_empty());
        // Crop matches bit-level slicing.
        let bits = r.to_bits();
        for (start, len) in [(0u32, 64u32), (3, 7), (9, 6), (13, 1)] {
            let want: Vec<bool> = bits[start as usize..(start + len) as usize].to_vec();
            assert_eq!(r.crop(start, len).to_bits(), want, "window ({start},{len})");
        }
    }

    #[test]
    fn reset_and_copy_from_reuse_the_allocation() {
        let mut r = RleRow::with_capacity(64, 8);
        assert_eq!(r.width(), 64);
        assert!(r.runs.capacity() >= 8);
        r.push_run(Run::new(3, 4)).unwrap();
        let cap = r.runs.capacity();
        r.reset(32);
        assert_eq!(r.width(), 32);
        assert!(r.is_empty());
        assert_eq!(r.runs.capacity(), cap);

        let src = RleRow::from_pairs(48, &[(0, 2), (10, 5)]).unwrap();
        r.copy_from(&src);
        assert_eq!(r, src);
        assert_eq!(r.runs.capacity(), cap, "copy within capacity reuses it");
    }

    #[test]
    fn iter_ones_matches_bits() {
        let r = row(&[(1, 2), (5, 1)]);
        let ones: Vec<Pixel> = r.iter_ones().collect();
        assert_eq!(ones, vec![1, 2, 5]);
    }

    #[test]
    fn density() {
        let r = RleRow::from_pairs(10, &[(0, 3)]).unwrap();
        assert!((r.density() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn signature_cache_discipline() {
        let mut r = row(&[(3, 4)]);
        assert_eq!(r.cached_signature(), None, "lazy until first use");
        let sig = r.signature();
        assert_eq!(r.cached_signature(), Some(sig));

        // Clone carries the cache; equality/hash ignore it.
        let fresh = row(&[(3, 4)]);
        assert_eq!(fresh.cached_signature(), None);
        assert_eq!(fresh, r);
        assert_eq!(r.clone().cached_signature(), Some(sig));

        // Mutators invalidate...
        r.push_run(Run::new(10, 2)).unwrap();
        assert_eq!(r.cached_signature(), None);
        let sig2 = r.signature();
        assert_ne!(sig2, sig);
        r.push_run_coalescing(Run::new(12, 1)).unwrap();
        assert_eq!(r.cached_signature(), None);
        let _ = r.signature();
        r.reset(32);
        assert_eq!(r.cached_signature(), None);

        // ...copy_from copies the source's cache verbatim...
        let src = row(&[(1, 2)]);
        let src_sig = src.signature();
        r.copy_from(&src);
        assert_eq!(r.cached_signature(), Some(src_sig));

        // ...and canonicalize preserves it (signatures are canonical-view).
        let mut nc = row(&[(3, 4), (7, 2)]);
        let nc_sig = nc.signature();
        nc.canonicalize();
        assert_eq!(nc.cached_signature(), Some(nc_sig));
        assert_eq!(nc.signature(), row(&[(3, 6)]).signature());
    }

    #[test]
    fn debug_format() {
        let r = row(&[(3, 4), (8, 5)]);
        assert_eq!(format!("{r:?}"), "RleRow[w=64; (3, 4) (8, 5)]");
    }
}
