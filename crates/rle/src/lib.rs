//! Run-length-encoded (RLE) binary image substrate.
//!
//! This crate provides the compressed-image representation that the systolic
//! algorithm of Ercal, Allen & Feng ("A Systolic Algorithm to Process
//! Compressed Binary Images", IPPS 1999) operates on, together with the
//! *sequential* merge algorithms the paper uses as its baseline.
//!
//! A binary image row of width `b` is a bitstring; only the foreground (`1`)
//! pixels are stored, as a strictly ordered sequence of [`Run`]s. Runs may be
//! adjacent (the encoding is then non-canonical but still valid, exactly as
//! the paper permits for both inputs and outputs); [`RleRow::canonicalize`]
//! merges adjacent runs.
//!
//! # Quick example
//!
//! ```
//! use rle::{Run, RleRow};
//!
//! // The two rows of Figure 1 in the paper.
//! let a = RleRow::from_pairs(32, &[(10, 3), (16, 2), (23, 2), (27, 3)]).unwrap();
//! let b = RleRow::from_pairs(32, &[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)]).unwrap();
//! let diff = rle::ops::xor(&a, &b);
//! assert_eq!(
//!     diff.runs(),
//!     &[Run::new(3, 4), Run::new(8, 2), Run::new(15, 1), Run::new(18, 2), Run::new(30, 1)]
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod canonical;
pub mod error;
pub mod image;
pub mod iter;
pub mod metrics;
pub mod morph;
pub mod ops;
pub mod row;
pub mod run;
pub mod serialize;
pub mod sig;

pub use error::RleError;
pub use image::RleImage;
pub use ops::OpStats;
pub use row::RleRow;
pub use run::{Pixel, Run, RunRelation};
