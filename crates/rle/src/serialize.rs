//! Compact binary serialization for RLE rows and images.
//!
//! The PCB-inspection pipeline the paper targets stores gigabytes of binary
//! image data in RLE form; this module provides the storage format:
//! delta-encoded LEB128 varints (gap to the previous run, then length − 1),
//! which typically takes 2–3 bytes per run regardless of image width.
//!
//! Format:
//!
//! ```text
//! row   := "RLR1" width:u32le  count:varint  (gap:varint len1:varint)*
//! image := "RLI1" width:u32le  height:varint row_body*      (no per-row magic)
//! ```
//!
//! `gap` is the distance from the previous run's end-exclusive position (or
//! from 0 for the first run); `len1` is `len − 1`. Decoding validates the
//! same invariants as [`RleRow::from_runs`].
//!
//! ```
//! use rle::{serialize, RleRow};
//!
//! let row = RleRow::from_pairs(10_000, &[(100, 50), (9_000, 20)]).unwrap();
//! let bytes = serialize::encode_row(&row);
//! assert!(bytes.len() < 20, "two runs cost a handful of bytes");
//! assert_eq!(serialize::decode_row(&bytes).unwrap(), row);
//! ```

use crate::error::RleError;
use crate::image::RleImage;
use crate::row::RleRow;
use crate::run::{Pixel, Run};

const ROW_MAGIC: &[u8; 4] = b"RLR1";
const IMAGE_MAGIC: &[u8; 4] = b"RLI1";

/// Errors arising while decoding the binary format.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic number did not match.
    BadMagic,
    /// The byte stream ended mid-value.
    Truncated,
    /// A varint exceeded 32 bits.
    VarintOverflow,
    /// A declared run/row count exceeds what the remaining input could
    /// possibly encode (every run costs ≥ 2 bytes and ≥ 1 pixel; every row
    /// body costs ≥ 1 byte). Rejecting up front means a truncated or
    /// adversarial header can never trigger allocations or decode work
    /// beyond input-proportional bounds.
    ImplausibleCount {
        /// The count the header declared.
        declared: u64,
        /// The most the remaining input could plausibly hold.
        max_plausible: u64,
    },
    /// The decoded runs violate RLE invariants.
    Invalid(RleError),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic number"),
            DecodeError::Truncated => write!(f, "byte stream truncated"),
            DecodeError::VarintOverflow => write!(f, "varint exceeds 32 bits"),
            DecodeError::ImplausibleCount {
                declared,
                max_plausible,
            } => write!(
                f,
                "declared count {declared} exceeds what the input can hold (≤ {max_plausible})"
            ),
            DecodeError::Invalid(e) => write!(f, "decoded runs invalid: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<RleError> for DecodeError {
    fn from(e: RleError) -> Self {
        DecodeError::Invalid(e)
    }
}

/// Appends `v` as an LEB128 varint (the wire format's integer encoding;
/// public so containers embedding RLI1 blobs — the delta archive — share
/// one implementation).
pub fn put_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `data` at `*pos`, advancing it (see
/// [`put_varint`]). Overflow beyond 32 bits and truncation are typed
/// errors, never panics.
pub fn get_varint(data: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = data.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        // A u32 holds 4 full 7-bit groups plus 4 bits of a fifth group.
        if shift > 28 || (shift == 28 && byte & 0x70 != 0) {
            return Err(DecodeError::VarintOverflow);
        }
        value |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn encode_row_body(row: &RleRow, out: &mut Vec<u8>) {
    put_varint(out, row.run_count() as u32);
    let mut prev_end: Pixel = 0;
    for run in row.runs() {
        put_varint(out, run.start() - prev_end);
        put_varint(out, run.len() - 1);
        prev_end = run.end_exclusive();
    }
}

/// The tightest cheap upper bound on a row's run count: each run costs at
/// least two bytes on the wire (one gap varint, one length varint) and
/// covers at least one pixel of the row.
fn plausible_run_count(remaining_bytes: usize, width: Pixel) -> u64 {
    (remaining_bytes as u64 / 2).min(u64::from(width))
}

fn decode_row_body(data: &[u8], pos: &mut usize, width: Pixel) -> Result<RleRow, DecodeError> {
    let count = get_varint(data, pos)? as usize;
    let max_plausible = plausible_run_count(data.len() - *pos, width);
    if count as u64 > max_plausible {
        return Err(DecodeError::ImplausibleCount {
            declared: count as u64,
            max_plausible,
        });
    }
    let mut row = RleRow::new(width);
    let mut prev_end: u64 = 0;
    for _ in 0..count {
        let gap = u64::from(get_varint(data, pos)?);
        let len = u64::from(get_varint(data, pos)?) + 1;
        let start = prev_end + gap;
        if start + len > u64::from(width) {
            return Err(RleError::RunExceedsWidth {
                index: row.run_count(),
                width,
            }
            .into());
        }
        row.push_run(Run::new(start as Pixel, len as Pixel))?;
        prev_end = start + len;
    }
    Ok(row)
}

/// Serializes a row into the compact binary format.
#[must_use]
pub fn encode_row(row: &RleRow) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + row.run_count() * 3);
    out.extend_from_slice(ROW_MAGIC);
    out.extend_from_slice(&row.width().to_le_bytes());
    encode_row_body(row, &mut out);
    out
}

/// Deserializes a row.
pub fn decode_row(data: &[u8]) -> Result<RleRow, DecodeError> {
    let mut pos = 0usize;
    expect_magic(data, &mut pos, ROW_MAGIC)?;
    let width = read_u32(data, &mut pos)?;
    let row = decode_row_body(data, &mut pos, width)?;
    Ok(row)
}

/// Serializes an image.
#[must_use]
pub fn encode_image(img: &RleImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + img.total_runs() * 3);
    out.extend_from_slice(IMAGE_MAGIC);
    out.extend_from_slice(&img.width().to_le_bytes());
    put_varint(&mut out, img.height() as u32);
    for row in img.rows() {
        encode_row_body(row, &mut out);
    }
    out
}

/// Deserializes an image.
pub fn decode_image(data: &[u8]) -> Result<RleImage, DecodeError> {
    let mut pos = 0usize;
    expect_magic(data, &mut pos, IMAGE_MAGIC)?;
    let width = read_u32(data, &mut pos)?;
    let height = get_varint(data, &mut pos)? as usize;
    // Every row body costs at least one byte (its count varint), so a
    // height the remaining input cannot hold is rejected before any
    // allocation — a 5-byte crafted header cannot reserve gigabytes.
    let remaining = data.len() - pos;
    if height > remaining {
        return Err(DecodeError::ImplausibleCount {
            declared: height as u64,
            max_plausible: remaining as u64,
        });
    }
    let mut rows = Vec::with_capacity(height);
    for _ in 0..height {
        rows.push(decode_row_body(data, &mut pos, width)?);
    }
    Ok(RleImage::from_rows(width, rows)?)
}

fn expect_magic(data: &[u8], pos: &mut usize, magic: &[u8; 4]) -> Result<(), DecodeError> {
    if data.len() < *pos + 4 {
        return Err(DecodeError::Truncated);
    }
    if &data[*pos..*pos + 4] != magic {
        return Err(DecodeError::BadMagic);
    }
    *pos += 4;
    Ok(())
}

fn read_u32(data: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
    let bytes: [u8; 4] = data
        .get(*pos..*pos + 4)
        .ok_or(DecodeError::Truncated)?
        .try_into()
        .unwrap();
    *pos += 4;
    Ok(u32::from_le_bytes(bytes))
}

/// Size of the dense (1 bit/pixel) representation, for compression-ratio
/// reporting.
#[must_use]
pub fn dense_size_bytes(width: Pixel, height: usize) -> usize {
    (width as usize).div_ceil(8) * height
}

// ---------------------------------------------------------------------
// Streaming I/O — the "gigabytes of binary image data" regime the paper's
// introduction describes never materialises a whole image in memory; rows
// are produced, processed and consumed one at a time. The byte stream is
// identical to [`encode_image`] / [`decode_image`], which tests assert.
// ---------------------------------------------------------------------

use std::io::{self, Read, Write};

/// Writes an image row by row without holding it in memory.
pub struct ImageWriter<W: Write> {
    out: W,
    width: Pixel,
    remaining: usize,
    buf: Vec<u8>,
}

impl<W: Write> ImageWriter<W> {
    /// Starts a stream of exactly `height` rows of the given width.
    pub fn new(mut out: W, width: Pixel, height: usize) -> io::Result<Self> {
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(IMAGE_MAGIC);
        header.extend_from_slice(&width.to_le_bytes());
        put_varint(
            &mut header,
            u32::try_from(height).expect("height fits in u32"),
        );
        out.write_all(&header)?;
        Ok(Self {
            out,
            width,
            remaining: height,
            buf: Vec::new(),
        })
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the stream's, or if more rows
    /// are pushed than the declared height.
    pub fn write_row(&mut self, row: &RleRow) -> io::Result<()> {
        assert_eq!(row.width(), self.width, "row width must match the stream");
        assert!(
            self.remaining > 0,
            "stream already holds its declared height"
        );
        self.remaining -= 1;
        self.buf.clear();
        encode_row_body(row, &mut self.buf);
        self.out.write_all(&self.buf)
    }

    /// Finishes the stream, verifying the declared height was met, and
    /// returns the underlying writer.
    pub fn finish(self) -> io::Result<W> {
        if self.remaining != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{} rows still owed to the stream", self.remaining),
            ));
        }
        Ok(self.out)
    }
}

/// Reads an image row by row. Wrap files in a `BufReader`; the decoder
/// reads a byte at a time.
pub struct ImageReader<R: Read> {
    input: R,
    width: Pixel,
    remaining: usize,
}

impl<R: Read> ImageReader<R> {
    /// Opens a stream, reading and validating the header.
    pub fn new(mut input: R) -> Result<Self, DecodeError> {
        let mut magic = [0u8; 4];
        input
            .read_exact(&mut magic)
            .map_err(|_| DecodeError::Truncated)?;
        if &magic != IMAGE_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let mut w = [0u8; 4];
        input
            .read_exact(&mut w)
            .map_err(|_| DecodeError::Truncated)?;
        let width = u32::from_le_bytes(w);
        let height = read_varint_io(&mut input)? as usize;
        Ok(Self {
            input,
            width,
            remaining: height,
        })
    }

    /// Declared row width.
    #[must_use]
    pub fn width(&self) -> Pixel {
        self.width
    }

    /// Rows not yet read.
    #[must_use]
    pub fn rows_remaining(&self) -> usize {
        self.remaining
    }

    /// Reads the next row; `None` once the declared height is exhausted.
    pub fn next_row(&mut self) -> Option<Result<RleRow, DecodeError>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.read_one())
    }

    fn read_one(&mut self) -> Result<RleRow, DecodeError> {
        let count = read_varint_io(&mut self.input)? as usize;
        // The stream's remaining length is unknown, but runs cover at least
        // one pixel each, so a count beyond the row width is corrupt.
        if count as u64 > u64::from(self.width) {
            return Err(DecodeError::ImplausibleCount {
                declared: count as u64,
                max_plausible: u64::from(self.width),
            });
        }
        let mut row = RleRow::new(self.width);
        let mut prev_end: u64 = 0;
        for _ in 0..count {
            let gap = u64::from(read_varint_io(&mut self.input)?);
            let len = u64::from(read_varint_io(&mut self.input)?) + 1;
            let start = prev_end + gap;
            if start + len > u64::from(self.width) {
                return Err(RleError::RunExceedsWidth {
                    index: row.run_count(),
                    width: self.width,
                }
                .into());
            }
            row.push_run(Run::new(start as Pixel, len as Pixel))?;
            prev_end = start + len;
        }
        Ok(row)
    }
}

fn read_varint_io(input: &mut impl Read) -> Result<u32, DecodeError> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        input
            .read_exact(&mut byte)
            .map_err(|_| DecodeError::Truncated)?;
        let byte = byte[0];
        if shift > 28 || (shift == 28 && byte & 0x70 != 0) {
            return Err(DecodeError::VarintOverflow);
        }
        value |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(pairs: &[(Pixel, Pixel)]) -> RleRow {
        RleRow::from_pairs(10_000, pairs).unwrap()
    }

    #[test]
    fn row_round_trip() {
        let cases = [
            RleRow::new(0),
            RleRow::new(10_000),
            row(&[(0, 1)]),
            row(&[(0, 10_000)]),
            row(&[(3, 4), (8, 5), (15, 5), (23, 2), (9_990, 10)]),
            row(&[(0, 2), (2, 2), (4, 2)]), // adjacent (non-canonical) runs
        ];
        for original in cases {
            let bytes = encode_row(&original);
            let back = decode_row(&bytes).unwrap();
            assert_eq!(back, original);
        }
    }

    #[test]
    fn image_round_trip() {
        let rows = vec![
            row(&[(0, 5)]),
            RleRow::new(10_000),
            row(&[(100, 50), (9_000, 1_000)]),
        ];
        let img = RleImage::from_rows(10_000, rows).unwrap();
        let bytes = encode_image(&img);
        assert_eq!(decode_image(&bytes).unwrap(), img);
    }

    #[test]
    fn format_is_compact() {
        // Small gaps and lengths: ~2 bytes per run plus the header.
        let pairs: Vec<(Pixel, Pixel)> = (0..500).map(|i| (i * 20, 10)).collect();
        let r = RleRow::from_pairs(10_000, &pairs).unwrap();
        let bytes = encode_row(&r);
        assert!(
            bytes.len() < 9 + 500 * 3,
            "{} bytes for 500 runs",
            bytes.len()
        );
        // ... and far below the dense bitmap.
        assert!(bytes.len() < dense_size_bytes(10_000, 1));
    }

    #[test]
    fn varint_round_trips_across_sizes() {
        for v in [
            0u32,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX / 2,
            u32::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_row(&row(&[(1, 2)]));
        bytes[0] = b'X';
        assert_eq!(decode_row(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode_row(&row(&[(3, 4), (100, 5)]));
        for cut in 0..bytes.len() {
            let err = decode_row(&bytes[..cut]).unwrap_err();
            // A cut right after the count varint leaves too few bytes for
            // the declared runs, which the plausibility cap reports.
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated
                        | DecodeError::BadMagic
                        | DecodeError::ImplausibleCount { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_implausible_run_count() {
        // Header declares u32::MAX runs backed by two bytes of payload.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(ROW_MAGIC);
        bytes.extend_from_slice(&10_000u32.to_le_bytes());
        put_varint(&mut bytes, u32::MAX);
        bytes.extend_from_slice(&[0, 0]);
        assert!(matches!(
            decode_row(&bytes),
            Err(DecodeError::ImplausibleCount {
                declared,
                max_plausible: 1,
            }) if declared == u64::from(u32::MAX)
        ));
    }

    #[test]
    fn rejects_run_count_beyond_width() {
        // Plenty of bytes, but more runs than the row has pixels.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(ROW_MAGIC);
        bytes.extend_from_slice(&4u32.to_le_bytes());
        put_varint(&mut bytes, 5); // 5 runs in a 4-pixel row
        bytes.extend_from_slice(&[0; 16]);
        assert!(matches!(
            decode_row(&bytes),
            Err(DecodeError::ImplausibleCount {
                declared: 5,
                max_plausible: 4,
            })
        ));
    }

    #[test]
    fn rejects_implausible_image_height() {
        // A 13-byte "image" declaring ~256M rows must be rejected before
        // any allocation happens.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(IMAGE_MAGIC);
        bytes.extend_from_slice(&100u32.to_le_bytes());
        put_varint(&mut bytes, u32::MAX / 16);
        assert!(bytes.len() < 16, "the crafted header stays tiny");
        assert!(matches!(
            decode_image(&bytes),
            Err(DecodeError::ImplausibleCount {
                max_plausible: 0,
                ..
            })
        ));
    }

    #[test]
    fn streaming_reader_rejects_implausible_count() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(IMAGE_MAGIC);
        bytes.extend_from_slice(&8u32.to_le_bytes());
        put_varint(&mut bytes, 1); // one row...
        put_varint(&mut bytes, 200); // ...claiming 200 runs in 8 pixels
        let mut reader = ImageReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            reader.next_row().unwrap(),
            Err(DecodeError::ImplausibleCount {
                declared: 200,
                max_plausible: 8,
            })
        ));
    }

    #[test]
    fn rejects_runs_past_width() {
        // Hand-craft a row whose run exceeds the declared width.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(ROW_MAGIC);
        bytes.extend_from_slice(&8u32.to_le_bytes());
        put_varint(&mut bytes, 1); // one run
        put_varint(&mut bytes, 5); // gap 5
        put_varint(&mut bytes, 9); // len 10 -> exceeds width 8
        assert!(matches!(decode_row(&bytes), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn rejects_varint_overflow() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(ROW_MAGIC);
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F]); // 6-byte varint
        assert_eq!(decode_row(&bytes), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn display_messages() {
        assert!(DecodeError::BadMagic.to_string().contains("magic"));
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        let implausible = DecodeError::ImplausibleCount {
            declared: 1_000,
            max_plausible: 3,
        }
        .to_string();
        assert!(implausible.contains("1000") && implausible.contains("3"));
        assert!(DecodeError::Invalid(RleError::OutOfOrder { index: 1 })
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn streaming_writer_matches_batch_encoder() {
        let rows = vec![
            row(&[(0, 5)]),
            RleRow::new(10_000),
            row(&[(100, 50), (9_000, 1_000)]),
        ];
        let img = RleImage::from_rows(10_000, rows.clone()).unwrap();
        let mut w = ImageWriter::new(Vec::new(), 10_000, 3).unwrap();
        for r in &rows {
            w.write_row(r).unwrap();
        }
        let streamed = w.finish().unwrap();
        assert_eq!(
            streamed,
            encode_image(&img),
            "byte-identical to the batch format"
        );
    }

    #[test]
    fn streaming_reader_round_trips() {
        let rows = vec![
            row(&[(3, 4), (8, 5)]),
            row(&[(0, 10_000)]),
            RleRow::new(10_000),
        ];
        let img = RleImage::from_rows(10_000, rows.clone()).unwrap();
        let bytes = encode_image(&img);
        let mut reader = ImageReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.width(), 10_000);
        assert_eq!(reader.rows_remaining(), 3);
        for want in &rows {
            assert_eq!(&reader.next_row().unwrap().unwrap(), want);
        }
        assert!(reader.next_row().is_none());
        assert_eq!(reader.rows_remaining(), 0);
    }

    #[test]
    fn streaming_writer_enforces_height() {
        let w = ImageWriter::new(Vec::new(), 100, 2).unwrap();
        assert!(w.finish().is_err(), "finishing short must fail");

        let mut w = ImageWriter::new(Vec::new(), 100, 1).unwrap();
        w.write_row(&RleRow::new(100)).unwrap();
        assert!(w.finish().is_ok());
    }

    #[test]
    #[should_panic(expected = "declared height")]
    fn streaming_writer_rejects_extra_rows() {
        let mut w = ImageWriter::new(Vec::new(), 100, 1).unwrap();
        w.write_row(&RleRow::new(100)).unwrap();
        let _ = w.write_row(&RleRow::new(100));
    }

    #[test]
    fn streaming_reader_rejects_garbage() {
        assert!(matches!(
            ImageReader::new(&b"XXXX"[..]),
            Err(DecodeError::BadMagic)
        ));
        assert!(matches!(
            ImageReader::new(&b"RL"[..]),
            Err(DecodeError::Truncated)
        ));
        // Truncated mid-row.
        let img = RleImage::from_rows(100, vec![row(&[(3, 4)]).crop(0, 100)]).unwrap();
        let bytes = encode_image(&img);
        let mut reader = ImageReader::new(&bytes[..bytes.len() - 1]).unwrap();
        assert!(matches!(
            reader.next_row().unwrap(),
            Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn streaming_pipeline_diff_without_materializing() {
        // Two "gigabyte-scale" streams (shrunk): diff row by row, write the
        // mask stream, never holding an image.
        let width = 5_000u32;
        let mut base_rows = Vec::new();
        for i in 0..20u32 {
            base_rows.push(row(&[(i * 7 % 4_000, 30), (4_500, 100)]).crop(0, width));
        }
        let img_a = RleImage::from_rows(width, base_rows.clone()).unwrap();
        let img_b = {
            let mut rows = base_rows.clone();
            rows[7] = rows[7].crop(0, width); // identical
            rows[13] = row(&[(1, 2)]).crop(0, width); // changed
            RleImage::from_rows(width, rows).unwrap()
        };
        let (bytes_a, bytes_b) = (encode_image(&img_a), encode_image(&img_b));

        let mut ra = ImageReader::new(&bytes_a[..]).unwrap();
        let mut rb = ImageReader::new(&bytes_b[..]).unwrap();
        let mut out = ImageWriter::new(Vec::new(), width, 20).unwrap();
        while let (Some(a), Some(b)) = (ra.next_row(), rb.next_row()) {
            let diff = crate::ops::xor(&a.unwrap(), &b.unwrap());
            out.write_row(&diff).unwrap();
        }
        let mask_bytes = out.finish().unwrap();
        let mask = decode_image(&mask_bytes).unwrap();
        assert_eq!(mask, img_a.xor(&img_b).unwrap());
    }

    #[test]
    fn dense_size() {
        assert_eq!(dense_size_bytes(8, 10), 10);
        assert_eq!(dense_size_bytes(9, 10), 20);
        assert_eq!(dense_size_bytes(0, 10), 0);
    }
}
