//! Canonicalization: merging adjacent runs into the maximally-compressed
//! encoding.
//!
//! The paper permits adjacent runs in both inputs and outputs, and notes that
//! "an additional pass can be made at the end to ensure the encoding is
//! completely compressed" (§2). The systolic algorithm's Observation
//! (§5) about the `k3 + 1` iteration bound only holds for inputs "compressed
//! as much as possible", so experiments canonicalize their inputs with these
//! helpers.

use crate::run::Run;

/// Merges adjacent (and, defensively, overlapping) runs in place.
///
/// The slice must already be sorted by start. Returns the number of merges
/// performed, i.e. `runs.len()` shrinks by exactly this amount.
pub fn coalesce_in_place(runs: &mut Vec<Run>) -> usize {
    let before = runs.len();
    if before < 2 {
        return 0;
    }
    let mut write = 0usize;
    for read in 1..runs.len() {
        let cur = runs[read];
        let prev = runs[write];
        debug_assert!(cur.start() >= prev.start(), "coalesce input must be sorted");
        if cur.start() <= prev.end_exclusive() {
            runs[write] = prev.hull(&cur);
        } else {
            write += 1;
            runs[write] = cur;
        }
    }
    runs.truncate(write + 1);
    before - runs.len()
}

/// Returns a coalesced copy of a sorted run slice.
#[must_use]
pub fn coalesced(runs: &[Run]) -> Vec<Run> {
    let mut out = runs.to_vec();
    coalesce_in_place(&mut out);
    out
}

/// Whether a sorted run slice is maximally compressed (no two runs adjacent
/// or overlapping).
#[must_use]
pub fn is_coalesced(runs: &[Run]) -> bool {
    runs.windows(2).all(|w| w[0].end_exclusive() < w[1].start())
}

/// Counts the merges a coalescing pass *would* perform, without mutating.
/// `runs.len() - count_adjacencies(runs)` is the canonical run count `k3`
/// used when evaluating the paper's Observation.
#[must_use]
pub fn count_adjacencies(runs: &[Run]) -> usize {
    runs.windows(2)
        .filter(|w| w[1].start() <= w[0].end_exclusive())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs(pairs: &[(u32, u32)]) -> Vec<Run> {
        pairs.iter().map(|&(s, l)| Run::new(s, l)).collect()
    }

    #[test]
    fn empty_and_single_are_noops() {
        let mut v: Vec<Run> = vec![];
        assert_eq!(coalesce_in_place(&mut v), 0);
        let mut v = runs(&[(3, 4)]);
        assert_eq!(coalesce_in_place(&mut v), 0);
        assert_eq!(v, runs(&[(3, 4)]));
    }

    #[test]
    fn merges_adjacent_pairs() {
        let mut v = runs(&[(0, 2), (2, 3), (10, 1)]);
        assert_eq!(coalesce_in_place(&mut v), 1);
        assert_eq!(v, runs(&[(0, 5), (10, 1)]));
    }

    #[test]
    fn merges_chains() {
        let mut v = runs(&[(0, 1), (1, 1), (2, 1), (3, 1)]);
        assert_eq!(coalesce_in_place(&mut v), 3);
        assert_eq!(v, runs(&[(0, 4)]));
    }

    #[test]
    fn merges_overlaps_defensively() {
        let mut v = runs(&[(0, 5), (3, 10)]);
        assert_eq!(coalesce_in_place(&mut v), 1);
        assert_eq!(v, runs(&[(0, 13)]));
    }

    #[test]
    fn leaves_separated_runs_alone() {
        let mut v = runs(&[(0, 2), (3, 2), (10, 1)]);
        assert_eq!(coalesce_in_place(&mut v), 0);
        assert_eq!(v, runs(&[(0, 2), (3, 2), (10, 1)]));
    }

    #[test]
    fn predicates_agree_with_mutation() {
        let cases = [
            runs(&[(0, 2), (2, 3)]),
            runs(&[(0, 2), (3, 3)]),
            runs(&[(0, 1), (1, 1), (5, 1), (6, 1)]),
            runs(&[]),
        ];
        for case in cases {
            let mut v = case.clone();
            let merges = coalesce_in_place(&mut v);
            assert_eq!(merges, count_adjacencies(&case), "case {case:?}");
            assert_eq!(is_coalesced(&case), merges == 0, "case {case:?}");
            assert!(is_coalesced(&v));
        }
    }

    #[test]
    fn coalesced_copy_matches_in_place() {
        let v = runs(&[(0, 2), (2, 3), (6, 1), (7, 2)]);
        let copy = coalesced(&v);
        let mut inplace = v.clone();
        coalesce_in_place(&mut inplace);
        assert_eq!(copy, inplace);
        assert_eq!(copy, runs(&[(0, 5), (6, 3)]));
    }
}
