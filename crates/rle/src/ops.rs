//! Sequential boolean operations on RLE rows.
//!
//! [`xor_raw_with_stats`] is a faithful implementation of the sequential
//! image-difference algorithm of §2 of the paper: a single merging pass over
//! the two run arrays that, at each iteration, XORs the two head runs, emits
//! the smaller resulting piece and leaves the remainder in the array it came
//! from. Its iteration count — `Θ(k1 + k2)` in the best, worst and average
//! case, as the paper notes — is reported in [`OpStats`] and is the
//! "sequential iterations" column of Table 1.
//!
//! The other boolean operations ([`and`], [`or`], [`sub`], [`not`]) are
//! implemented with a generic two-pointer boundary sweep ([`combine`]), which
//! also provides an independent implementation of XOR used to cross-check
//! the paper-faithful one.

use crate::error::RleError;
use crate::row::RleRow;
use crate::run::{Pixel, Run};

/// Cost accounting for a sequential merge operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Number of merge-loop iterations executed. This is the time measure
    /// the paper reports for the sequential algorithm.
    pub iterations: u64,
    /// Number of runs in the (uncoalesced) output.
    pub output_runs: usize,
}

/// XOR (image difference) of two rows, canonicalized.
///
/// # Panics
///
/// Panics if the rows have different widths.
#[must_use]
pub fn xor(a: &RleRow, b: &RleRow) -> RleRow {
    let (mut row, _) = xor_raw_with_stats(a, b);
    row.canonicalize();
    row
}

/// Canonical XOR written into a reusable output row, so steady-state
/// callers (the pipeline workers) never touch the allocator: `out` is
/// [`RleRow::reset`] and refilled in place, growing its run vector at most
/// up to the largest diff it has ever held.
///
/// Fast paths skip the merge entirely: equal run lists yield the empty
/// diff, and an empty side yields a canonicalized copy of the other.
/// Returns the merge cost ([`OpStats::iterations`] is `0` on a fast path,
/// and [`OpStats::output_runs`] counts the runs left in `out`).
///
/// # Panics
///
/// Panics if the rows have different widths.
pub fn xor_into(a: &RleRow, b: &RleRow, out: &mut RleRow) -> OpStats {
    assert_eq!(a.width(), b.width(), "xor operands must have equal widths");
    if a.runs() == b.runs() {
        // x ^ x = 0. Catches ptr-equal rows and identical encodings.
        out.reset(a.width());
        return OpStats::default();
    }
    if a.is_empty() || b.is_empty() {
        out.copy_from(if a.is_empty() { b } else { a });
        out.canonicalize();
        return OpStats {
            iterations: 0,
            output_runs: out.run_count(),
        };
    }
    let mut stats = xor_raw_into(a, b, out);
    out.canonicalize();
    stats.output_runs = out.run_count();
    stats
}

/// XOR of two rows exactly as the paper's sequential algorithm produces it:
/// ordered and non-overlapping, but possibly containing adjacent runs.
/// Also returns the iteration count.
///
/// # Panics
///
/// Panics if the rows have different widths.
#[must_use]
pub fn xor_raw_with_stats(a: &RleRow, b: &RleRow) -> (RleRow, OpStats) {
    let mut out = RleRow::new(a.width());
    let stats = xor_raw_into(a, b, &mut out);
    (out, stats)
}

/// [`xor_raw_with_stats`], but writing into a reusable output row (which is
/// reset to `a`'s width first).
///
/// # Panics
///
/// Panics if the rows have different widths.
pub fn xor_raw_into(a: &RleRow, b: &RleRow, out: &mut RleRow) -> OpStats {
    assert_eq!(a.width(), b.width(), "xor operands must have equal widths");
    out.reset(a.width());
    let mut stats = OpStats::default();

    let mut sa = HeadStream::new(a.runs());
    let mut sb = HeadStream::new(b.runs());

    loop {
        match (sa.peek(), sb.peek()) {
            (None, None) => break,
            (Some(x), None) => {
                stats.iterations += 1;
                out.push_run(x).expect("merge output is ordered");
                sa.pop();
            }
            (None, Some(y)) => {
                stats.iterations += 1;
                out.push_run(y).expect("merge output is ordered");
                sb.pop();
            }
            (Some(x), Some(y)) => {
                stats.iterations += 1;
                // Order the pair: `lo` is the smaller run under the paper's
                // (start, end) order, `hi` the larger. `lo_from_a` remembers
                // provenance so remainders return to the right array.
                let (lo, hi, lo_from_a) = if x.key() <= y.key() {
                    (x, y, true)
                } else {
                    (y, x, false)
                };

                if lo.end() < hi.start() {
                    // Disjoint (possibly adjacent): the smaller run is final.
                    out.push_run(lo).expect("merge output is ordered");
                    if lo_from_a {
                        sa.pop();
                    } else {
                        sb.pop();
                    }
                } else {
                    // Overlapping (shared pixels): XOR the pair. The prefix
                    // before the overlap is final output; the suffix after
                    // the overlap is "left in the array it came from" — the
                    // array whose run reached further right.
                    if hi.start() > lo.start() {
                        out.push_run(Run::from_bounds(lo.start(), hi.start() - 1))
                            .expect("merge output is ordered");
                    }
                    let overlap_end = lo.end().min(hi.end());
                    let far_end = lo.end().max(hi.end());
                    let suffix = Run::from_bounds_opt(overlap_end + 1, far_end);
                    let suffix_from_a = if lo.end() >= hi.end() {
                        lo_from_a
                    } else {
                        !lo_from_a
                    };
                    sa.pop();
                    sb.pop();
                    if let Some(sfx) = suffix {
                        if suffix_from_a {
                            sa.push_back(sfx);
                        } else {
                            sb.push_back(sfx);
                        }
                    }
                }
            }
        }
    }

    stats.output_runs = out.run_count();
    stats
}

/// A run array viewed as a stream whose head can be replaced by a partially
/// consumed remainder — the "leave the remainder in the array it came from"
/// device of the paper's sequential algorithm.
struct HeadStream<'a> {
    runs: &'a [Run],
    /// Index of the next run to pull from `runs`.
    next: usize,
    /// A remainder pushed back in front of `runs[next..]`, if any.
    head: Option<Run>,
}

impl<'a> HeadStream<'a> {
    fn new(runs: &'a [Run]) -> Self {
        Self {
            runs,
            next: 0,
            head: None,
        }
    }

    /// Current head, without consuming it.
    fn peek(&self) -> Option<Run> {
        self.head.or_else(|| self.runs.get(self.next).copied())
    }

    /// Consumes the current head.
    fn pop(&mut self) {
        if self.head.take().is_none() {
            self.next += 1;
        }
    }

    /// Replaces the (consumed) head with a remainder run.
    fn push_back(&mut self, run: Run) {
        debug_assert!(self.head.is_none(), "only one remainder can be pending");
        self.head = Some(run);
    }
}

/// XOR of an arbitrary set of rows in one boundary-parity sweep — the
/// set-level difference of the paper's §4 correctness argument, where the
/// result has a `1` wherever an odd number of rows do.
///
/// `O(K log K)` in the total number of runs `K`, independent of row widths.
/// The empty set yields the all-background row. Canonical output.
///
/// # Panics
///
/// Panics if the rows have differing widths.
#[must_use]
pub fn xor_many<'a>(rows: impl IntoIterator<Item = &'a RleRow>, width: Pixel) -> RleRow {
    // Each run toggles coverage parity at `start` and `end + 1`; odd-parity
    // intervals form the XOR (Corollaries 3.1/3.2 of the paper).
    let mut events: Vec<(Pixel, i32)> = Vec::new();
    for row in rows {
        assert_eq!(
            row.width(),
            width,
            "xor_many operands must have equal widths"
        );
        for run in row.runs() {
            events.push((run.start(), 1));
            events.push((run.end() + 1, -1));
        }
    }
    events.sort_unstable();
    let mut out = RleRow::new(width);
    let mut parity = 0i32;
    let mut open_at: Option<Pixel> = None;
    for (pos, delta) in events {
        let was_odd = parity % 2 != 0;
        parity += delta;
        let is_odd = parity % 2 != 0;
        match (was_odd, is_odd) {
            (false, true) => open_at = Some(pos),
            (true, false) => {
                let start = open_at.take().expect("odd interval must have opened");
                if pos > start {
                    out.push_run_coalescing(Run::from_bounds(start, pos - 1))
                        .expect("sweep emits ordered runs");
                }
            }
            _ => {}
        }
    }
    debug_assert!(open_at.is_none(), "parity must return to even");
    out
}

/// Bitwise AND (intersection) of two rows. Canonical output.
#[must_use]
pub fn and(a: &RleRow, b: &RleRow) -> RleRow {
    combine(a, b, |x, y| x && y)
}

/// Bitwise OR (union) of two rows. Canonical output.
#[must_use]
pub fn or(a: &RleRow, b: &RleRow) -> RleRow {
    combine(a, b, |x, y| x || y)
}

/// Set difference `a AND NOT b`. Canonical output.
#[must_use]
pub fn sub(a: &RleRow, b: &RleRow) -> RleRow {
    combine(a, b, |x, y| x && !y)
}

/// Complement of a row within its width. Canonical output.
#[must_use]
pub fn not(a: &RleRow) -> RleRow {
    let width = a.width();
    let mut out = RleRow::new(width);
    let mut pos: Pixel = 0;
    for run in a.runs() {
        if run.start() > pos {
            out.push_run(Run::from_bounds(pos, run.start() - 1))
                .expect("complement output is ordered");
        }
        pos = run.end_exclusive();
    }
    if pos < width {
        out.push_run(Run::from_bounds(pos, width - 1))
            .expect("complement output is ordered");
    }
    out
}

/// Generic boolean combination of two rows via a two-pointer boundary sweep.
/// Output is canonical. `f` receives the (a, b) pixel values of a segment.
///
/// # Panics
///
/// Panics if the rows have different widths.
#[must_use]
pub fn combine(a: &RleRow, b: &RleRow, f: impl Fn(bool, bool) -> bool) -> RleRow {
    try_combine(a, b, f).expect("combine operands must have equal widths")
}

/// Fallible variant of [`combine`].
pub fn try_combine(
    a: &RleRow,
    b: &RleRow,
    f: impl Fn(bool, bool) -> bool,
) -> Result<RleRow, RleError> {
    if a.width() != b.width() {
        return Err(RleError::DimensionMismatch {
            left: u64::from(a.width()),
            right: u64::from(b.width()),
        });
    }
    let width = a.width();
    let mut out = RleRow::new(width);
    let (ra, rb) = (a.runs(), b.runs());
    let (mut ai, mut bi) = (0usize, 0usize);
    let mut pos: Pixel = 0;

    while pos < width {
        // Current values and the next position where either input changes.
        let (aval, a_next) = segment_state(ra, &mut ai, pos, width);
        let (bval, b_next) = segment_state(rb, &mut bi, pos, width);
        let next = a_next.min(b_next);
        debug_assert!(next > pos);
        if f(aval, bval) {
            out.push_run_coalescing(Run::from_bounds(pos, next - 1))
                .expect("sweep output is ordered");
        }
        pos = next;
    }
    Ok(out)
}

/// For the sweep: value of the row at `pos` and the first position `> pos`
/// where the value changes (clamped to `width`). `idx` points at the first
/// run whose end is `>= pos` and is advanced as the sweep moves right.
fn segment_state(runs: &[Run], idx: &mut usize, pos: Pixel, width: Pixel) -> (bool, Pixel) {
    while *idx < runs.len() && runs[*idx].end() < pos {
        *idx += 1;
    }
    match runs.get(*idx) {
        Some(run) if run.contains(pos) => (true, (run.end() + 1).min(width)),
        Some(run) => (false, run.start().min(width)),
        None => (false, width),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(pairs: &[(Pixel, Pixel)]) -> RleRow {
        RleRow::from_pairs(40, pairs).unwrap()
    }

    /// Reference implementation on decoded bits.
    fn bitwise(a: &RleRow, b: &RleRow, f: impl Fn(bool, bool) -> bool) -> RleRow {
        let (ba, bb) = (a.to_bits(), b.to_bits());
        let bits: Vec<bool> = ba.iter().zip(&bb).map(|(&x, &y)| f(x, y)).collect();
        RleRow::from_bits(&bits)
    }

    #[test]
    fn figure1_example() {
        // The worked example of Figure 1 in the paper.
        let a = row(&[(10, 3), (16, 2), (23, 2), (27, 3)]);
        let b = row(&[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)]);
        let expected = row(&[(3, 4), (8, 2), (15, 1), (18, 2), (30, 1)]);
        assert_eq!(xor(&a, &b), expected);
        assert_eq!(xor(&b, &a), expected, "xor is symmetric");
    }

    #[test]
    fn xor_identities() {
        let a = row(&[(3, 4), (10, 2)]);
        let empty = RleRow::new(40);
        assert_eq!(xor(&a, &empty), a.clone());
        assert_eq!(xor(&empty, &a), a.clone());
        assert!(xor(&a, &a).is_empty(), "x ^ x = 0");
        assert!(xor(&empty, &empty).is_empty());
    }

    #[test]
    fn xor_matches_bitwise_reference_on_fixed_cases() {
        let cases = [
            (row(&[(0, 5)]), row(&[(2, 8)])),
            (row(&[(0, 5)]), row(&[(5, 5)])),  // adjacent
            (row(&[(0, 10)]), row(&[(3, 4)])), // nested
            (row(&[(0, 10)]), row(&[(0, 4)])), // shared start
            (row(&[(4, 6)]), row(&[(0, 10)])), // shared end
            (row(&[(0, 3), (5, 3), (10, 3)]), row(&[(1, 10)])),
            (
                row(&[(0, 1), (2, 1), (4, 1)]),
                row(&[(1, 1), (3, 1), (5, 1)]),
            ),
        ];
        for (a, b) in cases {
            assert_eq!(xor(&a, &b), bitwise(&a, &b, |x, y| x ^ y), "{a:?} ^ {b:?}");
        }
    }

    #[test]
    fn raw_xor_may_contain_adjacent_runs() {
        // Two disjoint adjacent inputs pass through: output (0,5)(5,5) is
        // ordered and non-overlapping but not canonical.
        let a = row(&[(0, 5)]);
        let b = row(&[(5, 5)]);
        let (raw, stats) = xor_raw_with_stats(&a, &b);
        assert_eq!(raw.runs(), &[Run::new(0, 5), Run::new(5, 5)]);
        assert!(!raw.is_canonical());
        assert_eq!(stats.output_runs, 2);
        assert_eq!(xor(&a, &b).runs(), &[Run::new(0, 10)]);
    }

    #[test]
    fn xor_into_matches_xor_and_reuses_the_buffer() {
        let cases = [
            (row(&[(10, 3), (16, 2)]), row(&[(3, 4), (15, 5)])),
            (row(&[(0, 5)]), row(&[(5, 5)])), // adjacent → coalesced
            (row(&[(0, 10)]), row(&[(3, 4)])),
            (row(&[(2, 3)]), RleRow::new(40)), // empty side → copy
            (RleRow::new(40), row(&[(2, 3)])),
            (row(&[(1, 4)]), row(&[(1, 4)])), // equal → empty
            (RleRow::new(40), RleRow::new(40)),
        ];
        let mut out = RleRow::new(0);
        for (a, b) in cases {
            let stats = xor_into(&a, &b, &mut out);
            assert_eq!(out, xor(&a, &b), "{a:?} ^ {b:?}");
            assert!(out.is_canonical());
            assert_eq!(stats.output_runs, out.run_count());
            assert!(
                stats.iterations <= (a.run_count() + b.run_count()) as u64,
                "merge cost bounded by k1 + k2"
            );
        }
    }

    #[test]
    fn xor_into_fast_paths_report_zero_iterations() {
        let a = row(&[(3, 4), (10, 2)]);
        let mut out = RleRow::new(0);
        assert_eq!(xor_into(&a, &a.clone(), &mut out).iterations, 0);
        assert!(out.is_empty());
        let empty = RleRow::new(40);
        assert_eq!(xor_into(&a, &empty, &mut out).iterations, 0);
        assert_eq!(out, a);
        // A non-canonical survivor is canonicalized on the copy fast path.
        let adjacent = RleRow::from_runs(40, vec![Run::new(0, 5), Run::new(5, 5)]).unwrap();
        xor_into(&adjacent, &empty, &mut out);
        assert_eq!(out.runs(), &[Run::new(0, 10)]);
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn xor_into_panics_on_width_mismatch() {
        let mut out = RleRow::new(0);
        let _ = xor_into(&RleRow::new(10), &RleRow::new(12), &mut out);
    }

    #[test]
    fn sequential_iterations_scale_with_total_runs() {
        // Time for the sequential algorithm is proportional to the total
        // number of runs in the two images together (paper §1, §5). For
        // fully disjoint interleaved runs each iteration emits one run.
        let a = RleRow::from_pairs(400, &(0..50).map(|i| (i * 8, 2)).collect::<Vec<_>>()).unwrap();
        let b =
            RleRow::from_pairs(400, &(0..50).map(|i| (i * 8 + 4, 2)).collect::<Vec<_>>()).unwrap();
        let (_, stats) = xor_raw_with_stats(&a, &b);
        assert_eq!(stats.iterations, 100);
    }

    #[test]
    fn identical_inputs_still_cost_k_iterations() {
        // Best case is still Θ(k1 + k2): every pair must be examined.
        let a = RleRow::from_pairs(400, &(0..50).map(|i| (i * 8, 3)).collect::<Vec<_>>()).unwrap();
        let (out, stats) = xor_raw_with_stats(&a, &a.clone());
        assert!(out.is_empty());
        assert_eq!(stats.iterations, 50);
    }

    #[test]
    fn and_or_sub_match_bitwise_reference() {
        let a = row(&[(0, 6), (10, 4), (20, 1)]);
        let b = row(&[(3, 10), (19, 3)]);
        assert_eq!(and(&a, &b), bitwise(&a, &b, |x, y| x && y));
        assert_eq!(or(&a, &b), bitwise(&a, &b, |x, y| x || y));
        assert_eq!(sub(&a, &b), bitwise(&a, &b, |x, y| x && !y));
        assert_eq!(sub(&b, &a), bitwise(&b, &a, |x, y| x && !y));
    }

    #[test]
    fn not_complements() {
        let a = row(&[(0, 3), (10, 5), (39, 1)]);
        assert_eq!(not(&a), bitwise(&a, &a, |x, _| !x));
        let empty = RleRow::new(40);
        assert_eq!(not(&empty).runs(), &[Run::new(0, 40)]);
        assert!(not(&not(&a)) == a, "double complement");
        // Full row complements to empty.
        let full = RleRow::from_pairs(40, &[(0, 40)]).unwrap();
        assert!(not(&full).is_empty());
    }

    #[test]
    fn not_on_zero_width_row() {
        let empty = RleRow::new(0);
        assert!(not(&empty).is_empty());
    }

    #[test]
    fn combine_xor_agrees_with_paper_algorithm() {
        let a = row(&[(10, 3), (16, 2), (23, 2), (27, 3)]);
        let b = row(&[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)]);
        assert_eq!(combine(&a, &b, |x, y| x ^ y), xor(&a, &b));
    }

    #[test]
    fn try_combine_rejects_width_mismatch() {
        let a = RleRow::new(10);
        let b = RleRow::new(12);
        assert_eq!(
            try_combine(&a, &b, |x, y| x ^ y),
            Err(RleError::DimensionMismatch {
                left: 10,
                right: 12
            })
        );
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn xor_panics_on_width_mismatch() {
        let _ = xor(&RleRow::new(10), &RleRow::new(12));
    }

    #[test]
    fn xor_many_edge_cases() {
        // Empty set and singleton.
        assert!(xor_many([], 40).is_empty());
        let a = row(&[(3, 4), (10, 2)]);
        assert_eq!(xor_many([&a], 40), a);
        // Pair agrees with binary xor.
        let b = row(&[(0, 5), (11, 3)]);
        assert_eq!(xor_many([&a, &b], 40), xor(&a, &b));
        // x ^ x ^ x = x; x ^ x = 0.
        assert_eq!(xor_many([&a, &a, &a], 40), a);
        assert!(xor_many([&a, &a], 40).is_empty());
    }

    #[test]
    fn xor_many_equals_binary_fold() {
        let rows = [
            row(&[(0, 6), (10, 4), (20, 1)]),
            row(&[(3, 10), (19, 3)]),
            row(&[(1, 1), (5, 20)]),
            row(&[(0, 40)]),
            RleRow::new(40),
        ];
        let fold = rows.iter().fold(RleRow::new(40), |acc, r| xor(&acc, r));
        assert_eq!(xor_many(rows.iter(), 40), fold);
    }

    #[test]
    fn xor_many_splits_a_row_into_its_runs() {
        // Corollary 3.1: the XOR of a row's runs, viewed as singleton rows,
        // is the row itself.
        let a = row(&[(3, 4), (10, 2), (20, 5)]);
        let singletons: Vec<RleRow> = a
            .runs()
            .iter()
            .map(|r| RleRow::from_runs(40, vec![*r]).unwrap())
            .collect();
        assert_eq!(xor_many(singletons.iter(), 40), a);
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn xor_many_checks_widths() {
        let a = RleRow::new(10);
        let _ = xor_many([&a], 12);
    }

    #[test]
    fn de_morgan() {
        let a = row(&[(0, 6), (10, 4)]);
        let b = row(&[(3, 10)]);
        assert_eq!(not(&and(&a, &b)), or(&not(&a), &not(&b)));
        assert_eq!(not(&or(&a, &b)), and(&not(&a), &not(&b)));
    }

    #[test]
    fn xor_via_or_minus_and() {
        let a = row(&[(0, 6), (10, 4), (21, 7)]);
        let b = row(&[(3, 10), (25, 5)]);
        assert_eq!(xor(&a, &b), sub(&or(&a, &b), &and(&a, &b)));
    }
}
