//! Iterators over RLE rows: segments, boundaries, and gap runs.

use crate::row::RleRow;
use crate::run::{Pixel, Run};

/// A maximal constant-valued segment of a row, produced by [`segments`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// First pixel of the segment.
    pub start: Pixel,
    /// Last pixel of the segment (inclusive).
    pub end: Pixel,
    /// Pixel value throughout the segment.
    pub value: bool,
}

impl Segment {
    /// Number of pixels covered.
    #[must_use]
    pub fn len(&self) -> Pixel {
        self.end - self.start + 1
    }

    /// Segments are never empty; for API symmetry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Iterates the row as alternating background/foreground segments covering
/// `[0, width)` exactly once. For a canonical row the segments strictly
/// alternate; for a non-canonical row consecutive foreground runs that touch
/// are reported as a single foreground segment.
pub fn segments(row: &RleRow) -> impl Iterator<Item = Segment> + '_ {
    SegmentIter {
        row,
        pos: 0,
        idx: 0,
    }
}

struct SegmentIter<'a> {
    row: &'a RleRow,
    pos: Pixel,
    idx: usize,
}

impl Iterator for SegmentIter<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        let width = self.row.width();
        if self.pos >= width {
            return None;
        }
        let runs = self.row.runs();
        match runs.get(self.idx) {
            Some(run) if run.start() <= self.pos => {
                // Foreground: extend across touching runs.
                let start = self.pos;
                let mut end = run.end();
                self.idx += 1;
                while let Some(next) = runs.get(self.idx) {
                    if next.start() <= end + 1 {
                        end = end.max(next.end());
                        self.idx += 1;
                    } else {
                        break;
                    }
                }
                self.pos = end + 1;
                Some(Segment {
                    start,
                    end,
                    value: true,
                })
            }
            Some(run) => {
                let seg = Segment {
                    start: self.pos,
                    end: run.start() - 1,
                    value: false,
                };
                self.pos = run.start();
                Some(seg)
            }
            None => {
                let seg = Segment {
                    start: self.pos,
                    end: width - 1,
                    value: false,
                };
                self.pos = width;
                Some(seg)
            }
        }
    }
}

/// Iterates the background gaps of a row (the complement's runs), including
/// leading and trailing gaps.
pub fn gaps(row: &RleRow) -> impl Iterator<Item = Run> + '_ {
    segments(row)
        .filter(|s| !s.value)
        .map(|s| Run::from_bounds(s.start, s.end))
}

/// Positions at which the pixel value changes, i.e. the boundaries `p` such
/// that `row[p - 1] != row[p]` (with `row[-1]` taken as background), in
/// increasing order. An all-background row yields nothing.
pub fn boundaries(row: &RleRow) -> impl Iterator<Item = Pixel> + '_ {
    let width = row.width();
    segments(row).flat_map(move |s| {
        let mut out = Vec::with_capacity(2);
        if s.value {
            out.push(s.start);
            if s.end + 1 < width {
                out.push(s.end + 1);
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(pairs: &[(Pixel, Pixel)]) -> RleRow {
        RleRow::from_pairs(20, pairs).unwrap()
    }

    #[test]
    fn segments_cover_row_exactly() {
        let r = row(&[(2, 3), (8, 2)]);
        let segs: Vec<Segment> = segments(&r).collect();
        assert_eq!(
            segs,
            vec![
                Segment {
                    start: 0,
                    end: 1,
                    value: false
                },
                Segment {
                    start: 2,
                    end: 4,
                    value: true
                },
                Segment {
                    start: 5,
                    end: 7,
                    value: false
                },
                Segment {
                    start: 8,
                    end: 9,
                    value: true
                },
                Segment {
                    start: 10,
                    end: 19,
                    value: false
                },
            ]
        );
        let total: u64 = segs.iter().map(|s| u64::from(s.len())).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn segments_merge_touching_runs() {
        let r = row(&[(2, 3), (5, 2)]); // adjacent, non-canonical
        let segs: Vec<Segment> = segments(&r).filter(|s| s.value).collect();
        assert_eq!(
            segs,
            vec![Segment {
                start: 2,
                end: 6,
                value: true
            }]
        );
    }

    #[test]
    fn segments_of_empty_row() {
        let r = RleRow::new(5);
        let segs: Vec<Segment> = segments(&r).collect();
        assert_eq!(
            segs,
            vec![Segment {
                start: 0,
                end: 4,
                value: false
            }]
        );
    }

    #[test]
    fn segments_of_full_row() {
        let r = RleRow::from_pairs(5, &[(0, 5)]).unwrap();
        let segs: Vec<Segment> = segments(&r).collect();
        assert_eq!(
            segs,
            vec![Segment {
                start: 0,
                end: 4,
                value: true
            }]
        );
    }

    #[test]
    fn segments_of_zero_width_row() {
        let r = RleRow::new(0);
        assert_eq!(segments(&r).count(), 0);
    }

    #[test]
    fn gaps_are_complement_runs() {
        let r = row(&[(2, 3), (8, 2)]);
        let gaps: Vec<Run> = gaps(&r).collect();
        assert_eq!(gaps, crate::ops::not(&r).runs().to_vec());
    }

    #[test]
    fn boundaries_match_bit_flips() {
        let r = row(&[(0, 2), (5, 3), (19, 1)]);
        let bounds: Vec<Pixel> = boundaries(&r).collect();
        // Flips at 0→already on at 0 (counts, since row[-1]=background),
        // off at 2, on at 5, off at 8, on at 19 (no trailing boundary at 20).
        assert_eq!(bounds, vec![0, 2, 5, 8, 19]);
    }

    #[test]
    fn segment_len() {
        let s = Segment {
            start: 3,
            end: 3,
            value: true,
        };
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
