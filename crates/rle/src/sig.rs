//! Rolling 64-bit row signatures.
//!
//! The incremental-diff layer (ROADMAP item 3) needs a cheap way to decide
//! "these two rows are identical" without running a kernel: consecutive
//! frames in the repo's target workloads (PCB inspection, motion detection)
//! leave the overwhelming majority of rows untouched, and the systolic XOR
//! would still pay Θ(k1+k2) per row to discover that. A 64-bit signature per
//! row turns that into one integer compare.
//!
//! Two properties drive the design:
//!
//! * **Canonical-view hashing.** Rows compare equal by content, not by
//!   encoding: `[(3,4),(7,2)]` and `[(3,6)]` are the same bitstring (the
//!   paper permits adjacent runs), so they must hash equal. The fold
//!   therefore merges adjacent runs *on the fly* while hashing — no
//!   allocation, no mutation of the row — so a non-canonical encoding
//!   produces exactly the canonical encoding's signature.
//! * **Word-granularity mixing.** Byte-at-a-time FNV over a dense row's run
//!   list would cost as much as the packed XOR kernel it is meant to
//!   short-circuit. Instead each canonical run is packed into one `u64`
//!   (`start << 32 | len`) and folded with an xxhash/wyhash-style
//!   multiply–rotate–multiply step: two multiplies per run, independent of
//!   run length.
//!
//! Signatures are **never 0**: the finalizer remaps an (astronomically
//! unlikely) zero digest to a fixed non-zero constant, so 0 can serve as the
//! "not yet computed" sentinel in [`crate::RleRow`]'s lazy cache.
//!
//! Equal signatures do not *prove* equal rows — collisions exist at the
//! 2⁻⁶⁴ level. The pipeline's signature prefilter treats a match as "equal"
//! by default and offers a paranoid mode that cross-checks a sample of
//! skips against the real kernel; see `DiffPipelineConfig::verify_signatures`
//! in the core crate and the density-sweep guard in the root test suite.

use crate::image::RleImage;
use crate::run::{Pixel, Run};

/// Seed the fold starts from (FNV-1a's 64-bit offset basis — any fixed
/// odd constant works; this one is recognizable).
const SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Multiplier applied to each incoming word before it is xor-folded
/// (rapidhash/wyhash family constant).
const MUL_IN: u64 = 0xa24b_aed4_963e_e407;

/// Multiplier applied after the rotate (rapidhash/wyhash family constant).
const MUL_OUT: u64 = 0x9fb2_1c65_1e98_df25;

/// Replacement digest for the zero case, so signatures are never 0.
const NONZERO: u64 = SEED;

/// One fold step: absorb `word` into the accumulator.
#[inline]
const fn mix(acc: u64, word: u64) -> u64 {
    (acc ^ word.wrapping_mul(MUL_IN))
        .rotate_left(31)
        .wrapping_mul(MUL_OUT)
}

/// Murmur3-style avalanche so low-entropy tails still flip high bits, then
/// the never-zero fixup.
#[inline]
const fn finish(acc: u64) -> u64 {
    let mut h = acc;
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    if h == 0 {
        NONZERO
    } else {
        h
    }
}

/// Signature of a run list interpreted as a row of width `width`.
///
/// `runs` must satisfy the [`crate::RleRow`] invariants (sorted,
/// non-overlapping; adjacency allowed). Adjacent runs are merged on the fly
/// while hashing, so any valid encoding of the same bitstring — canonical
/// or not — produces the same signature. The width participates in the
/// digest: the same runs at a different width hash differently, matching
/// `RleRow`'s equality.
#[must_use]
pub fn signature_of_runs(width: Pixel, runs: &[Run]) -> u64 {
    let mut acc = mix(SEED, u64::from(width));
    let mut iter = runs.iter();
    if let Some(first) = iter.next() {
        // Track the current maximal run as (start, end_exclusive) and only
        // fold it once no further run extends it.
        let mut start = first.start();
        let mut end = first.end_exclusive();
        for run in iter {
            if run.start() == end {
                // Adjacent: extend the pending canonical run. (Overlap is
                // ruled out by the row invariant.)
                end = run.end_exclusive();
            } else {
                acc = mix(acc, pack(start, end - start));
                start = run.start();
                end = run.end_exclusive();
            }
        }
        acc = mix(acc, pack(start, end - start));
    }
    finish(acc)
}

/// Packs one canonical run into the 64-bit word the fold absorbs.
#[inline]
const fn pack(start: Pixel, len: Pixel) -> u64 {
    ((start as u64) << 32) | len as u64
}

/// Whole-image signature: folds the dimensions and every row's (cached)
/// signature. Two images compare equal iff they have equal dimensions and
/// content, and equal images always produce equal image signatures.
#[must_use]
pub fn image_signature(image: &RleImage) -> u64 {
    let mut acc = mix(SEED, u64::from(image.width()));
    acc = mix(acc, image.height() as u64);
    for row in image.rows() {
        acc = mix(acc, row.signature());
    }
    finish(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RleRow;

    fn row(pairs: &[(Pixel, Pixel)]) -> RleRow {
        RleRow::from_pairs(64, pairs).unwrap()
    }

    #[test]
    fn canonical_and_non_canonical_encodings_hash_equal() {
        // (3,4)+(7,2) is the bitstring 3..8 — same as the single run (3,6).
        let split = row(&[(3, 4), (7, 2)]);
        let merged = row(&[(3, 6)]);
        assert!(!split.is_canonical());
        assert_eq!(split.signature(), merged.signature());

        // A chain of three adjacent fragments still folds to one run.
        let shredded = row(&[(3, 1), (4, 2), (6, 3)]);
        assert_eq!(shredded.signature(), row(&[(3, 6)]).signature());
    }

    #[test]
    fn gap_versus_adjacency_distinguished() {
        // (3,4)+(8,2) has a one-pixel gap — different content, different sig.
        assert_ne!(
            row(&[(3, 4), (7, 2)]).signature(),
            row(&[(3, 4), (8, 2)]).signature()
        );
    }

    #[test]
    fn width_participates() {
        let a = RleRow::from_pairs(64, &[(3, 4)]).unwrap();
        let b = RleRow::from_pairs(128, &[(3, 4)]).unwrap();
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn empty_rows_hash_by_width_only() {
        assert_eq!(RleRow::new(64).signature(), RleRow::new(64).signature());
        assert_ne!(RleRow::new(64).signature(), RleRow::new(65).signature());
    }

    #[test]
    fn signatures_are_never_zero() {
        // Can't force the 2^-64 zero digest, but every signature we can
        // produce must be nonzero (0 is the cache sentinel).
        for w in [0u32, 1, 64, 4096] {
            assert_ne!(RleRow::new(w).signature(), 0);
        }
        for pairs in [&[(0u32, 64u32)][..], &[(1, 1)], &[(0, 1), (63, 1)]] {
            assert_ne!(RleRow::from_pairs(64, pairs).unwrap().signature(), 0);
        }
    }

    #[test]
    fn nearby_rows_get_distinct_signatures() {
        // Adversarially similar rows: single-pixel shifts, length swaps,
        // and transpositions must all produce distinct signatures (this is
        // the collision drill's static half; the pipeline-level drill lives
        // in the root test suite).
        let rows = [
            row(&[(3, 4), (10, 2)]),
            row(&[(4, 4), (10, 2)]), // shifted start
            row(&[(3, 5), (10, 2)]), // longer first run
            row(&[(3, 4), (10, 3)]), // longer second run
            row(&[(3, 2), (10, 4)]), // lengths swapped
            row(&[(2, 4), (11, 2)]), // both moved
            row(&[(3, 4), (9, 2)]),
            row(&[(3, 4)]),
            row(&[(10, 2)]),
            RleRow::new(64),
        ];
        for (i, a) in rows.iter().enumerate() {
            for (j, b) in rows.iter().enumerate() {
                if i != j {
                    assert_ne!(a.signature(), b.signature(), "rows {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn image_signature_tracks_content_and_dims() {
        let a = RleImage::from_ascii(".#.\n##.\n...");
        let b = RleImage::from_ascii(".#.\n##.\n...");
        let c = RleImage::from_ascii(".#.\n##.\n..#");
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
        assert_ne!(
            RleImage::new(4, 2).signature(),
            RleImage::new(2, 4).signature()
        );
        assert_ne!(a.signature(), 0);
    }
}
