//! Similarity and cost metrics between RLE rows and images.
//!
//! The paper's performance story is driven by three quantities, all plotted
//! in Figure 5:
//!
//! * the **difference in the number of runs** `|k1 - k2|` between the two
//!   images (the dominating factor for the systolic algorithm on similar
//!   images),
//! * the **number of runs in the XOR** `k3` (the conjectured upper bound on
//!   systolic iterations), and
//! * the **percentage of pixels that differ** (the x-axis of Figure 5).

use crate::ops;
use crate::row::RleRow;

/// A bundle of the similarity quantities the paper measures for a row pair.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RowSimilarity {
    /// Runs in the first row (`k1`).
    pub runs_a: usize,
    /// Runs in the second row (`k2`).
    pub runs_b: usize,
    /// `|k1 - k2|`.
    pub run_count_difference: usize,
    /// Runs in the canonicalized XOR of the rows (`k3`, the paper's
    /// similarity measure: "If we let the similarity of two images be
    /// measured by the number of runs in the final result").
    pub runs_in_xor: usize,
    /// Runs in the *raw* (uncoalesced) XOR, as the systolic array and the
    /// sequential merge actually emit it.
    pub runs_in_raw_xor: usize,
    /// Number of differing pixels (Hamming distance).
    pub differing_pixels: u64,
    /// Differing pixels as a fraction of the row width, in `[0, 1]`.
    pub differing_fraction: f64,
}

/// Computes all similarity quantities for a pair of rows.
///
/// # Panics
///
/// Panics if the rows have different widths.
#[must_use]
pub fn row_similarity(a: &RleRow, b: &RleRow) -> RowSimilarity {
    let (raw, _) = ops::xor_raw_with_stats(a, b);
    let differing_pixels = raw.ones();
    let runs_in_raw_xor = raw.run_count();
    let canonical = raw.canonicalized();
    RowSimilarity {
        runs_a: a.run_count(),
        runs_b: b.run_count(),
        run_count_difference: a.run_count().abs_diff(b.run_count()),
        runs_in_xor: canonical.run_count(),
        runs_in_raw_xor,
        differing_pixels,
        differing_fraction: if a.width() == 0 {
            0.0
        } else {
            differing_pixels as f64 / f64::from(a.width())
        },
    }
}

/// Hamming distance between two rows (number of differing pixels), computed
/// in compressed form.
#[must_use]
pub fn hamming(a: &RleRow, b: &RleRow) -> u64 {
    ops::xor_raw_with_stats(a, b).0.ones()
}

/// Jaccard similarity `|a ∧ b| / |a ∨ b|` of the foreground sets; `1.0` for
/// two empty rows.
#[must_use]
pub fn jaccard(a: &RleRow, b: &RleRow) -> f64 {
    let union = ops::or(a, b).ones();
    if union == 0 {
        return 1.0;
    }
    let inter = ops::and(a, b).ones();
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Pixel;

    fn row(pairs: &[(Pixel, Pixel)]) -> RleRow {
        RleRow::from_pairs(40, pairs).unwrap()
    }

    #[test]
    fn identical_rows() {
        let a = row(&[(3, 4), (10, 2)]);
        let s = row_similarity(&a, &a.clone());
        assert_eq!(s.run_count_difference, 0);
        assert_eq!(s.runs_in_xor, 0);
        assert_eq!(s.differing_pixels, 0);
        assert_eq!(s.differing_fraction, 0.0);
        assert_eq!(hamming(&a, &a.clone()), 0);
        assert_eq!(jaccard(&a, &a.clone()), 1.0);
    }

    #[test]
    fn figure1_quantities() {
        let a = row(&[(10, 3), (16, 2), (23, 2), (27, 3)]);
        let b = row(&[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)]);
        let s = row_similarity(&a, &b);
        assert_eq!(s.runs_a, 4);
        assert_eq!(s.runs_b, 5);
        assert_eq!(s.run_count_difference, 1);
        assert_eq!(s.runs_in_xor, 5);
        assert_eq!(s.differing_pixels, 4 + 2 + 1 + 2 + 1);
        assert!((s.differing_fraction - 10.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_rows() {
        let a = row(&[(0, 5)]);
        let b = row(&[(10, 5)]);
        assert_eq!(hamming(&a, &b), 10);
        assert_eq!(jaccard(&a, &b), 0.0);
        let s = row_similarity(&a, &b);
        assert_eq!(s.runs_in_xor, 2);
    }

    #[test]
    fn raw_vs_canonical_xor_counts_can_differ() {
        let a = row(&[(0, 5)]);
        let b = row(&[(5, 5)]); // adjacent
        let s = row_similarity(&a, &b);
        assert_eq!(s.runs_in_raw_xor, 2);
        assert_eq!(s.runs_in_xor, 1);
    }

    #[test]
    fn jaccard_partial_overlap() {
        let a = row(&[(0, 10)]);
        let b = row(&[(5, 10)]);
        // intersection 5 px, union 15 px
        assert!((jaccard(&a, &b) - 5.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rows_jaccard_is_one() {
        assert_eq!(jaccard(&RleRow::new(10), &RleRow::new(10)), 1.0);
    }

    #[test]
    fn zero_width_similarity() {
        let s = row_similarity(&RleRow::new(0), &RleRow::new(0));
        assert_eq!(s.differing_fraction, 0.0);
    }
}
