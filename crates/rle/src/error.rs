//! Error types for RLE construction and validation.

use crate::run::Pixel;
use std::fmt;

/// Errors raised when constructing or validating RLE data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RleError {
    /// A run was given a length of zero.
    ZeroLengthRun {
        /// Start position of the offending run.
        start: Pixel,
    },
    /// `start + len` exceeds the pixel coordinate space.
    PixelOverflow {
        /// Start position of the offending run.
        start: Pixel,
        /// Length of the offending run.
        len: Pixel,
    },
    /// Runs are not in strictly increasing start order, or they overlap.
    ///
    /// The paper requires "a strictly increasing sequence of first elements"
    /// and that "none of the intervals ... may overlap"; adjacency is
    /// permitted.
    OutOfOrder {
        /// Index (within the run list) of the run that violates ordering.
        index: usize,
    },
    /// A run extends past the row width `b`.
    RunExceedsWidth {
        /// Index of the offending run.
        index: usize,
        /// Row width in pixels.
        width: Pixel,
    },
    /// Two rows/images that must have equal dimensions do not.
    DimensionMismatch {
        /// Dimension of the left operand (row width or `(w, h)` flattened).
        left: u64,
        /// Dimension of the right operand.
        right: u64,
    },
    /// An image row has a width different from the image width.
    RowWidthMismatch {
        /// Index of the offending row.
        row: usize,
        /// Expected width.
        expected: Pixel,
        /// Actual width.
        actual: Pixel,
    },
}

impl fmt::Display for RleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RleError::ZeroLengthRun { start } => {
                write!(f, "run starting at {start} has zero length")
            }
            RleError::PixelOverflow { start, len } => {
                write!(
                    f,
                    "run ({start}, {len}) overflows the pixel coordinate space"
                )
            }
            RleError::OutOfOrder { index } => {
                write!(
                    f,
                    "run at index {index} is out of order or overlaps its predecessor"
                )
            }
            RleError::RunExceedsWidth { index, width } => {
                write!(f, "run at index {index} extends past the row width {width}")
            }
            RleError::DimensionMismatch { left, right } => {
                write!(f, "operands have mismatched dimensions ({left} vs {right})")
            }
            RleError::RowWidthMismatch {
                row,
                expected,
                actual,
            } => {
                write!(f, "row {row} has width {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for RleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(RleError, &str)> = vec![
            (RleError::ZeroLengthRun { start: 5 }, "zero length"),
            (RleError::PixelOverflow { start: 1, len: 2 }, "overflows"),
            (RleError::OutOfOrder { index: 3 }, "out of order"),
            (
                RleError::RunExceedsWidth {
                    index: 0,
                    width: 128,
                },
                "past the row width",
            ),
            (
                RleError::DimensionMismatch { left: 1, right: 2 },
                "mismatched dimensions",
            ),
            (
                RleError::RowWidthMismatch {
                    row: 2,
                    expected: 10,
                    actual: 9,
                },
                "row 2",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&RleError::OutOfOrder { index: 0 });
    }
}
