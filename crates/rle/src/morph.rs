//! 1-D morphological operations directly on RLE rows.
//!
//! The paper's introduction lists morphological operations among the
//! binary-image kernels that systolic hardware targets; an inspection
//! pipeline uses them to clean the difference mask (closing pinholes,
//! removing single-pixel noise) before defect classification. On RLE data
//! they are O(k): dilation widens every run by the structuring-element
//! radius and coalesces, erosion shrinks and drops runs that vanish.
//!
//! The structuring element is the centred segment of `2·radius + 1` pixels.

use crate::canonical::coalesce_in_place;
use crate::row::RleRow;
use crate::run::{Pixel, Run};

/// Dilation: every foreground pixel grows `radius` pixels in each
/// direction, clipped to the row. Output is canonical.
///
/// ```
/// use rle::{morph, RleRow, Run};
///
/// let noisy_mask = RleRow::from_pairs(32, &[(5, 2), (9, 2)]).unwrap();
/// // Radius 1 closes the 2-px gap between the runs.
/// assert_eq!(morph::dilate(&noisy_mask, 1).runs(), &[Run::new(4, 8)]);
/// ```
#[must_use]
pub fn dilate(row: &RleRow, radius: Pixel) -> RleRow {
    let width = row.width();
    if width == 0 || radius == 0 {
        return row.canonicalized();
    }
    let mut runs: Vec<Run> = row
        .runs()
        .iter()
        .map(|r| {
            let start = r.start().saturating_sub(radius);
            let end = r.end().saturating_add(radius).min(width - 1);
            Run::from_bounds(start, end)
        })
        .collect();
    coalesce_in_place(&mut runs);
    RleRow::from_runs(width, runs).expect("dilation preserves order")
}

/// Erosion: a pixel survives only if the whole structuring element around
/// it is foreground. Runs shorter than `2·radius + 1` disappear. Output is
/// canonical.
///
/// Boundary convention: pixels outside the row are background, so runs
/// touching the row edges erode there too (the standard definition).
#[must_use]
pub fn erode(row: &RleRow, radius: Pixel) -> RleRow {
    let width = row.width();
    if radius == 0 {
        return row.canonicalized();
    }
    // Erosion must see merged foreground segments, not raw (possibly
    // adjacent) runs.
    let canonical = row.canonicalized();
    let mut out = RleRow::new(width);
    for r in canonical.runs() {
        let start = u64::from(r.start()) + u64::from(radius);
        let end = u64::from(r.end()).wrapping_sub(u64::from(radius));
        if u64::from(r.len()) > 2 * u64::from(radius) {
            out.push_run(Run::from_bounds(start as Pixel, end as Pixel))
                .expect("erosion preserves order");
        }
    }
    out
}

/// Opening: erosion followed by dilation. Removes foreground details
/// narrower than the element while preserving larger runs' extent.
#[must_use]
pub fn open(row: &RleRow, radius: Pixel) -> RleRow {
    dilate(&erode(row, radius), radius)
}

/// Closing: dilation followed by erosion. Fills background gaps narrower
/// than the element.
#[must_use]
pub fn close(row: &RleRow, radius: Pixel) -> RleRow {
    erode(&dilate(row, radius), radius)
}

/// Morphological gradient: dilation minus erosion — the run boundaries.
#[must_use]
pub fn gradient(row: &RleRow, radius: Pixel) -> RleRow {
    crate::ops::sub(&dilate(row, radius), &erode(row, radius))
}

/// Removes foreground components (maximal merged segments) shorter than
/// `min_len` pixels — the classic despeckle filter for difference masks.
#[must_use]
pub fn remove_small(row: &RleRow, min_len: Pixel) -> RleRow {
    let canonical = row.canonicalized();
    let mut out = RleRow::new(row.width());
    for r in canonical.runs() {
        if r.len() >= min_len {
            out.push_run(*r).expect("filter preserves order");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(pairs: &[(Pixel, Pixel)]) -> RleRow {
        RleRow::from_pairs(40, pairs).unwrap()
    }

    /// Per-pixel reference implementation of dilation/erosion.
    fn reference(row: &RleRow, radius: Pixel, dilated: bool) -> RleRow {
        let bits = row.to_bits();
        let w = bits.len() as i64;
        let r = i64::from(radius);
        let out: Vec<bool> = (0..w)
            .map(|p| {
                let window = (p - r..=p + r).map(|q| {
                    if q < 0 || q >= w {
                        false
                    } else {
                        bits[q as usize]
                    }
                });
                if dilated {
                    window.into_iter().any(|b| b)
                } else {
                    window.into_iter().all(|b| b)
                }
            })
            .collect();
        RleRow::from_bits(&out)
    }

    #[test]
    fn dilate_matches_reference() {
        let cases = [
            row(&[]),
            row(&[(0, 3)]),
            row(&[(5, 1), (10, 4), (38, 2)]),
            row(&[(0, 40)]),
        ];
        for r in cases {
            for radius in [0u32, 1, 2, 5] {
                assert_eq!(
                    dilate(&r, radius),
                    reference(&r, radius, true),
                    "{r:?} r={radius}"
                );
            }
        }
    }

    #[test]
    fn erode_matches_reference() {
        let cases = [
            row(&[]),
            row(&[(0, 3)]),
            row(&[(5, 1), (10, 4), (20, 10), (38, 2)]),
            row(&[(0, 40)]),
            row(&[(0, 2), (2, 6)]), // adjacent runs must erode as one segment
        ];
        for r in cases {
            for radius in [0u32, 1, 2, 5] {
                assert_eq!(
                    erode(&r, radius),
                    reference(&r, radius, false),
                    "{r:?} r={radius}"
                );
            }
        }
    }

    #[test]
    fn dilation_merges_nearby_runs() {
        let r = row(&[(5, 2), (9, 2)]); // gap of 2
        assert_eq!(dilate(&r, 1).runs(), &[Run::new(4, 8)]);
    }

    #[test]
    fn erosion_kills_thin_runs() {
        let r = row(&[(5, 2), (10, 5)]);
        let e = erode(&r, 1);
        assert_eq!(e.runs(), &[Run::new(11, 3)]);
        assert!(erode(&r, 3).is_empty());
    }

    #[test]
    fn opening_removes_specks_keeps_bodies() {
        let r = row(&[(2, 1), (10, 9)]);
        let o = open(&r, 1);
        assert_eq!(o.runs(), &[Run::new(10, 9)]);
    }

    #[test]
    fn closing_fills_small_gaps() {
        let r = row(&[(5, 4), (10, 4)]); // 1-px gap at 9
        let c = close(&r, 1);
        assert_eq!(c.runs(), &[Run::new(5, 9)]);
        // ... but wide gaps survive.
        let r2 = row(&[(5, 4), (15, 4)]);
        assert_eq!(close(&r2, 1).run_count(), 2);
    }

    #[test]
    fn gradient_marks_boundaries() {
        let r = row(&[(10, 10)]);
        let g = gradient(&r, 1);
        // Interior erodes to 11..=18; dilation covers 9..=20.
        assert_eq!(g.runs(), &[Run::new(9, 2), Run::new(19, 2)]);
    }

    #[test]
    fn remove_small_despeckles() {
        let r = row(&[(0, 1), (5, 2), (10, 6), (20, 1), (21, 2)]); // last two merge to len 3
        let f = remove_small(&r, 3);
        assert_eq!(f.runs(), &[Run::new(10, 6), Run::new(20, 3)]);
    }

    #[test]
    fn duality_dilate_erode_via_complement() {
        // dilate(x) == ¬erode(¬x) — morphological duality (the row-edge
        // convention matches because complement flips it consistently).
        let r = row(&[(3, 4), (12, 6), (30, 5)]);
        for radius in [1u32, 2, 3] {
            let lhs = dilate(&r, radius);
            let rhs = crate::ops::not(&erode(&crate::ops::not(&r), radius));
            // Duality holds away from the borders; compare interiors.
            let interior = |x: &RleRow| crate::ops::and(x, &row(&[(radius, 40 - 2 * radius)]));
            assert_eq!(interior(&lhs), interior(&rhs), "radius {radius}");
        }
    }

    #[test]
    fn open_close_idempotent() {
        let r = row(&[(2, 1), (6, 5), (14, 2), (20, 10)]);
        let o = open(&r, 1);
        assert_eq!(open(&o, 1), o);
        let c = close(&r, 1);
        assert_eq!(close(&c, 1), c);
    }

    #[test]
    fn zero_width_row() {
        let e = RleRow::new(0);
        assert!(dilate(&e, 3).is_empty());
        assert!(erode(&e, 3).is_empty());
    }
}
