//! A single run of consecutive foreground pixels.

use crate::error::RleError;
use std::fmt;

/// Pixel coordinate within a row. `u32` comfortably covers the row widths the
/// paper considers (128–2048 px, 10 000 px for Figure 5) and keeps
/// [`Run`] at 8 bytes so register files and cell arrays stay cache-friendly.
pub type Pixel = u32;

/// A run of `len >= 1` consecutive foreground pixels starting at `start`.
///
/// The paper stores runs as `(start, length)` 2-tuples but reasons about them
/// via their inclusive `[start, end]` interval; both views are provided.
/// A `Run` is always non-empty — transient empty intervals that arise inside
/// the systolic XOR step are represented as `Option<Run>` by callers.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Run {
    start: Pixel,
    len: Pixel,
}

/// Qualitative geometric relation between two runs `a.relation(&b)`.
///
/// These are the distinctions that drive the case analysis behind the paper's
/// Figure 4 (the nine qualitatively different cell states) and the sequential
/// merge in [`crate::ops`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RunRelation {
    /// `a` ends strictly before `b` starts, with at least one background
    /// pixel between them: `a.end + 1 < b.start`.
    DisjointBefore,
    /// `a` ends immediately before `b` starts: `a.end + 1 == b.start`.
    AdjacentBefore,
    /// `a` and `b` overlap in at least one pixel (includes containment and
    /// equality).
    Overlapping,
    /// Mirror of [`RunRelation::AdjacentBefore`].
    AdjacentAfter,
    /// Mirror of [`RunRelation::DisjointBefore`].
    DisjointAfter,
}

impl Run {
    /// Creates a run from its start position and length.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or if `start + len` overflows [`Pixel`]. Use
    /// [`Run::try_new`] for fallible construction.
    #[must_use]
    pub fn new(start: Pixel, len: Pixel) -> Self {
        Self::try_new(start, len).expect("invalid run")
    }

    /// Fallible counterpart of [`Run::new`].
    pub fn try_new(start: Pixel, len: Pixel) -> Result<Self, RleError> {
        if len == 0 {
            return Err(RleError::ZeroLengthRun { start });
        }
        if start.checked_add(len).is_none() {
            return Err(RleError::PixelOverflow { start, len });
        }
        Ok(Self { start, len })
    }

    /// Creates a run from an inclusive `[start, end]` interval.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn from_bounds(start: Pixel, end: Pixel) -> Self {
        assert!(end >= start, "empty interval [{start}, {end}]");
        Self::new(start, end - start + 1)
    }

    /// Creates a run from an inclusive interval, returning `None` when the
    /// interval is empty (`end < start`). This is the natural constructor for
    /// the systolic XOR step, whose intermediate intervals may vanish.
    #[must_use]
    pub fn from_bounds_opt(start: Pixel, end: Pixel) -> Option<Self> {
        (end >= start).then(|| Self::from_bounds(start, end))
    }

    /// First pixel of the run.
    #[must_use]
    pub fn start(&self) -> Pixel {
        self.start
    }

    /// Number of pixels in the run (always ≥ 1).
    #[must_use]
    pub fn len(&self) -> Pixel {
        self.len
    }

    /// A run is never empty; provided for API symmetry with collections.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Last pixel of the run (inclusive).
    #[must_use]
    pub fn end(&self) -> Pixel {
        self.start + self.len - 1
    }

    /// One past the last pixel of the run.
    #[must_use]
    pub fn end_exclusive(&self) -> Pixel {
        self.start + self.len
    }

    /// Whether `pixel` lies inside the run.
    #[must_use]
    pub fn contains(&self, pixel: Pixel) -> bool {
        pixel >= self.start && pixel <= self.end()
    }

    /// Whether the two runs share at least one pixel.
    #[must_use]
    pub fn overlaps(&self, other: &Run) -> bool {
        self.start <= other.end() && other.start <= self.end()
    }

    /// Whether the two runs are disjoint but with no gap between them, i.e.
    /// their union would be a single run.
    #[must_use]
    pub fn is_adjacent_to(&self, other: &Run) -> bool {
        self.end_exclusive() == other.start || other.end_exclusive() == self.start
    }

    /// Qualitative relation of `self` to `other`; see [`RunRelation`].
    #[must_use]
    pub fn relation(&self, other: &Run) -> RunRelation {
        if self.overlaps(other) {
            RunRelation::Overlapping
        } else if self.end_exclusive() == other.start {
            RunRelation::AdjacentBefore
        } else if other.end_exclusive() == self.start {
            RunRelation::AdjacentAfter
        } else if self.end() < other.start {
            RunRelation::DisjointBefore
        } else {
            RunRelation::DisjointAfter
        }
    }

    /// Intersection of the two runs, if any.
    #[must_use]
    pub fn intersection(&self, other: &Run) -> Option<Run> {
        let start = self.start.max(other.start);
        let end = self.end().min(other.end());
        Run::from_bounds_opt(start, end)
    }

    /// Smallest run covering both runs (their convex hull), regardless of
    /// whether they touch.
    #[must_use]
    pub fn hull(&self, other: &Run) -> Run {
        Run::from_bounds(self.start.min(other.start), self.end().max(other.end()))
    }

    /// Union as a single run, when the two runs overlap or are adjacent.
    #[must_use]
    pub fn union(&self, other: &Run) -> Option<Run> {
        (self.overlaps(other) || self.is_adjacent_to(other)).then(|| self.hull(other))
    }

    /// The paper's register ordering: by start, ties broken by end. Step 1 of
    /// the systolic cell swaps registers exactly when `RegSmall > RegBig`
    /// under this order, so we expose it as the natural `Ord`.
    #[must_use]
    pub fn key(&self) -> (Pixel, Pixel) {
        (self.start, self.end())
    }

    /// Translates the run right by `delta` pixels.
    #[must_use]
    pub fn shifted(&self, delta: Pixel) -> Run {
        Run::new(self.start + delta, self.len)
    }
}

impl PartialOrd for Run {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Run {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl fmt::Debug for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Matches the paper's `(start, length)` tuple notation.
        write!(f, "({}, {})", self.start, self.len)
    }
}

impl fmt::Display for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.start, self.len)
    }
}

impl From<(Pixel, Pixel)> for Run {
    /// Converts from the paper's `(start, length)` tuple form.
    fn from((start, len): (Pixel, Pixel)) -> Self {
        Run::new(start, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let r = Run::new(10, 5);
        assert_eq!(r.start(), 10);
        assert_eq!(r.len(), 5);
        assert_eq!(r.end(), 14);
        assert_eq!(r.end_exclusive(), 15);
        assert!(!r.is_empty());
    }

    #[test]
    fn paper_notation_example() {
        // From Section 3: "if cell i contains two runs where the first one
        // starts at location 10 and has length 5 ... start = 10, end = 14".
        let big = Run::new(10, 5);
        assert_eq!((big.start(), big.end()), (10, 14));
        let small = Run::new(12, 8);
        assert_eq!((small.start(), small.end()), (12, 19));
    }

    #[test]
    fn try_new_rejects_zero_length() {
        assert!(matches!(
            Run::try_new(3, 0),
            Err(RleError::ZeroLengthRun { start: 3 })
        ));
    }

    #[test]
    fn try_new_rejects_overflow() {
        assert!(matches!(
            Run::try_new(Pixel::MAX, 1),
            Err(RleError::PixelOverflow { .. })
        ));
        // Largest representable run is fine.
        assert!(Run::try_new(Pixel::MAX - 1, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid run")]
    fn new_panics_on_zero_length() {
        let _ = Run::new(0, 0);
    }

    #[test]
    fn from_bounds_round_trips() {
        let r = Run::from_bounds(7, 7);
        assert_eq!(r, Run::new(7, 1));
        let r = Run::from_bounds(3, 9);
        assert_eq!(r, Run::new(3, 7));
    }

    #[test]
    fn from_bounds_opt_empty_interval() {
        assert_eq!(Run::from_bounds_opt(5, 4), None);
        assert_eq!(Run::from_bounds_opt(5, 5), Some(Run::new(5, 1)));
    }

    #[test]
    fn contains_checks_inclusive_bounds() {
        let r = Run::new(4, 3); // pixels 4,5,6
        assert!(!r.contains(3));
        assert!(r.contains(4));
        assert!(r.contains(6));
        assert!(!r.contains(7));
    }

    #[test]
    fn overlap_and_adjacency() {
        let a = Run::new(0, 4); // 0..=3
        let b = Run::new(4, 2); // 4..=5
        let c = Run::new(6, 1); // 6..=6
        assert!(!a.overlaps(&b));
        assert!(a.is_adjacent_to(&b));
        assert!(b.is_adjacent_to(&a));
        assert!(!a.is_adjacent_to(&c));
        assert!(a.overlaps(&Run::new(3, 10)));
        assert!(Run::new(3, 10).overlaps(&a));
    }

    #[test]
    fn relations_cover_all_cases() {
        let a = Run::new(10, 3); // 10..=12
        assert_eq!(a.relation(&Run::new(20, 1)), RunRelation::DisjointBefore);
        assert_eq!(a.relation(&Run::new(13, 1)), RunRelation::AdjacentBefore);
        assert_eq!(a.relation(&Run::new(12, 5)), RunRelation::Overlapping);
        assert_eq!(a.relation(&Run::new(10, 3)), RunRelation::Overlapping);
        assert_eq!(a.relation(&Run::new(5, 5)), RunRelation::AdjacentAfter);
        assert_eq!(a.relation(&Run::new(2, 5)), RunRelation::DisjointAfter);
    }

    #[test]
    fn intersection_hull_union() {
        let a = Run::new(5, 10); // 5..=14
        let b = Run::new(12, 6); // 12..=17
        assert_eq!(a.intersection(&b), Some(Run::from_bounds(12, 14)));
        assert_eq!(a.hull(&b), Run::from_bounds(5, 17));
        assert_eq!(a.union(&b), Some(Run::from_bounds(5, 17)));

        let c = Run::new(30, 2);
        assert_eq!(a.intersection(&c), None);
        assert_eq!(a.union(&c), None);
        assert_eq!(a.hull(&c), Run::from_bounds(5, 31));

        let adj = Run::new(15, 1);
        assert_eq!(a.union(&adj), Some(Run::from_bounds(5, 15)));
    }

    #[test]
    fn ordering_matches_paper_step1() {
        // Step 1 swaps when start is larger, or starts tie and end is larger.
        assert!(Run::new(3, 5) < Run::new(4, 1));
        assert!(Run::new(3, 5) < Run::new(3, 6));
        assert_eq!(
            Run::new(3, 5).cmp(&Run::new(3, 5)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn debug_uses_paper_tuple_notation() {
        assert_eq!(format!("{:?}", Run::new(10, 3)), "(10, 3)");
        assert_eq!(format!("{}", Run::new(10, 3)), "(10, 3)");
    }

    #[test]
    fn shifted_translates() {
        assert_eq!(Run::new(4, 2).shifted(6), Run::new(10, 2));
    }

    #[test]
    fn run_is_eight_bytes() {
        // Cells hold two registers of one run each; keeping Run small keeps
        // the simulated register file dense.
        assert_eq!(std::mem::size_of::<Run>(), 8);
        assert_eq!(std::mem::size_of::<Option<Run>>(), 12);
    }
}
