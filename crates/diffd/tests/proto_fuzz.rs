//! Wire-protocol fuzzing, modeled on the repo's `serialize_fuzz` suite:
//! every truncation point, bit flips, crafted oversize claims and raw
//! garbage — first against the pure decoders, then against a live server
//! socket. The bar is identical everywhere: a typed [`ProtoError`] (or a
//! typed error frame plus a clean close), never a panic, and never an
//! allocation proportional to an attacker's *claimed* size.

use std::io::{Cursor, Write};
use std::net::TcpStream;
use std::time::Duration;

use diffd::proto::{
    self, encode_frame, DiffRequest, ErrorCode, FrameKind, FrameReadError, ProtoError,
    DEFAULT_MAX_FRAME_LEN, FRAME_HEADER_LEN,
};
use diffd::{DiffClient, DiffServer, DiffServerConfig};
use rle::RleImage;
use workload::{GenParams, RowGenerator};

/// Deterministic xorshift64* — same self-contained generator idiom the
/// serialize fuzz suite uses; no RNG dependency in the loop.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

fn sample_image(seed: u64) -> RleImage {
    RowGenerator::new(GenParams::for_density(48, 0.3), seed).next_image(6)
}

fn sample_request() -> DiffRequest {
    DiffRequest {
        request_id: 42,
        deadline_ms: 250,
        a: sample_image(1),
        b: sample_image(2),
    }
}

fn fuzz_server_config() -> DiffServerConfig {
    DiffServerConfig {
        threads: 2,
        max_frame_len: 1 << 20,
        // Short slowloris windows: half-delivered garbage should be
        // evicted in milliseconds, not wall-clock test time.
        idle_timeout: Duration::from_millis(200),
        frame_timeout: Duration::from_millis(200),
        poll_interval: Duration::from_millis(5),
        shutdown_grace: Duration::from_secs(5),
        ..DiffServerConfig::default()
    }
}

// ---------------------------------------------------------------- decoders

#[test]
fn header_truncated_at_every_cut_is_typed() {
    let frame = encode_frame(FrameKind::Ping, &[]);
    for cut in 0..FRAME_HEADER_LEN {
        let mut cur = Cursor::new(frame[..cut].to_vec());
        match proto::read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN) {
            // EOF before any byte is the one *clean* case: a peer hanging
            // up between frames.
            Ok(None) => assert_eq!(cut, 0),
            Err(FrameReadError::Proto(ProtoError::Truncated { needed, have })) => {
                assert_eq!(needed, FRAME_HEADER_LEN);
                assert_eq!(have, cut);
            }
            other => panic!("cut {cut}: wanted Truncated, got {other:?}"),
        }
    }
}

#[test]
fn payload_truncated_at_every_cut_is_typed() {
    let payload = proto::encode_diff_request(&sample_request());
    // Whole-frame truncation: header promises `payload.len()` bytes.
    let frame = encode_frame(FrameKind::Diff, &payload);
    for cut in FRAME_HEADER_LEN..frame.len() {
        let mut cur = Cursor::new(frame[..cut].to_vec());
        match proto::read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN) {
            Err(FrameReadError::Proto(ProtoError::Truncated { .. })) => {}
            other => panic!("frame cut {cut}: wanted Truncated, got {other:?}"),
        }
    }
    // Payload-structure truncation: every cut of the request body itself
    // must decode to a typed error, never a panic and never an `Ok`.
    for cut in 0..payload.len() {
        assert!(
            proto::decode_diff_request(&payload[..cut]).is_err(),
            "request cut {cut} decoded despite missing bytes"
        );
    }
    assert!(proto::decode_diff_request(&payload).is_ok());
}

#[test]
fn every_single_bit_flip_decodes_or_rejects_without_panicking() {
    let req = sample_request();
    let payload = proto::encode_diff_request(&req);
    let frame = encode_frame(FrameKind::Diff, &payload);
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut mutant = frame.clone();
            mutant[byte] ^= 1 << bit;
            // The reader enforces header caps first, then payload shape;
            // any outcome is fine except a panic.
            let mut cur = Cursor::new(mutant);
            if let Ok(Some((FrameKind::Diff, p))) =
                proto::read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN)
            {
                let _ = proto::decode_diff_request(&p);
            }
        }
    }
}

#[test]
fn oversize_claims_are_rejected_before_any_allocation() {
    for declared in [DEFAULT_MAX_FRAME_LEN + 1, u32::MAX / 2, u32::MAX] {
        let mut header = Vec::new();
        header.extend_from_slice(&proto::FRAME_MAGIC);
        header.push(FrameKind::Diff as u8);
        header.extend_from_slice(&declared.to_le_bytes());
        // Only the 9 header bytes exist: if the reader tried to allocate or
        // read `declared` bytes this would hang or OOM instead of erroring.
        let mut cur = Cursor::new(header);
        match proto::read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN) {
            Err(FrameReadError::Proto(ProtoError::FrameTooLarge { declared: d, max })) => {
                assert_eq!(d, declared);
                assert_eq!(max, DEFAULT_MAX_FRAME_LEN);
            }
            other => panic!("declared {declared}: wanted FrameTooLarge, got {other:?}"),
        }
    }
}

#[test]
fn random_garbage_streams_never_panic_the_decoder() {
    let mut rng = XorShift(0xF00D_F00D_F00D_F00D);
    for round in 0..500 {
        let len = (rng.next() % 256) as usize;
        let mut blob = vec![0u8; len];
        rng.fill(&mut blob);
        let mut cur = Cursor::new(blob);
        // Drain the cursor through the frame reader; every iteration must
        // terminate with Ok or a typed error.
        while let Ok(Some(_)) = proto::read_frame(&mut cur, 4096) {}
        // The payload decoders get the same raw treatment.
        let mut body = vec![0u8; (rng.next() % 128) as usize];
        rng.fill(&mut body);
        let _ = proto::decode_diff_request(&body);
        let _ = proto::decode_diff_reply(&body);
        let _ = proto::decode_error_reply(&body);
        let _ = round;
    }
}

// ------------------------------------------------------------- live socket

/// Sends raw bytes, returns the server's typed error frame (if any), and
/// asserts the connection then closes cleanly.
fn poke_server(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<ErrorCode> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(bytes).unwrap();
    let code = match proto::read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
        Ok(Some((FrameKind::Error, payload))) => {
            Some(proto::decode_error_reply(&payload).unwrap().code)
        }
        Ok(None) => None,
        other => panic!("wanted an error frame or clean close, got {other:?}"),
    };
    if code.is_some() {
        // After the typed error the server hangs up at once.
        assert!(proto::read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .is_none());
    }
    code
}

#[test]
fn live_server_answers_malformed_frames_with_typed_errors_and_survives() {
    let cfg = fuzz_server_config();
    let max_len = cfg.max_frame_len;
    let server = DiffServer::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    // Bad magic.
    assert_eq!(
        poke_server(addr, b"NOPE\x01\x00\x00\x00\x00"),
        Some(ErrorCode::Protocol)
    );
    // Unknown kind byte (in the request range).
    let mut unknown = Vec::new();
    unknown.extend_from_slice(&proto::FRAME_MAGIC);
    unknown.push(0x7F);
    unknown.extend_from_slice(&0u32.to_le_bytes());
    assert_eq!(poke_server(addr, &unknown), Some(ErrorCode::Protocol));
    // A response kind sent as a request.
    let mut response_kind = Vec::new();
    response_kind.extend_from_slice(&proto::FRAME_MAGIC);
    response_kind.push(FrameKind::DiffOk as u8);
    response_kind.extend_from_slice(&0u32.to_le_bytes());
    assert_eq!(poke_server(addr, &response_kind), Some(ErrorCode::Protocol));
    // Oversize claim: rejected from the header alone — the connection
    // never has to deliver (and the server never allocates) the claimed
    // gigabytes.
    let mut oversize = Vec::new();
    oversize.extend_from_slice(&proto::FRAME_MAGIC);
    oversize.push(FrameKind::Diff as u8);
    oversize.extend_from_slice(&(max_len + 1).to_le_bytes());
    assert_eq!(poke_server(addr, &oversize), Some(ErrorCode::Protocol));
    // A well-framed Diff whose payload is garbage.
    let mut body = vec![0u8; 64];
    XorShift(0xBAD5EED).fill(&mut body);
    assert_eq!(
        poke_server(addr, &encode_frame(FrameKind::Diff, &body)),
        Some(ErrorCode::Protocol)
    );
    // Truncation: promise 100 payload bytes, send 10, hang up. The server
    // closes without a response (there is no one left to answer).
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(&proto::FRAME_MAGIC);
        frame.push(FrameKind::Diff as u8);
        frame.extend_from_slice(&100u32.to_le_bytes());
        frame.extend_from_slice(&[0u8; 10]);
        stream.write_all(&frame).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        assert!(proto::read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .is_none());
    }

    // Raw garbage connections in bulk.
    let mut rng = XorShift(0xDEAD_BEEF_0BAD_CAFE);
    for _ in 0..20 {
        let mut blob = vec![0u8; 1 + (rng.next() % 64) as usize];
        rng.fill(&mut blob);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let _ = stream.write_all(&blob);
        // Half-close so the server sees EOF at once instead of waiting out
        // the idle window for bytes that will never come.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        // Whatever comes back (typed error or close), it must come back.
        let _ = proto::read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN);
    }

    // After all of that the server still answers a polite client.
    let mut client = DiffClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    client.ping().unwrap();
    let m = handle.server_metrics();
    assert!(
        m.protocol_errors.get() >= 5,
        "each malformed connection is accounted ({} seen)",
        m.protocol_errors.get()
    );
    assert_eq!(
        handle.pipeline_in_flight(),
        0,
        "garbage never reaches the pipeline"
    );

    handle.shutdown();
    join.join().unwrap();
    // Every accepted connection was also closed.
    let m = handle.server_metrics();
    assert_eq!(m.connections_open.get(), 0);
    assert_eq!(m.connections_accepted.get(), m.connections_closed.get());
}
