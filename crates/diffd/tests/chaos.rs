//! Network chaos drills: connections killed mid-frame under concurrent
//! good traffic, stalled readers, worker panic storms and wedged rows
//! (`--features fault-injection`), and graceful drain under load. After
//! every storm the same acceptance bar holds: no panic, no leaked
//! in-flight tickets, the observability ledger closes, and a polite
//! client still gets a correct answer.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use diffd::proto::{self, FrameKind};
use diffd::{ClientError, DiffClient, DiffServer, DiffServerConfig};
use rle::RleImage;
use workload::{errors, ErrorModel, GenParams, RowGenerator};

fn chaos_config() -> DiffServerConfig {
    DiffServerConfig {
        threads: 2,
        idle_timeout: Duration::from_secs(5),
        frame_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(5),
        shutdown_grace: Duration::from_secs(10),
        ..DiffServerConfig::default()
    }
}

fn image_pair(width: u32, height: usize, seed: u64) -> (RleImage, RleImage) {
    let a = RowGenerator::new(GenParams::for_density(width, 0.3), seed).next_image(height);
    let b = errors::apply_errors_image(&a, &ErrorModel::fraction(0.05), seed ^ 0xC4A05);
    (a, b)
}

/// Asserts the pipeline's row ledger closes on the (quiescent) server.
fn assert_pipeline_ledger_closed(handle: &diffd::ServerHandle) {
    let s = handle.observer().metrics_snapshot();
    assert_eq!(
        s.rows_submitted,
        s.rows_completed + s.rows_errored + s.rows_abandoned,
        "every admitted row is delivered, errored, or written off"
    );
    assert_eq!(s.in_flight, 0, "gauge back to zero after the storm");
}

#[test]
fn mid_frame_kills_do_not_disturb_concurrent_good_traffic() {
    let server = DiffServer::bind("127.0.0.1:0", chaos_config()).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    // Good citizen: correctness-checked diffs the whole time.
    let good = std::thread::spawn(move || {
        let (a, b) = image_pair(64, 16, 0x60);
        let expected = a.xor(&b).unwrap();
        let mut client = DiffClient::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for _ in 0..10 {
            let reply = client.diff(&a, &b, 0).unwrap();
            assert_eq!(reply.image, expected, "good traffic must stay correct");
        }
    });

    // Chaos: connections that die at every stage of a frame.
    let (ca, cb) = image_pair(64, 16, 0x61);
    let full_frame = proto::encode_frame(
        FrameKind::Diff,
        &proto::encode_diff_request(&proto::DiffRequest {
            request_id: 1,
            deadline_ms: 0,
            a: ca,
            b: cb,
        }),
    );
    let cuts = [
        0,
        1,
        4,
        8,
        9,
        12,
        full_frame.len() / 2,
        full_frame.len() - 1,
    ];
    for round in 0..3 {
        for &cut in &cuts {
            let mut victim = TcpStream::connect(addr).unwrap();
            let _ = victim.write_all(&full_frame[..cut]);
            // Hard drop: RST or FIN mid-frame, the session must cope.
            drop(victim);
            let _ = round;
        }
    }

    good.join().unwrap();

    // The server survived and the books balance.
    let mut probe = DiffClient::connect(addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    probe.ping().unwrap();
    assert_eq!(handle.server_metrics().responses_ok.get(), 10);
    assert_eq!(handle.pipeline_in_flight(), 0, "no leaked tickets");
    assert_pipeline_ledger_closed(&handle);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn stalled_readers_are_closed_by_the_slowloris_timeouts() {
    let cfg = DiffServerConfig {
        idle_timeout: Duration::from_millis(80),
        frame_timeout: Duration::from_millis(120),
        ..chaos_config()
    };
    let server = DiffServer::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    // Stall A: connects and never sends a byte (idle timeout).
    let idle = TcpStream::connect(addr).unwrap();
    // Stall B: starts a frame and dribbles no more (frame timeout).
    let mut dribble = TcpStream::connect(addr).unwrap();
    dribble.write_all(b"DFD1").unwrap();

    // Both must be evicted without us doing anything further.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let m = handle.server_metrics();
        if m.idle_timeouts.get() >= 2 && m.connections_open.get() == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slowloris sockets not evicted: {} timeouts, {} open",
            m.idle_timeouts.get(),
            m.connections_open.get()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(idle);
    drop(dribble);

    // The server still serves.
    let mut probe = DiffClient::connect(addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    probe.ping().unwrap();

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn graceful_drain_under_a_client_storm_keeps_the_books() {
    let server = DiffServer::bind("127.0.0.1:0", chaos_config()).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    // A storm of clients looping diffs until the server turns them away.
    let workers: Vec<_> = (0..4u64)
        .map(|i| {
            std::thread::spawn(move || {
                let (a, b) = image_pair(64, 16, 0x80 + i);
                let expected = a.xor(&b).unwrap();
                let mut oks = 0u64;
                let Ok(mut client) = DiffClient::connect(addr) else {
                    return oks;
                };
                let _ = client.set_read_timeout(Some(Duration::from_secs(10)));
                loop {
                    match client.diff(&a, &b, 0) {
                        Ok(reply) => {
                            assert_eq!(reply.image, expected);
                            oks += 1;
                        }
                        // Every refusal during drain is typed or a clean
                        // transport close — never a panic, never a corrupt
                        // frame.
                        Err(
                            ClientError::Server { .. } | ClientError::Closed | ClientError::Io(_),
                        ) => break,
                        Err(other) => panic!("storm client saw {other:?}"),
                    }
                }
                oks
            })
        })
        .collect();

    // Let the storm establish, then pull the plug mid-flight.
    std::thread::sleep(Duration::from_millis(150));
    handle.shutdown();
    let report = join.join().unwrap();
    let delivered: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();

    assert!(
        delivered > 0,
        "the storm got real work done before the drain"
    );
    assert_eq!(
        report.sessions_at_shutdown,
        report.sessions_drained + report.sessions_detached
    );
    assert_eq!(
        report.sessions_detached, 0,
        "every session ends in the grace window"
    );
    assert_eq!(handle.pipeline_in_flight(), 0, "drain leaks no tickets");
    assert_pipeline_ledger_closed(&handle);
    // Request ledger: exactly one typed response per parsed request.
    let m = handle.server_metrics();
    assert_eq!(m.requests.get(), m.responses_total());
    assert_eq!(m.connections_open.get(), 0);
}

#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use diffd::proto::ErrorCode;
    use systolic_core::FaultPlan;

    /// Silence the default panic hook for *injected* worker panics (they
    /// are caught by the pipeline supervisor; the hook would only spray
    /// backtraces over the output). Real panics keep default reporting.
    fn quiet_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected fault"))
                    || info
                        .payload()
                        .downcast_ref::<String>()
                        .is_some_and(|s| s.contains("injected fault"));
                if !injected {
                    default_hook(info);
                }
            }));
        });
    }

    #[test]
    fn worker_panic_storm_under_load_keeps_every_response_correct() {
        quiet_injected_panics();
        // Fresh pipeline: ticket n == row n. Panic the first attempt of a
        // spread of early tickets — they land across the first requests.
        let plan = FaultPlan::new()
            .panic_on_row(0)
            .panic_on_row(3)
            .panic_on_row(17)
            .panic_on_row(40)
            .panic_on_row(77);
        let cfg = DiffServerConfig {
            fault_plan: Some(plan),
            ..chaos_config()
        };
        let server = DiffServer::bind("127.0.0.1:0", cfg).unwrap();
        let addr = server.local_addr();
        let (handle, join) = server.spawn();

        let workers: Vec<_> = (0..3u64)
            .map(|i| {
                std::thread::spawn(move || {
                    let (a, b) = image_pair(64, 16, 0x90 + i);
                    let expected = a.xor(&b).unwrap();
                    let mut client = DiffClient::connect(addr).unwrap();
                    client
                        .set_read_timeout(Some(Duration::from_secs(10)))
                        .unwrap();
                    for _ in 0..4 {
                        let reply = client.diff(&a, &b, 0).unwrap();
                        assert_eq!(
                            reply.image, expected,
                            "a retried row must reproduce the exact diff"
                        );
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }

        let s = handle.observer().metrics_snapshot();
        assert!(s.retries >= 1, "the storm actually fired");
        assert_eq!(handle.server_metrics().responses_ok.get(), 12);
        assert_eq!(handle.pipeline_in_flight(), 0);
        assert_pipeline_ledger_closed(&handle);

        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn wedged_row_trips_the_request_deadline_then_heals() {
        quiet_injected_panics();
        // Ticket 0 (the very first row) stalls well past the request
        // deadline; the request must come back DeadlineExceeded and the
        // server must recover once the stall expires.
        let cfg = DiffServerConfig {
            fault_plan: Some(FaultPlan::new().stall_on_row(0, Duration::from_millis(400))),
            ..chaos_config()
        };
        let server = DiffServer::bind("127.0.0.1:0", cfg).unwrap();
        let addr = server.local_addr();
        let (handle, join) = server.spawn();

        let (a, b) = image_pair(64, 8, 0xA0);
        let expected = a.xor(&b).unwrap();
        let mut client = DiffClient::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();

        match client.diff(&a, &b, 60) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::DeadlineExceeded)
            }
            other => panic!("wanted DeadlineExceeded, got {other:?}"),
        }
        // The wedged row was written off behind the ticket watermark — the
        // connection is free even though a worker still holds the row.
        assert_eq!(
            handle.pipeline_in_flight(),
            0,
            "abandon frees the connection"
        );
        assert!(
            handle.pipeline_abandoned() >= 1,
            "the wedge is on the books"
        );
        let m = handle.server_metrics();
        assert_eq!(m.deadline_hits.get(), 1);
        let prom = handle.metrics_prometheus();
        assert!(prom.contains("diffd_deadline_hits_total 1"));
        assert!(prom.contains("diffpipeline_rows_abandoned_total"));

        // Past the stall the worker delivers its stale row; the next batch
        // absorbs and discards it, and everything reconciles.
        std::thread::sleep(Duration::from_millis(500));
        let reply = client.diff(&a, &b, 0).unwrap();
        assert_eq!(reply.image, expected, "healed server is bit-identical");
        assert_eq!(handle.pipeline_abandoned(), 0, "stale delivery absorbed");
        assert_eq!(handle.pipeline_in_flight(), 0);
        assert_pipeline_ledger_closed(&handle);

        handle.shutdown();
        join.join().unwrap();
    }
}
