//! Loopback integration: a real `DiffServer` on 127.0.0.1, real sockets,
//! happy paths and every *typed* refusal the protocol promises — shed,
//! mismatch, connection cap, graceful drain.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use diffd::proto::{self, ErrorCode, FrameKind};
use diffd::{ClientError, DiffClient, DiffServer, DiffServerConfig, RetryPolicy};
use rle::RleImage;
use workload::{errors, ErrorModel, GenParams, RowGenerator};

/// Tight timeouts so the suite never dawdles; generous enough for CI.
fn test_config() -> DiffServerConfig {
    DiffServerConfig {
        threads: 2,
        idle_timeout: Duration::from_secs(5),
        frame_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(5),
        shutdown_grace: Duration::from_secs(5),
        ..DiffServerConfig::default()
    }
}

fn image_pair(width: u32, height: usize, seed: u64) -> (RleImage, RleImage) {
    let a = RowGenerator::new(GenParams::for_density(width, 0.3), seed).next_image(height);
    let b = errors::apply_errors_image(&a, &ErrorModel::fraction(0.05), seed ^ 0xD1FF);
    (a, b)
}

#[test]
fn diff_round_trip_matches_reference_and_maps_tickets() {
    let server = DiffServer::bind("127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    let (a, b) = image_pair(64, 32, 0x10);
    let expected = a.xor(&b).unwrap();

    let mut client = DiffClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let reply = client.diff(&a, &b, 0).unwrap();
    assert_eq!(reply.image, expected, "network diff must equal local xor");
    // The connection-to-pipeline mapping: one contiguous ticket per row.
    assert_eq!(reply.ticket_hi - reply.ticket_lo, a.height() as u64);

    // A second request on the same connection reuses the pool and gets the
    // next ticket range.
    let again = client.diff(&a, &b, 0).unwrap();
    assert_eq!(again.image, expected);
    assert!(again.ticket_lo >= reply.ticket_hi);

    handle.shutdown();
    join.join().unwrap();
    assert_eq!(handle.pipeline_in_flight(), 0, "no leaked tickets");
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let server = DiffServer::bind("127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    let threads: Vec<_> = (0..6u64)
        .map(|i| {
            std::thread::spawn(move || {
                let (a, b) = image_pair(64, 16, 0x100 + i);
                let expected = a.xor(&b).unwrap();
                let mut client = DiffClient::connect(addr).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                for _ in 0..4 {
                    let reply = client.diff(&a, &b, 0).unwrap();
                    assert_eq!(reply.image, expected);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let m = handle.server_metrics();
    assert_eq!(m.responses_ok.get(), 24, "6 clients x 4 requests");
    assert_eq!(m.requests.get(), m.responses_total());
    // The latency split: every admitted request records exactly one mutex
    // wait and (having reached the pipeline) one compute sample, so
    // queueing delay and diff time are separable after the fact.
    assert_eq!(m.queue_wait_ns.count(), 24);
    assert_eq!(m.compute_ns.count(), 24);
    assert!(m.compute_ns.snapshot().sum > 0, "diffs take nonzero time");

    handle.shutdown();
    join.join().unwrap();
    assert_eq!(handle.pipeline_in_flight(), 0);
}

#[test]
fn ping_and_binary_metrics_frames_work() {
    let server = DiffServer::bind("127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    let mut client = DiffClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    client.ping().unwrap();

    let text = client.metrics().unwrap();
    assert!(text.contains("diffpipeline_rows_completed_total"));
    assert!(text.contains("diffpipeline_rows_abandoned_total"));
    assert!(text.contains("diffd_requests_total"));
    assert!(text.contains("diffd_connections_open"));
    assert!(text.contains("diffd_queue_wait_ns_count"));
    assert!(text.contains("diffd_compute_ns_count"));

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn http_metrics_endpoint_serves_text_json_and_404() {
    let server = DiffServer::bind("127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    let get = |path: &str| -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        let mut body = String::new();
        use std::io::Read as _;
        stream.read_to_string(&mut body).unwrap();
        body
    };

    let text = get("/metrics");
    assert!(text.starts_with("HTTP/1.0 200 OK"));
    assert!(text.contains("diffpipeline_rows_completed_total"));
    assert!(text.contains("diffd_connections_open"));

    let json = get("/metrics.json");
    assert!(json.starts_with("HTTP/1.0 200 OK"));
    assert!(json.contains("\"pipeline\""));
    assert!(json.contains("\"server\""));
    assert!(json.contains("\"rows_abandoned\""));

    let missing = get("/nope");
    assert!(missing.starts_with("HTTP/1.0 404"));

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn zero_request_budget_sheds_with_typed_overloaded() {
    let cfg = DiffServerConfig {
        max_concurrent_requests: 0,
        ..test_config()
    };
    let server = DiffServer::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    let (a, b) = image_pair(32, 4, 0x20);
    let mut client = DiffClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match client.diff(&a, &b, 0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("wanted a typed Overloaded shed, got {other:?}"),
    }
    // The shed is per-request, not per-connection: the session survives.
    client.ping().unwrap();
    assert_eq!(handle.server_metrics().sheds.get(), 1);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn zero_row_budget_sheds_on_pipeline_pressure() {
    let cfg = DiffServerConfig {
        max_pending_rows: 0,
        ..test_config()
    };
    let server = DiffServer::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    let (a, b) = image_pair(32, 4, 0x21);
    let mut client = DiffClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match client.diff(&a, &b, 0) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Overloaded);
            assert!(
                message.contains("rows"),
                "row-pressure shed explains itself"
            );
        }
        other => panic!("wanted a typed Overloaded shed, got {other:?}"),
    }

    handle.shutdown();
    join.join().unwrap();
}

/// The retry contract end to end: a single-slot server is driven into
/// shed by a slow request on one connection, and a second client's
/// `diff_with_retry` must absorb at least one `Overloaded`, converge to
/// the correct answer once the slot frees, and report how many sheds it
/// rode out.
#[test]
fn retrying_client_converges_after_a_shed() {
    let cfg = DiffServerConfig {
        max_concurrent_requests: 1,
        ..test_config()
    };
    let server = DiffServer::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    // Occupy the single request slot with a deliberately heavy diff.
    let blocker = std::thread::spawn(move || {
        let (a, b) = image_pair(8_192, 192, 0x51);
        let expected = a.xor(&b).unwrap();
        let mut client = DiffClient::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reply = client.diff(&a, &b, 30_000).unwrap();
        assert_eq!(reply.image, expected);
    });
    // Wait until the blocker holds the slot: its request is counted on
    // entry, immediately before it claims the one admission slot (the
    // latency split itself is recorded only when its job completes).
    let m = handle.server_metrics();
    let armed = std::time::Instant::now();
    while m.requests.get() == 0 && armed.elapsed() < Duration::from_secs(20) {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(m.requests.get(), 1, "blocker never arrived");

    // The retrying client: its first attempt lands while the slot is
    // held (a guaranteed shed), then backoff-and-retry until the blocker
    // completes. Tiny backoff keeps the test fast; the budget is far
    // larger than the blocker could ever need.
    let (a, b) = image_pair(32, 4, 0x52);
    let expected = a.xor(&b).unwrap();
    let mut client = DiffClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let policy = RetryPolicy {
        retries: 20_000,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        jitter_seed: 0x7E57,
    };
    let (reply, sheds_absorbed) = client
        .diff_with_retry(&a, &b, 0, &policy)
        .expect("retry must converge once the slot frees");
    assert_eq!(reply.image, expected);
    assert!(
        sheds_absorbed >= 1,
        "the first attempt must have been shed ({sheds_absorbed} absorbed)"
    );
    assert!(
        m.sheds.get() >= u64::from(sheds_absorbed),
        "client-side sheds must be visible server-side"
    );

    blocker.join().unwrap();
    handle.shutdown();
    join.join().unwrap();
    assert_eq!(handle.pipeline_in_flight(), 0);
}

/// A zero-retry policy behaves exactly like `diff`: the shed surfaces.
#[test]
fn zero_retry_policy_surfaces_the_shed() {
    let cfg = DiffServerConfig {
        max_concurrent_requests: 0,
        ..test_config()
    };
    let server = DiffServer::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    let (a, b) = image_pair(32, 4, 0x53);
    let mut client = DiffClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match client.diff_with_retry(&a, &b, 0, &RetryPolicy::default()) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("wanted the shed surfaced unretried, got {other:?}"),
    }

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn mismatched_dimensions_get_a_typed_mismatch() {
    let server = DiffServer::bind("127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    let (a, _) = image_pair(32, 4, 0x30);
    let (b, _) = image_pair(16, 4, 0x31);
    let mut client = DiffClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match client.diff(&a, &b, 0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Mismatch),
        other => panic!("wanted a typed Mismatch, got {other:?}"),
    }
    assert_eq!(handle.server_metrics().mismatches.get(), 1);
    // The pipeline never saw the batch: nothing in flight, nothing leaked.
    assert_eq!(handle.pipeline_in_flight(), 0);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn connection_cap_refuses_with_a_typed_error_frame() {
    let cfg = DiffServerConfig {
        max_connections: 1,
        ..test_config()
    };
    let server = DiffServer::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    // First session: fully established (the ping round trip proves the
    // session thread is alive and registered).
    let mut first = DiffClient::connect(addr).unwrap();
    first
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    first.ping().unwrap();

    // Second connection: refused before any request with Overloaded.
    let mut second = TcpStream::connect(addr).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let frame = proto::read_frame(&mut second, proto::DEFAULT_MAX_FRAME_LEN)
        .unwrap()
        .expect("a refusal frame, not silence");
    assert_eq!(frame.0, FrameKind::Error);
    let reply = proto::decode_error_reply(&frame.1).unwrap();
    assert_eq!(reply.code, ErrorCode::Overloaded);
    // ... and then a clean close.
    assert!(proto::read_frame(&mut second, proto::DEFAULT_MAX_FRAME_LEN)
        .unwrap()
        .is_none());

    // The first session is unaffected.
    first.ping().unwrap();

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn graceful_drain_flushes_open_sessions_and_reports() {
    let server = DiffServer::bind("127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    // An idle-but-open session at shutdown time.
    let mut client = DiffClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let (a, b) = image_pair(64, 8, 0x40);
    let reply = client.diff(&a, &b, 0).unwrap();
    assert_eq!(reply.image, a.xor(&b).unwrap());

    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.sessions_at_shutdown, 1);
    assert_eq!(
        report.sessions_drained, 1,
        "idle session closes in a poll slice"
    );
    assert_eq!(report.sessions_detached, 0);
    assert_eq!(handle.pipeline_in_flight(), 0);
    assert!(handle.is_shutting_down());

    // The response sent before shutdown was flushed; the session then
    // closed cleanly, so the client observes EOF rather than a reset.
    match client.ping() {
        Err(ClientError::Closed | ClientError::Io(_)) => {}
        other => panic!("session should be gone after drain, got {other:?}"),
    }
}
