//! The `diffd` server: many connections multiplexed onto one shared
//! [`DiffExecutor`], designed around failure first.
//!
//! * **Concurrent sessions, no pipeline mutex** — every session submits
//!   its request directly as an executor *job* via
//!   [`DiffExecutor::diff_pair`]; jobs from different sessions interleave
//!   on the shared worker shards under the executor's round-robin policy,
//!   so one huge request can no longer serialize the rest behind a lock.
//! * **Admission control** — before a request touches the executor it must
//!   pass the shed policy, driven by the executor's `queue_depth` /
//!   `in_flight` gauges plus a server-side concurrent-request bound;
//!   everything over the line gets a typed `Overloaded` response instead
//!   of a place in an unbounded queue.
//! * **Deadlines** — each request carries (or inherits) a wall-clock
//!   budget, mapped onto the job's collect deadline; on expiry the job is
//!   abandoned (other sessions' jobs unaffected), so a wedged row can
//!   never wedge a connection.
//! * **Slowloris defence** — a connection may idle between frames for at
//!   most `idle_timeout`, and once a frame has started it must complete
//!   within `frame_timeout`; reads poll in `poll_interval` slices so the
//!   shutdown flag is honoured promptly.
//! * **Graceful drain** — shutdown stops the accept loop, lets in-flight
//!   requests finish and flush their responses, then closes every session
//!   (a wedged session is bounded by its own deadline; past
//!   `shutdown_grace` it is detached, never joined on forever).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use systolic_core::obs::Observer;
use systolic_core::{DiffExecutor, DiffExecutorConfig, Kernel, SystolicError};

#[cfg(feature = "fault-injection")]
use systolic_core::FaultPlan;

use crate::metrics::ServerMetrics;
use crate::proto::{
    self, decode_header, encode_error_reply, encode_frame, DiffReply, ErrorCode, ErrorReply,
    FrameKind, DEFAULT_MAX_FRAME_LEN, FRAME_HEADER_LEN, PREALLOC_CAP,
};

/// Everything tunable about a [`DiffServer`]. `Default` is production-ish;
/// tests shrink the timeouts to milliseconds.
#[derive(Clone, Debug)]
pub struct DiffServerConfig {
    /// Worker threads in the shared executor.
    pub threads: usize,
    /// Ceiling on a frame's declared payload length.
    pub max_frame_len: u32,
    /// Shed when admitting a request would push the executor's
    /// `in_flight` gauge past this many rows.
    pub max_pending_rows: usize,
    /// Shed when more than this many requests are admitted but unanswered
    /// (each holds an executor job; this bounds that concurrency).
    pub max_concurrent_requests: usize,
    /// Refuse connections beyond this many concurrent sessions.
    pub max_connections: usize,
    /// Budget for requests that ask for the default (`deadline_ms == 0`).
    pub default_deadline: Duration,
    /// Clamp on client-requested deadlines.
    pub max_deadline: Duration,
    /// How long a session may sit idle between frames.
    pub idle_timeout: Duration,
    /// How long a started frame may take to arrive completely.
    pub frame_timeout: Duration,
    /// Socket read/write poll slice (shutdown responsiveness).
    pub poll_interval: Duration,
    /// How long drain waits for sessions before detaching them.
    pub shutdown_grace: Duration,
    /// Kernel policy for the shared executor.
    pub kernel: Kernel,
    /// Chunk-target override for the shared executor.
    pub chunk_target: Option<usize>,
    #[cfg(feature = "fault-injection")]
    /// Deterministic fault plan installed into the executor (chaos drills).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for DiffServerConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_pending_rows: 65_536,
            max_concurrent_requests: 64,
            max_connections: 256,
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(60),
            idle_timeout: Duration::from_secs(60),
            frame_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
            shutdown_grace: Duration::from_secs(5),
            kernel: Kernel::Auto,
            chunk_target: None,
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }
}

/// Why `run` stopped and what it left behind.
#[derive(Clone, Copy, Debug, Default)]
pub struct DrainReport {
    /// Sessions alive when shutdown began.
    pub sessions_at_shutdown: usize,
    /// Sessions that exited within the grace window.
    pub sessions_drained: usize,
    /// Sessions detached because they outlived the grace window.
    pub sessions_detached: usize,
}

struct ServerShared {
    addr: SocketAddr,
    cfg: DiffServerConfig,
    executor: DiffExecutor,
    observer: Arc<Observer>,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    active_requests: AtomicUsize,
    conn_seq: AtomicU64,
}

impl ServerShared {
    /// The full `/metrics` body: executor exposition plus server counters.
    fn prometheus(&self) -> String {
        let mut text = self.observer.metrics_snapshot().to_prometheus();
        text.push_str(&self.metrics.to_prometheus());
        text
    }

    fn json(&self) -> String {
        format!(
            "{{\n\"pipeline\": {},\n\"server\": {}\n}}\n",
            self.observer.metrics_snapshot().to_json().trim_end(),
            self.metrics.to_json().trim_end(),
        )
    }
}

/// A bound-but-not-yet-running server. [`DiffServer::run`] blocks in the
/// accept loop until [`ServerHandle::shutdown`]; [`DiffServer::spawn`]
/// does the same on a background thread.
pub struct DiffServer {
    listener: TcpListener,
    shared: Arc<ServerShared>,
}

/// A cloneable remote control for a running server.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<ServerShared>,
}

impl DiffServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and spins up the shared
    /// executor. The executor always runs observed — admission control
    /// reads its gauges and `/metrics` serves its exposition.
    pub fn bind(addr: impl ToSocketAddrs, cfg: DiffServerConfig) -> std::io::Result<Self> {
        assert!(cfg.threads > 0, "need at least one executor worker");
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let executor = DiffExecutorConfig {
            threads: cfg.threads,
            kernel: cfg.kernel,
            chunk_target: cfg.chunk_target,
            observe: Some(systolic_core::ObsConfig::default()),
            #[cfg(feature = "fault-injection")]
            fault_plan: cfg.fault_plan.clone(),
            ..DiffExecutorConfig::default()
        }
        .build();
        let observer = executor.observer().expect("executor built observed");
        Ok(Self {
            listener,
            shared: Arc::new(ServerShared {
                addr: local,
                cfg,
                executor,
                observer,
                metrics: ServerMetrics::default(),
                shutdown: AtomicBool::new(false),
                active_requests: AtomicUsize::new(0),
                conn_seq: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A remote control valid for the server's whole life.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop on this thread until shutdown, then drains.
    pub fn run(self) -> DrainReport {
        let shared = self.shared;
        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
                Err(_) => continue,
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                // The wake-up poke, or a late arrival during drain: refuse
                // politely and stop accepting.
                refuse(&stream, &shared, ErrorCode::ShuttingDown, "server draining");
                break;
            }
            sessions.retain(|h| !h.is_finished());
            if sessions.len() >= shared.cfg.max_connections {
                shared.metrics.sheds.inc();
                refuse(
                    &stream,
                    &shared,
                    ErrorCode::Overloaded,
                    "connection limit reached",
                );
                continue;
            }
            let conn_shared = Arc::clone(&shared);
            let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
            sessions.push(std::thread::spawn(move || {
                Session::new(stream, conn_shared, id).serve();
            }));
        }
        drop(self.listener);

        // Drain: sessions notice the shutdown flag within one poll slice
        // (or finish their in-flight request first — that response is
        // flushed before the close). Anything still alive past the grace
        // window is detached, mirroring the pipeline's own never-deadlock
        // Drop policy.
        let mut report = DrainReport {
            sessions_at_shutdown: sessions.len(),
            ..Default::default()
        };
        let grace_over = Instant::now() + shared.cfg.shutdown_grace;
        loop {
            sessions.retain(|h| !h.is_finished());
            if sessions.is_empty() || Instant::now() >= grace_over {
                break;
            }
            std::thread::sleep(shared.cfg.poll_interval.min(Duration::from_millis(10)));
        }
        report.sessions_detached = sessions.len();
        report.sessions_drained = report.sessions_at_shutdown - report.sessions_detached;
        report
    }

    /// Runs the server on a background thread; returns the handle and the
    /// join handle yielding the final [`DrainReport`].
    #[must_use]
    pub fn spawn(self) -> (ServerHandle, JoinHandle<DrainReport>) {
        let handle = self.handle();
        let join = std::thread::spawn(move || self.run());
        (handle, join)
    }
}

impl ServerHandle {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begins graceful shutdown: no new connections or requests are
    /// admitted; in-flight work finishes and is flushed. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.shared.addr, Duration::from_secs(1));
    }

    /// True once [`Self::shutdown`] has been called.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The combined Prometheus exposition (`diffpipeline_*` + `diffd_*`).
    #[must_use]
    pub fn metrics_prometheus(&self) -> String {
        self.shared.prometheus()
    }

    /// The combined JSON exposition.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.shared.json()
    }

    /// Server-side counters (tests and embedders).
    #[must_use]
    pub fn server_metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// The shared executor's observer (ledger assertions in tests).
    #[must_use]
    pub fn observer(&self) -> Arc<Observer> {
        Arc::clone(&self.shared.observer)
    }

    /// Rows currently in flight inside the shared executor (0 on an idle,
    /// healthy server — the no-leaked-tickets check).
    #[must_use]
    pub fn pipeline_in_flight(&self) -> usize {
        self.shared.executor.in_flight()
    }

    /// Abandoned-row level inside the shared executor (drains back to 0
    /// once wedged workers heal).
    #[must_use]
    pub fn pipeline_abandoned(&self) -> usize {
        self.shared.executor.abandoned()
    }
}

/// Sends a best-effort error frame on a connection we are refusing (the
/// request id is 0 — nothing was parsed yet).
fn refuse(mut stream: &TcpStream, shared: &ServerShared, code: ErrorCode, msg: &str) {
    let frame = encode_frame(
        FrameKind::Error,
        &encode_error_reply(&ErrorReply {
            request_id: 0,
            code,
            message: msg.to_string(),
        }),
    );
    let _ = stream.set_write_timeout(Some(shared.cfg.poll_interval));
    let _ = stream.write_all(&frame);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Outcome of a deadline-bounded read attempt.
enum ReadStep {
    /// Buffer filled.
    Done,
    /// Peer closed with `got` of the wanted bytes delivered.
    Eof { got: usize },
    /// Deadline expired first.
    TimedOut,
    /// The server is draining.
    Shutdown,
    /// Transport error.
    Failed,
}

/// Why a session ended — drives the close-reason metrics.
enum CloseReason {
    PeerClosed,
    Protocol,
    IdleOrStalled,
    Shutdown,
    Io,
}

struct Session {
    stream: TcpStream,
    shared: Arc<ServerShared>,
    #[allow(dead_code)] // part of the conn→ticket mapping, surfaced in replies
    conn_id: u64,
}

impl Session {
    fn new(stream: TcpStream, shared: Arc<ServerShared>, conn_id: u64) -> Self {
        shared.metrics.connections_accepted.inc();
        shared.metrics.connections_open.add(1);
        Self {
            stream,
            shared,
            conn_id,
        }
    }

    fn serve(mut self) {
        let _ = self.stream.set_nodelay(true);
        let _ = self
            .stream
            .set_read_timeout(Some(self.shared.cfg.poll_interval));
        let _ = self
            .stream
            .set_write_timeout(Some(self.shared.cfg.frame_timeout));
        let reason = self.session_loop();
        match reason {
            CloseReason::Protocol => self.shared.metrics.protocol_errors.inc(),
            CloseReason::IdleOrStalled => self.shared.metrics.idle_timeouts.inc(),
            CloseReason::PeerClosed | CloseReason::Shutdown | CloseReason::Io => {}
        }
        let _ = self.stream.shutdown(Shutdown::Both);
        self.shared.metrics.connections_open.sub(1);
        self.shared.metrics.connections_closed.inc();
    }

    fn session_loop(&mut self) -> CloseReason {
        loop {
            // Between frames: wait up to idle_timeout for the first bytes.
            let idle_deadline = Instant::now() + self.shared.cfg.idle_timeout;
            let mut lead = [0u8; 4];
            match self.read_exact_deadline(&mut lead, idle_deadline) {
                ReadStep::Done => {}
                ReadStep::Eof { got: 0 } => return CloseReason::PeerClosed,
                ReadStep::Eof { .. } => return CloseReason::Protocol,
                ReadStep::TimedOut => return CloseReason::IdleOrStalled,
                ReadStep::Shutdown => return CloseReason::Shutdown,
                ReadStep::Failed => return CloseReason::Io,
            }

            // A frame (or HTTP request) has started: it must complete
            // within frame_timeout, however slowly the peer dribbles it.
            let frame_deadline = Instant::now() + self.shared.cfg.frame_timeout;

            if &lead == b"GET " {
                return self.serve_http(frame_deadline);
            }

            let mut rest = [0u8; FRAME_HEADER_LEN - 4];
            match self.read_exact_deadline(&mut rest, frame_deadline) {
                ReadStep::Done => {}
                ReadStep::Eof { .. } => return CloseReason::Protocol,
                ReadStep::TimedOut => return CloseReason::IdleOrStalled,
                ReadStep::Shutdown => return CloseReason::Shutdown,
                ReadStep::Failed => return CloseReason::Io,
            }
            let mut header = [0u8; FRAME_HEADER_LEN];
            header[..4].copy_from_slice(&lead);
            header[4..].copy_from_slice(&rest);

            let (kind, len) = match decode_header(&header, self.shared.cfg.max_frame_len) {
                Ok(pair) => pair,
                Err(e) => {
                    self.send_error(0, ErrorCode::Protocol, &e.to_string());
                    return CloseReason::Protocol;
                }
            };
            if !kind.is_request() {
                self.send_error(
                    0,
                    ErrorCode::Protocol,
                    &format!("{kind:?} is a response kind, not a request"),
                );
                return CloseReason::Protocol;
            }

            let payload = match self.read_payload_deadline(len, frame_deadline) {
                Ok(p) => p,
                Err(step) => match step {
                    ReadStep::TimedOut => return CloseReason::IdleOrStalled,
                    ReadStep::Shutdown => return CloseReason::Shutdown,
                    ReadStep::Eof { .. } => return CloseReason::Protocol,
                    ReadStep::Done | ReadStep::Failed => return CloseReason::Io,
                },
            };
            self.shared
                .metrics
                .bytes_read
                .add((FRAME_HEADER_LEN + payload.len()) as u64);

            match kind {
                FrameKind::Ping => {
                    if !self.send_frame(FrameKind::Pong, &[]) {
                        return CloseReason::Io;
                    }
                }
                FrameKind::Metrics => {
                    let body = self.shared.prometheus();
                    if !self.send_frame(FrameKind::MetricsText, body.as_bytes()) {
                        return CloseReason::Io;
                    }
                }
                FrameKind::Diff => match proto::decode_diff_request(&payload) {
                    Ok(req) => {
                        if !self.handle_diff(req) {
                            return CloseReason::Io;
                        }
                    }
                    Err(e) => {
                        self.send_error(0, ErrorCode::Protocol, &e.to_string());
                        return CloseReason::Protocol;
                    }
                },
                FrameKind::DiffOk | FrameKind::Error | FrameKind::Pong | FrameKind::MetricsText => {
                    unreachable!("is_request() filtered response kinds")
                }
            }

            if self.shared.shutdown.load(Ordering::SeqCst) {
                // The response above was flushed; drain ends the session
                // at the frame boundary.
                return CloseReason::Shutdown;
            }
        }
    }

    /// One `Diff` request, end to end. Returns false on a dead socket.
    fn handle_diff(&mut self, req: proto::DiffRequest) -> bool {
        let shared = Arc::clone(&self.shared);
        let m = &shared.metrics;
        m.requests.inc();
        let id = req.request_id;

        if shared.shutdown.load(Ordering::SeqCst) {
            m.shutdown_rejects.inc();
            return self.send_error(id, ErrorCode::ShuttingDown, "server draining");
        }

        // Admission control: the executor gauges are lock-free reads, so a
        // wedged job (bounded by its own deadline) can never stall the
        // shed decision.
        let gauges = &shared.observer.metrics;
        let rows_in_flight = usize::try_from(gauges.in_flight.get().max(0)).unwrap_or(0);
        let queued_chunks = usize::try_from(gauges.queue_depth.get().max(0)).unwrap_or(0);
        let height = req.a.height();
        let cfg = &shared.cfg;
        let admitted = shared.active_requests.fetch_add(1, Ordering::SeqCst);
        let _slot = ActiveGuard(&shared.active_requests);
        if admitted >= cfg.max_concurrent_requests {
            m.sheds.inc();
            return self.send_error(
                id,
                ErrorCode::Overloaded,
                &format!(
                    "{admitted} requests already admitted (limit {})",
                    cfg.max_concurrent_requests
                ),
            );
        }
        if rows_in_flight + queued_chunks + height > cfg.max_pending_rows {
            m.sheds.inc();
            return self.send_error(
                id,
                ErrorCode::Overloaded,
                &format!(
                    "executor carrying {rows_in_flight} rows / {queued_chunks} queued chunks; \
                     admitting {height} more would exceed {}",
                    cfg.max_pending_rows
                ),
            );
        }

        // Deadline: clamp the ask; the whole job must finish inside it.
        let budget = if req.deadline_ms == 0 {
            cfg.default_deadline
        } else {
            Duration::from_millis(u64::from(req.deadline_ms)).min(cfg.max_deadline)
        };

        let a = Arc::new(req.a);
        let b = Arc::new(req.b);
        // The session submits straight into the shared executor — no
        // pipeline mutex. The request latency splits at the job's first
        // chunk checkout: submission → checkout is executor queueing
        // (diffd_queue_wait_ns), the rest is compute (diffd_compute_ns).
        // The split is what distinguishes "add capacity" from "the diff
        // itself is slow" when the p99 climbs.
        let total_started = Instant::now();
        let outcome = shared.executor.diff_pair(&a, &b, Some(budget));
        let total_ns = u64::try_from(total_started.elapsed().as_nanos()).unwrap_or(u64::MAX);

        match outcome {
            Ok(job) => {
                let queue_wait_ns = u64::try_from(job.queue_wait.as_nanos())
                    .unwrap_or(u64::MAX)
                    .min(total_ns);
                let compute_ns = total_ns - queue_wait_ns;
                m.queue_wait_ns.record(queue_wait_ns);
                m.compute_ns.record(compute_ns);
                m.responses_ok.inc();
                let reply = DiffReply {
                    request_id: id,
                    ticket_lo: job.tickets.0,
                    ticket_hi: job.tickets.1,
                    queue_wait_ns,
                    compute_ns,
                    image: job.image,
                };
                self.send_frame(FrameKind::DiffOk, &proto::encode_diff_reply(&reply))
            }
            Err(e @ SystolicError::DeadlineExceeded { .. }) => {
                m.deadline_hits.inc();
                self.send_error(id, ErrorCode::DeadlineExceeded, &e.to_string())
            }
            Err(
                e @ (SystolicError::WidthMismatch { .. } | SystolicError::HeightMismatch { .. }),
            ) => {
                m.mismatches.inc();
                self.send_error(id, ErrorCode::Mismatch, &e.to_string())
            }
            Err(e @ SystolicError::RowFailed { .. }) => {
                m.row_failures.inc();
                self.send_error(id, ErrorCode::RowFailed, &e.to_string())
            }
            Err(e) => {
                m.internal_errors.inc();
                self.send_error(id, ErrorCode::Internal, &e.to_string())
            }
        }
    }

    /// Minimal HTTP/1.0 for scrape tooling: the sniffed `GET ` lead means
    /// this connection speaks HTTP; serve one response and close.
    fn serve_http(&mut self, deadline: Instant) -> CloseReason {
        // Read until the header terminator, bounded in size and time.
        let mut buf = Vec::with_capacity(256);
        let mut scratch = [0u8; 256];
        while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 4096 {
            match self.stream.read(&mut scratch) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&scratch[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline || self.shared.shutdown.load(Ordering::SeqCst) {
                        return CloseReason::IdleOrStalled;
                    }
                }
                Err(_) => return CloseReason::Io,
            }
            // An LF-only client still terminates eventually.
            if buf.windows(2).any(|w| w == b"\n\n") {
                break;
            }
        }
        let request_line = String::from_utf8_lossy(&buf);
        let path = request_line
            .split_whitespace()
            .next()
            .unwrap_or_default()
            .to_string();
        let (status, body) = match path.as_str() {
            "/metrics" => ("200 OK", self.shared.prometheus()),
            "/metrics.json" => ("200 OK", self.shared.json()),
            _ => ("404 Not Found", String::from("try /metrics\n")),
        };
        let response = format!(
            "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let _ = self.stream.write_all(response.as_bytes());
        self.shared.metrics.bytes_written.add(response.len() as u64);
        CloseReason::PeerClosed
    }

    /// Fills `buf`, polling in `poll_interval` slices so `deadline` and
    /// the shutdown flag are both honoured mid-read.
    fn read_exact_deadline(&mut self, buf: &mut [u8], deadline: Instant) -> ReadStep {
        let mut got = 0;
        while got < buf.len() {
            match self.stream.read(&mut buf[got..]) {
                Ok(0) => return ReadStep::Eof { got },
                Ok(n) => got += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.shared.shutdown.load(Ordering::SeqCst) && got == 0 {
                        return ReadStep::Shutdown;
                    }
                    if Instant::now() >= deadline {
                        return ReadStep::TimedOut;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return ReadStep::Failed,
            }
        }
        ReadStep::Done
    }

    /// Reads a declared-length payload under the frame deadline. The
    /// buffer starts at most [`PREALLOC_CAP`] bytes — growth follows
    /// received bytes, never the claimed length.
    fn read_payload_deadline(&mut self, len: u32, deadline: Instant) -> Result<Vec<u8>, ReadStep> {
        let len = len as usize;
        let mut payload = Vec::with_capacity(len.min(PREALLOC_CAP));
        let mut scratch = [0u8; 8192];
        while payload.len() < len {
            let want = (len - payload.len()).min(scratch.len());
            match self.stream.read(&mut scratch[..want]) {
                Ok(0) => return Err(ReadStep::Eof { got: payload.len() }),
                Ok(n) => payload.extend_from_slice(&scratch[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Err(ReadStep::TimedOut);
                    }
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        return Err(ReadStep::Shutdown);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Err(ReadStep::Failed),
            }
        }
        Ok(payload)
    }

    /// Writes one frame; returns false if the socket is gone (the session
    /// then closes — a stalled *reader* is bounded by the write timeout).
    fn send_frame(&mut self, kind: FrameKind, payload: &[u8]) -> bool {
        let frame = encode_frame(kind, payload);
        match self.stream.write_all(&frame) {
            Ok(()) => {
                self.shared.metrics.bytes_written.add(frame.len() as u64);
                let _ = self.stream.flush();
                true
            }
            Err(_) => false,
        }
    }

    fn send_error(&mut self, request_id: u64, code: ErrorCode, message: &str) -> bool {
        self.send_frame(
            FrameKind::Error,
            &encode_error_reply(&ErrorReply {
                request_id,
                code,
                message: message.to_string(),
            }),
        )
    }
}

/// Decrements the admitted-request count however the request ends.
struct ActiveGuard<'a>(&'a AtomicUsize);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}
