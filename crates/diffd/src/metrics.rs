//! Server-side counters (`diffd_*`), kept separate from the pipeline's
//! `diffpipeline_*` registry: the pipeline counts rows and chunks, the
//! server counts connections, requests and the ways they fail. Built on
//! the same lock-light atomics (`core::obs::metrics`), exposed through
//! the same hand-rolled Prometheus/JSON text so `/metrics` is one
//! concatenation.

use systolic_core::obs::metrics::{Counter, Gauge, HistogramSnapshot, Log2Histogram};

/// Every metric the server maintains. All counters are monotonic; the one
/// gauge (`connections_open`) is inc/dec'd symmetrically around each
/// connection's lifetime.
///
/// Accounting identities (asserted by the chaos suite on a drained
/// server):
///
/// * `connections_accepted == connections_closed` once every connection
///   has ended (`connections_open == 0`);
/// * `requests == responses_ok + sheds + deadline_hits + mismatches +
///   row_failures + internal_errors + shutdown_rejects` — every parsed
///   `Diff` request gets exactly one typed response;
/// * `protocol_errors` and `idle_timeouts` count *connection* failures
///   before or between requests, so they are outside the request ledger.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections the accept loop handed to a session thread.
    pub connections_accepted: Counter,
    /// Sessions that ended (any reason).
    pub connections_closed: Counter,
    /// Sessions currently alive.
    pub connections_open: Gauge,
    /// `Diff` requests successfully parsed off the wire.
    pub requests: Counter,
    /// `DiffOk` responses sent.
    pub responses_ok: Counter,
    /// Requests (or whole connections) shed by admission control with a
    /// typed `Overloaded` response.
    pub sheds: Counter,
    /// Requests that hit their deadline and were answered
    /// `DeadlineExceeded`.
    pub deadline_hits: Counter,
    /// Requests rejected because the image dimensions disagreed.
    pub mismatches: Counter,
    /// Requests answered `RowFailed` (a row exhausted its retry budget).
    pub row_failures: Counter,
    /// Requests answered `Internal`.
    pub internal_errors: Counter,
    /// Requests refused because the server was draining.
    pub shutdown_rejects: Counter,
    /// Malformed frames / headers answered with a typed `Protocol` error
    /// and a close.
    pub protocol_errors: Counter,
    /// Connections closed for idling between frames or stalling
    /// mid-frame (slowloris defence).
    pub idle_timeouts: Counter,
    /// Payload bytes read off accepted connections.
    pub bytes_read: Counter,
    /// Frame bytes written to clients.
    pub bytes_written: Counter,
    /// Nanoseconds an admitted request's job waited between submission
    /// and its first chunk checkout on the shared executor. Splitting
    /// this out of the request latency separates "the server is
    /// queueing" from "the diff is slow" — the tail of this histogram is
    /// the executor's scheduling delay under concurrent load (what used
    /// to be the pipeline-mutex wait before sessions submitted as
    /// independent jobs).
    pub queue_wait_ns: Log2Histogram,
    /// Nanoseconds spent computing the diff (the request latency minus
    /// parse, admission and queue wait).
    pub compute_ns: Log2Histogram,
}

impl ServerMetrics {
    fn counters(&self) -> [(&'static str, u64); 14] {
        [
            ("connections_accepted", self.connections_accepted.get()),
            ("connections_closed", self.connections_closed.get()),
            ("requests", self.requests.get()),
            ("responses_ok", self.responses_ok.get()),
            ("sheds", self.sheds.get()),
            ("deadline_hits", self.deadline_hits.get()),
            ("mismatches", self.mismatches.get()),
            ("row_failures", self.row_failures.get()),
            ("internal_errors", self.internal_errors.get()),
            ("shutdown_rejects", self.shutdown_rejects.get()),
            ("protocol_errors", self.protocol_errors.get()),
            ("idle_timeouts", self.idle_timeouts.get()),
            ("bytes_read", self.bytes_read.get()),
            ("bytes_written", self.bytes_written.get()),
        ]
    }

    fn histograms(&self) -> [(&'static str, HistogramSnapshot); 2] {
        [
            ("queue_wait_ns", self.queue_wait_ns.snapshot()),
            ("compute_ns", self.compute_ns.snapshot()),
        ]
    }

    /// Prometheus text exposition (prefix `diffd_`, counters suffixed
    /// `_total`, histograms in the standard `_bucket`/`_sum`/`_count`
    /// shape), shaped like the pipeline's so both concatenate into one
    /// `/metrics` body.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in self.counters() {
            let _ = writeln!(out, "# TYPE diffd_{name} counter");
            let _ = writeln!(out, "diffd_{name}_total {v}");
        }
        let _ = writeln!(out, "# TYPE diffd_connections_open gauge");
        let _ = writeln!(
            out,
            "diffd_connections_open {}",
            self.connections_open.get()
        );
        for (name, h) in self.histograms() {
            let _ = writeln!(out, "# TYPE diffd_{name} histogram");
            let mut cumulative = 0u64;
            for (i, n) in h.buckets.iter().enumerate() {
                cumulative += n;
                // Empty buckets are elided; +Inf carries the full count.
                if *n > 0 {
                    let _ = writeln!(
                        out,
                        "diffd_{name}_bucket{{le=\"{}\"}} {cumulative}",
                        HistogramSnapshot::bucket_edge(i)
                    );
                }
            }
            let _ = writeln!(out, "diffd_{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "diffd_{name}_sum {}", h.sum);
            let _ = writeln!(out, "diffd_{name}_count {}", h.count);
        }
        out
    }

    /// Flat JSON exposition (`name: number` pairs plus one object per
    /// histogram, no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        for (name, v) in self.counters() {
            let _ = writeln!(out, "  \"{name}\": {v},");
        }
        let _ = writeln!(
            out,
            "  \"connections_open\": {},",
            self.connections_open.get()
        );
        let histograms = self.histograms();
        for (hi, (name, h)) in histograms.iter().enumerate() {
            let _ = write!(
                out,
                "  \"{name}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.sum
            );
            // Trailing zero buckets are trimmed, matching the pipeline's
            // JSON exposition.
            let last = h.buckets.iter().rposition(|n| *n > 0).map_or(0, |i| i + 1);
            for (i, n) in h.buckets[..last].iter().enumerate() {
                let _ = write!(out, "{}{n}", if i == 0 { "" } else { ", " });
            }
            let _ = writeln!(
                out,
                "]}}{}",
                if hi + 1 == histograms.len() { "" } else { "," }
            );
        }
        out.push_str("}\n");
        out
    }

    /// The request ledger's right-hand side: every typed response class.
    /// Equals [`Self::requests`] on a drained server.
    #[must_use]
    pub fn responses_total(&self) -> u64 {
        self.responses_ok.get()
            + self.sheds.get()
            + self.deadline_hits.get()
            + self.mismatches.get()
            + self.row_failures.get()
            + self.internal_errors.get()
            + self.shutdown_rejects.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expositions_are_well_formed() {
        let m = ServerMetrics::default();
        m.requests.add(3);
        m.responses_ok.add(2);
        m.sheds.inc();
        m.connections_open.set(1);
        m.queue_wait_ns.record(1_500);
        m.queue_wait_ns.record(0);
        m.compute_ns.record(2_000_000);
        let prom = m.to_prometheus();
        assert!(prom.contains("diffd_requests_total 3"));
        assert!(prom.contains("diffd_sheds_total 1"));
        assert!(prom.contains("diffd_connections_open 1"));
        assert!(prom.contains("# TYPE diffd_queue_wait_ns histogram"));
        assert!(prom.contains("diffd_queue_wait_ns_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("diffd_queue_wait_ns_sum 1500"));
        assert!(prom.contains("diffd_compute_ns_count 1"));
        let json = m.to_json();
        assert!(json.contains("\"responses_ok\": 2"));
        assert!(json.contains("\"queue_wait_ns\": {\"count\": 2, \"sum\": 1500"));
        assert!(json.contains("\"compute_ns\": {\"count\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n}"));
        assert_eq!(m.responses_total(), 3);
    }
}
