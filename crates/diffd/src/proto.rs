//! The `diffd` wire protocol: length-prefixed frames carrying RLE images.
//!
//! The paper's compressed representation survives from client to kernel —
//! image payloads are exactly the `rle::serialize` container (`RLI1`), so
//! the server never densifies at the boundary. Framing is deliberately
//! minimal and hostile-input-first:
//!
//! ```text
//! frame   := magic "DFD1" | kind:u8 | len:u32le | payload[len]
//! ```
//!
//! Hardening rules, mirroring `rle::serialize`'s plausibility caps:
//!
//! * The header is fixed-size ([`FRAME_HEADER_LEN`]) and validated —
//!   magic, known kind, `len <= max_frame_len` — **before** any payload
//!   byte is read or any buffer sized from `len` is allocated.
//! * Payload buffers start at most [`PREALLOC_CAP`] bytes and grow with
//!   *received* bytes, so an attacker's claimed length can never reserve
//!   memory it did not pay for on the wire.
//! * Image payloads go through [`rle::serialize::decode_image`], which
//!   applies its own pre-allocation plausibility caps per row.
//!
//! Every malformed input maps to a typed [`ProtoError`]; nothing in this
//! module panics on wire data.

use std::io::Read;

use rle::serialize::{self, DecodeError};
use rle::RleImage;

/// Frame magic: protocol "DFD", version 1.
pub const FRAME_MAGIC: [u8; 4] = *b"DFD1";

/// Fixed frame header size: 4-byte magic, 1-byte kind, 4-byte payload
/// length (little endian).
pub const FRAME_HEADER_LEN: usize = 9;

/// Default ceiling on a frame's declared payload length. Large enough for
/// a pair of pathological megapixel RLE images, small enough that one
/// connection cannot claim unbounded memory.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Largest buffer capacity ever reserved from a *claimed* (unreceived)
/// length. Everything beyond this is allocated only as bytes arrive.
pub const PREALLOC_CAP: usize = 64 * 1024;

/// Frame discriminants. Requests live below `0x80`, responses above.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: diff two images (payload: [`DiffRequest`]).
    Diff = 0x01,
    /// Client → server: liveness probe (empty payload).
    Ping = 0x02,
    /// Client → server: fetch the Prometheus exposition (empty payload).
    Metrics = 0x03,
    /// Server → client: successful diff (payload: [`DiffReply`]).
    DiffOk = 0x81,
    /// Server → client: typed failure (payload: [`ErrorReply`]).
    Error = 0x82,
    /// Server → client: answer to [`FrameKind::Ping`] (empty payload).
    Pong = 0x83,
    /// Server → client: Prometheus text (payload: UTF-8).
    MetricsText = 0x84,
}

impl FrameKind {
    /// Decodes a kind byte; unknown values are a protocol error, never a
    /// panic.
    pub fn from_u8(v: u8) -> Result<Self, ProtoError> {
        Ok(match v {
            0x01 => Self::Diff,
            0x02 => Self::Ping,
            0x03 => Self::Metrics,
            0x81 => Self::DiffOk,
            0x82 => Self::Error,
            0x83 => Self::Pong,
            0x84 => Self::MetricsText,
            other => return Err(ProtoError::UnknownKind(other)),
        })
    }

    /// True for the kinds a *client* may send.
    #[must_use]
    pub fn is_request(self) -> bool {
        (self as u8) < 0x80
    }
}

/// Failure classes a [`FrameKind::Error`] reply carries. The code is the
/// contract; the message is advisory detail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request violated the wire protocol; the server closes the
    /// connection after sending this.
    Protocol = 1,
    /// Admission control shed the request (or connection) under load.
    /// Retry later, ideally with backoff.
    Overloaded = 2,
    /// The request's deadline expired before the batch finished; its rows
    /// were abandoned behind the pipeline's ticket watermark.
    DeadlineExceeded = 3,
    /// A row exhausted its retry budget (`SystolicError::RowFailed`).
    RowFailed = 4,
    /// The two images have different widths or heights.
    Mismatch = 5,
    /// Any other server-side failure.
    Internal = 6,
    /// The server is draining for shutdown and admits no new requests.
    ShuttingDown = 7,
}

impl ErrorCode {
    /// Decodes a code byte.
    pub fn from_u8(v: u8) -> Result<Self, ProtoError> {
        Ok(match v {
            1 => Self::Protocol,
            2 => Self::Overloaded,
            3 => Self::DeadlineExceeded,
            4 => Self::RowFailed,
            5 => Self::Mismatch,
            6 => Self::Internal,
            7 => Self::ShuttingDown,
            other => return Err(ProtoError::UnknownErrorCode(other)),
        })
    }
}

/// Every way wire input can be rejected. All variants are produced by
/// validation — adversarial bytes can reach any of them but none panics.
#[derive(Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The first four bytes were not [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// The kind byte is not a known [`FrameKind`].
    UnknownKind(u8),
    /// Declared payload length exceeds the negotiated ceiling. Raised
    /// before any allocation or payload read.
    FrameTooLarge {
        /// Length the header claimed.
        declared: u32,
        /// Ceiling the receiver enforces.
        max: u32,
    },
    /// The stream ended (or the slice ran out) before the declared bytes
    /// arrived.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// A structurally invalid payload (bad internal lengths or layout).
    Malformed(&'static str),
    /// The embedded RLE image failed `rle::serialize`'s hardened decoder.
    Image(DecodeError),
    /// An error reply carried an unknown code byte.
    UnknownErrorCode(u8),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            Self::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            Self::FrameTooLarge { declared, max } => {
                write!(f, "declared payload of {declared} bytes exceeds cap {max}")
            }
            Self::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            Self::Malformed(what) => write!(f, "malformed payload: {what}"),
            Self::Image(e) => write!(f, "embedded image rejected: {e}"),
            Self::UnknownErrorCode(c) => write!(f, "unknown error code {c}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<DecodeError> for ProtoError {
    fn from(e: DecodeError) -> Self {
        Self::Image(e)
    }
}

/// A `Diff` request: a caller-chosen correlation id, a deadline, and the
/// two images still in their wire encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRequest {
    /// Echoed verbatim in the response so clients can pipeline requests.
    pub request_id: u64,
    /// Wall-clock budget in milliseconds; `0` asks for the server default.
    /// The server clamps it to its configured maximum.
    pub deadline_ms: u32,
    /// First operand.
    pub a: RleImage,
    /// Second operand.
    pub b: RleImage,
}

/// A successful diff: the request id it answers, the pipeline ticket range
/// `[ticket_lo, ticket_hi)` the batch occupied (one ticket per row — the
/// connection-to-pipeline mapping made visible), and the diff image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffReply {
    /// The [`DiffRequest::request_id`] this answers.
    pub request_id: u64,
    /// First pipeline ticket of the batch.
    pub ticket_lo: u64,
    /// One past the last pipeline ticket of the batch.
    pub ticket_hi: u64,
    /// Nanoseconds this request's job waited between submission and its
    /// first chunk checkout — executor queueing, not compute. Per-request,
    /// so load tools can split their latency percentiles without scraping
    /// the server-wide histograms.
    pub queue_wait_ns: u64,
    /// Nanoseconds from admission to completion minus the queue wait: the
    /// time the request spent actually being diffed (plus result
    /// collection).
    pub compute_ns: u64,
    /// The XOR difference image, RLE-encoded.
    pub image: RleImage,
}

/// A typed failure reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// The request id this answers (`0` when no request was parsed, e.g. a
    /// protocol error mid-header).
    pub request_id: u64,
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

fn u32le(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))
}

fn u64le(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

fn need(data: &[u8], n: usize) -> Result<(), ProtoError> {
    if data.len() < n {
        return Err(ProtoError::Truncated {
            needed: n,
            have: data.len(),
        });
    }
    Ok(())
}

/// Assembles a full frame (header + payload).
///
/// # Panics
///
/// Panics if `payload` exceeds `u32::MAX` bytes — a programming error on
/// the sending side, unreachable from wire input.
#[must_use]
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("payload fits a u32 length prefix");
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(kind as u8);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a frame header. Called on exactly [`FRAME_HEADER_LEN`] bytes;
/// returns the kind and the declared payload length.
pub fn decode_header(header: &[u8], max_frame_len: u32) -> Result<(FrameKind, u32), ProtoError> {
    need(header, FRAME_HEADER_LEN)?;
    if header[..4] != FRAME_MAGIC {
        return Err(ProtoError::BadMagic(
            header[..4].try_into().expect("4 bytes"),
        ));
    }
    let kind = FrameKind::from_u8(header[4])?;
    let len = u32le(&header[5..9]);
    if len > max_frame_len {
        return Err(ProtoError::FrameTooLarge {
            declared: len,
            max: max_frame_len,
        });
    }
    Ok((kind, len))
}

/// Encodes a [`DiffRequest`] payload:
/// `request_id:u64le | deadline_ms:u32le | a_len:u32le | a | b`.
#[must_use]
pub fn encode_diff_request(req: &DiffRequest) -> Vec<u8> {
    let a = serialize::encode_image(&req.a);
    let b = serialize::encode_image(&req.b);
    let mut out = Vec::with_capacity(16 + a.len() + b.len());
    out.extend_from_slice(&req.request_id.to_le_bytes());
    out.extend_from_slice(&req.deadline_ms.to_le_bytes());
    let a_len = u32::try_from(a.len()).expect("image encoding fits a u32");
    out.extend_from_slice(&a_len.to_le_bytes());
    out.extend_from_slice(&a);
    out.extend_from_slice(&b);
    out
}

/// Decodes a [`DiffRequest`] payload, enforcing the internal length split
/// before touching image bytes. The embedded images inherit every
/// plausibility cap of `rle::serialize::decode_image`.
pub fn decode_diff_request(payload: &[u8]) -> Result<DiffRequest, ProtoError> {
    need(payload, 16)?;
    let request_id = u64le(&payload[0..8]);
    let deadline_ms = u32le(&payload[8..12]);
    let a_len = u32le(&payload[12..16]) as usize;
    let rest = &payload[16..];
    if a_len > rest.len() {
        return Err(ProtoError::Truncated {
            needed: 16 + a_len,
            have: payload.len(),
        });
    }
    let a = serialize::decode_image(&rest[..a_len])?;
    let b = serialize::decode_image(&rest[a_len..])?;
    Ok(DiffRequest {
        request_id,
        deadline_ms,
        a,
        b,
    })
}

/// Encodes a [`DiffReply`] payload:
/// `request_id:u64le | ticket_lo:u64le | ticket_hi:u64le |
/// queue_wait_ns:u64le | compute_ns:u64le | image`.
#[must_use]
pub fn encode_diff_reply(reply: &DiffReply) -> Vec<u8> {
    let img = serialize::encode_image(&reply.image);
    let mut out = Vec::with_capacity(40 + img.len());
    out.extend_from_slice(&reply.request_id.to_le_bytes());
    out.extend_from_slice(&reply.ticket_lo.to_le_bytes());
    out.extend_from_slice(&reply.ticket_hi.to_le_bytes());
    out.extend_from_slice(&reply.queue_wait_ns.to_le_bytes());
    out.extend_from_slice(&reply.compute_ns.to_le_bytes());
    out.extend_from_slice(&img);
    out
}

/// Decodes a [`DiffReply`] payload.
pub fn decode_diff_reply(payload: &[u8]) -> Result<DiffReply, ProtoError> {
    need(payload, 40)?;
    Ok(DiffReply {
        request_id: u64le(&payload[0..8]),
        ticket_lo: u64le(&payload[8..16]),
        ticket_hi: u64le(&payload[16..24]),
        queue_wait_ns: u64le(&payload[24..32]),
        compute_ns: u64le(&payload[32..40]),
        image: serialize::decode_image(&payload[40..])?,
    })
}

/// Encodes an [`ErrorReply`] payload: `request_id:u64le | code:u8 | msg`.
#[must_use]
pub fn encode_error_reply(reply: &ErrorReply) -> Vec<u8> {
    let msg = reply.message.as_bytes();
    let mut out = Vec::with_capacity(9 + msg.len());
    out.extend_from_slice(&reply.request_id.to_le_bytes());
    out.push(reply.code as u8);
    out.extend_from_slice(msg);
    out
}

/// Decodes an [`ErrorReply`] payload. The message is decoded lossily so a
/// mangled reply still surfaces its code.
pub fn decode_error_reply(payload: &[u8]) -> Result<ErrorReply, ProtoError> {
    need(payload, 9)?;
    Ok(ErrorReply {
        request_id: u64le(&payload[0..8]),
        code: ErrorCode::from_u8(payload[8])?,
        message: String::from_utf8_lossy(&payload[9..]).into_owned(),
    })
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean EOF *at a frame boundary* (the peer hung
/// up between frames); EOF anywhere inside a frame is
/// [`ProtoError::Truncated`]. The payload buffer's initial capacity is
/// capped at [`PREALLOC_CAP`] and grows only as bytes actually arrive.
pub fn read_frame(
    stream: &mut impl Read,
    max_frame_len: u32,
) -> Result<Option<(FrameKind, Vec<u8>)>, FrameReadError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < header.len() {
        let n = stream
            .read(&mut header[got..])
            .map_err(FrameReadError::Io)?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(FrameReadError::Proto(ProtoError::Truncated {
                needed: FRAME_HEADER_LEN,
                have: got,
            }));
        }
        got += n;
    }
    let (kind, len) = decode_header(&header, max_frame_len).map_err(FrameReadError::Proto)?;
    let payload = read_payload(stream, len)?;
    Ok(Some((kind, payload)))
}

/// Reads a declared-length payload with capped pre-allocation (see
/// [`PREALLOC_CAP`]).
pub(crate) fn read_payload(stream: &mut impl Read, len: u32) -> Result<Vec<u8>, FrameReadError> {
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(PREALLOC_CAP));
    let read = stream
        .take(len as u64)
        .read_to_end(&mut payload)
        .map_err(FrameReadError::Io)?;
    if read < len {
        return Err(FrameReadError::Proto(ProtoError::Truncated {
            needed: len,
            have: read,
        }));
    }
    Ok(payload)
}

/// I/O-or-protocol failure while reading a frame.
#[derive(Debug)]
pub enum FrameReadError {
    /// Transport failure.
    Io(std::io::Error),
    /// Wire-format violation.
    Proto(ProtoError),
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error reading frame: {e}"),
            Self::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for FrameReadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rle::RleRow;

    fn image() -> RleImage {
        let rows = vec![
            RleRow::from_pairs(24, &[(0, 3), (10, 5)]).unwrap(),
            RleRow::from_pairs(24, &[(4, 4)]).unwrap(),
        ];
        RleImage::from_rows(24, rows).unwrap()
    }

    #[test]
    fn diff_request_round_trips() {
        let req = DiffRequest {
            request_id: 7,
            deadline_ms: 1500,
            a: image(),
            b: image(),
        };
        let payload = encode_diff_request(&req);
        assert_eq!(decode_diff_request(&payload).unwrap(), req);
    }

    #[test]
    fn diff_reply_and_error_round_trip() {
        let reply = DiffReply {
            request_id: 9,
            ticket_lo: 40,
            ticket_hi: 42,
            queue_wait_ns: 12_345,
            compute_ns: 678_900,
            image: image(),
        };
        let payload = encode_diff_reply(&reply);
        assert_eq!(decode_diff_reply(&payload).unwrap(), reply);

        let err = ErrorReply {
            request_id: 9,
            code: ErrorCode::Overloaded,
            message: "busy".into(),
        };
        assert_eq!(decode_error_reply(&encode_error_reply(&err)).unwrap(), err);
    }

    #[test]
    fn frame_round_trips_through_a_stream() {
        let bytes = encode_frame(FrameKind::Ping, &[]);
        let mut cur = std::io::Cursor::new(bytes);
        let (kind, payload) = read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        assert_eq!(kind, FrameKind::Ping);
        assert!(payload.is_empty());
        // Clean EOF at the boundary.
        assert!(read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversize_claim_is_rejected_before_any_payload_read() {
        let mut header = Vec::new();
        header.extend_from_slice(&FRAME_MAGIC);
        header.push(FrameKind::Diff as u8);
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_header(&header, DEFAULT_MAX_FRAME_LEN).unwrap_err();
        assert_eq!(
            err,
            ProtoError::FrameTooLarge {
                declared: u32::MAX,
                max: DEFAULT_MAX_FRAME_LEN
            }
        );
    }
}
