//! A small blocking client for the `diffd` protocol — used by the CLI's
//! `diff-client` load generator, the loopback test suites and the bench
//! harness. One connection, sequential request/response.

use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use rle::RleImage;

use crate::proto::{
    self, encode_frame, DiffReply, DiffRequest, ErrorCode, FrameKind, FrameReadError, ProtoError,
    DEFAULT_MAX_FRAME_LEN,
};

/// Everything a request can come back as, typed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes the server closing mid-response).
    Io(std::io::Error),
    /// The server's bytes violated the protocol.
    Proto(ProtoError),
    /// The server answered with a typed error frame.
    Server {
        /// Failure class.
        code: ErrorCode,
        /// Advisory detail.
        message: String,
    },
    /// The connection closed before a response arrived.
    Closed,
    /// A well-formed frame of the wrong kind (or wrong request id).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Proto(e) => write!(f, "protocol error: {e}"),
            Self::Server { code, message } => write!(f, "server error ({code:?}): {message}"),
            Self::Closed => write!(f, "connection closed before a response arrived"),
            Self::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Io(e) => Self::Io(e),
            FrameReadError::Proto(e) => Self::Proto(e),
        }
    }
}

/// A blocking `diffd` connection.
pub struct DiffClient {
    stream: TcpStream,
    max_frame_len: u32,
    next_request_id: u64,
}

impl DiffClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            next_request_id: 1,
        })
    }

    /// Connects with a connect timeout (a resolved address is required).
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            next_request_id: 1,
        })
    }

    /// Caps how long any single read may block (useful in tests so a
    /// misbehaving server cannot wedge the harness).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> Result<(), ClientError> {
        let frame = encode_frame(kind, payload);
        self.stream.write_all(&frame).map_err(ClientError::Io)?;
        self.stream.flush().map_err(ClientError::Io)
    }

    fn recv(&mut self) -> Result<(FrameKind, Vec<u8>), ClientError> {
        match proto::read_frame(&mut self.stream, self.max_frame_len)? {
            Some(frame) => Ok(frame),
            None => Err(ClientError::Closed),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(FrameKind::Ping, &[])?;
        match self.recv()? {
            (FrameKind::Pong, _) => Ok(()),
            (FrameKind::Error, payload) => Err(server_error(&payload)),
            _ => Err(ClientError::Unexpected("wanted Pong")),
        }
    }

    /// Fetches the server's Prometheus exposition over the binary
    /// protocol.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(FrameKind::Metrics, &[])?;
        match self.recv()? {
            (FrameKind::MetricsText, payload) => Ok(String::from_utf8_lossy(&payload).into_owned()),
            (FrameKind::Error, payload) => Err(server_error(&payload)),
            _ => Err(ClientError::Unexpected("wanted MetricsText")),
        }
    }

    /// Diffs two images on the server. `deadline_ms == 0` requests the
    /// server's default budget. Returns the full reply (ticket range
    /// included) on success.
    pub fn diff(
        &mut self,
        a: &RleImage,
        b: &RleImage,
        deadline_ms: u32,
    ) -> Result<DiffReply, ClientError> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let req = DiffRequest {
            request_id,
            deadline_ms,
            a: a.clone(),
            b: b.clone(),
        };
        self.send(FrameKind::Diff, &proto::encode_diff_request(&req))?;
        match self.recv()? {
            (FrameKind::DiffOk, payload) => {
                let reply = proto::decode_diff_reply(&payload).map_err(ClientError::Proto)?;
                if reply.request_id != request_id {
                    return Err(ClientError::Unexpected("response for a different request"));
                }
                Ok(reply)
            }
            (FrameKind::Error, payload) => Err(server_error(&payload)),
            _ => Err(ClientError::Unexpected("wanted DiffOk or Error")),
        }
    }
}

fn server_error(payload: &[u8]) -> ClientError {
    match proto::decode_error_reply(payload) {
        Ok(reply) => ClientError::Server {
            code: reply.code,
            message: reply.message,
        },
        Err(e) => ClientError::Proto(e),
    }
}
