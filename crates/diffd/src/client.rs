//! A small blocking client for the `diffd` protocol — used by the CLI's
//! `diff-client` load generator, the loopback test suites and the bench
//! harness. One connection, sequential request/response.

use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use rle::RleImage;

use crate::proto::{
    self, encode_frame, DiffReply, DiffRequest, ErrorCode, FrameKind, FrameReadError, ProtoError,
    DEFAULT_MAX_FRAME_LEN,
};

/// Everything a request can come back as, typed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes the server closing mid-response).
    Io(std::io::Error),
    /// The server's bytes violated the protocol.
    Proto(ProtoError),
    /// The server answered with a typed error frame.
    Server {
        /// Failure class.
        code: ErrorCode,
        /// Advisory detail.
        message: String,
    },
    /// The connection closed before a response arrived.
    Closed,
    /// A well-formed frame of the wrong kind (or wrong request id).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Proto(e) => write!(f, "protocol error: {e}"),
            Self::Server { code, message } => write!(f, "server error ({code:?}): {message}"),
            Self::Closed => write!(f, "connection closed before a response arrived"),
            Self::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Io(e) => Self::Io(e),
            FrameReadError::Proto(e) => Self::Proto(e),
        }
    }
}

/// Retry policy for requests the server sheds with
/// [`ErrorCode::Overloaded`]: capped exponential backoff with
/// deterministic jitter.
///
/// Only `Overloaded` is retried — it is the one response that promises
/// the request was rejected *before* any work started, so a replay is
/// safe and the condition is transient by construction (admission
/// pressure). Deadline misses, mismatches and transport failures
/// propagate immediately.
///
/// The jitter is a pure function of `(jitter_seed, attempt)`, not of
/// wall-clock or process state: two runs with the same seed back off on
/// the identical schedule, which keeps load tests reproducible, while
/// different seeds (one per client) decorrelate the herd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 disables retrying).
    pub retries: u32,
    /// Backoff before the first retry; doubles each further attempt.
    pub base_backoff: Duration,
    /// Ceiling the doubling clamps to.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Retrying is opt-in: the default absorbs nothing (`retries: 0`)
    /// but carries sane backoff shape for callers who only bump the
    /// count.
    fn default() -> Self {
        Self {
            retries: 0,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based): `base · 2^attempt`,
    /// clamped to `max_backoff`, then jittered into the upper half of that
    /// window (`[½·d, d]`) so synchronized clients spread out without any
    /// of them waiting longer than the cap.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doubled = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        let mixed = splitmix64(self.jitter_seed ^ (u64::from(attempt) << 32));
        let fraction = 0.5 + (mixed >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        doubled.mul_f64(fraction)
    }
}

/// SplitMix64: the standard 64-bit finalizer, here as the jitter stream.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A blocking `diffd` connection.
pub struct DiffClient {
    stream: TcpStream,
    max_frame_len: u32,
    next_request_id: u64,
}

impl DiffClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            next_request_id: 1,
        })
    }

    /// Connects with a connect timeout (a resolved address is required).
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            next_request_id: 1,
        })
    }

    /// Caps how long any single read may block (useful in tests so a
    /// misbehaving server cannot wedge the harness).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> Result<(), ClientError> {
        let frame = encode_frame(kind, payload);
        self.stream.write_all(&frame).map_err(ClientError::Io)?;
        self.stream.flush().map_err(ClientError::Io)
    }

    fn recv(&mut self) -> Result<(FrameKind, Vec<u8>), ClientError> {
        match proto::read_frame(&mut self.stream, self.max_frame_len)? {
            Some(frame) => Ok(frame),
            None => Err(ClientError::Closed),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(FrameKind::Ping, &[])?;
        match self.recv()? {
            (FrameKind::Pong, _) => Ok(()),
            (FrameKind::Error, payload) => Err(server_error(&payload)),
            _ => Err(ClientError::Unexpected("wanted Pong")),
        }
    }

    /// Fetches the server's Prometheus exposition over the binary
    /// protocol.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(FrameKind::Metrics, &[])?;
        match self.recv()? {
            (FrameKind::MetricsText, payload) => Ok(String::from_utf8_lossy(&payload).into_owned()),
            (FrameKind::Error, payload) => Err(server_error(&payload)),
            _ => Err(ClientError::Unexpected("wanted MetricsText")),
        }
    }

    /// Diffs two images on the server. `deadline_ms == 0` requests the
    /// server's default budget. Returns the full reply (ticket range
    /// included) on success.
    pub fn diff(
        &mut self,
        a: &RleImage,
        b: &RleImage,
        deadline_ms: u32,
    ) -> Result<DiffReply, ClientError> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let req = DiffRequest {
            request_id,
            deadline_ms,
            a: a.clone(),
            b: b.clone(),
        };
        self.send(FrameKind::Diff, &proto::encode_diff_request(&req))?;
        match self.recv()? {
            (FrameKind::DiffOk, payload) => {
                let reply = proto::decode_diff_reply(&payload).map_err(ClientError::Proto)?;
                if reply.request_id != request_id {
                    return Err(ClientError::Unexpected("response for a different request"));
                }
                Ok(reply)
            }
            (FrameKind::Error, payload) => Err(server_error(&payload)),
            _ => Err(ClientError::Unexpected("wanted DiffOk or Error")),
        }
    }

    /// Like [`diff`](Self::diff), but absorbs `Overloaded` sheds under
    /// `policy`, sleeping the jittered backoff between attempts. Returns
    /// the reply plus how many sheds were absorbed on the way (0 = the
    /// first attempt went through). Exhausting the budget surfaces the
    /// final `Overloaded` error; every other failure propagates
    /// unretried.
    pub fn diff_with_retry(
        &mut self,
        a: &RleImage,
        b: &RleImage,
        deadline_ms: u32,
        policy: &RetryPolicy,
    ) -> Result<(DiffReply, u32), ClientError> {
        let mut sheds = 0u32;
        loop {
            match self.diff(a, b, deadline_ms) {
                Ok(reply) => return Ok((reply, sheds)),
                Err(ClientError::Server {
                    code: ErrorCode::Overloaded,
                    message,
                }) => {
                    if sheds >= policy.retries {
                        return Err(ClientError::Server {
                            code: ErrorCode::Overloaded,
                            message,
                        });
                    }
                    std::thread::sleep(policy.backoff(sheds));
                    sheds += 1;
                }
                Err(other) => return Err(other),
            }
        }
    }
}

fn server_error(payload: &[u8]) -> ClientError {
    match proto::decode_error_reply(payload) {
        Ok(reply) => ClientError::Server {
            code: reply.code,
            message: reply.message,
        },
        Err(e) => ClientError::Proto(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_stays_in_the_jitter_window() {
        let policy = RetryPolicy {
            retries: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(160),
            jitter_seed: 7,
        };
        for attempt in 0..12 {
            let nominal = Duration::from_millis(10)
                .saturating_mul(1u32 << attempt.min(16))
                .min(Duration::from_millis(160));
            let d = policy.backoff(attempt);
            assert!(
                d >= nominal / 2 && d <= nominal,
                "attempt {attempt}: {d:?} outside [{:?}, {nominal:?}]",
                nominal / 2
            );
        }
        // The cap holds even at absurd attempt counts (no shift overflow).
        assert!(policy.backoff(u32::MAX) <= Duration::from_millis(160));
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_decorrelated_across_seeds() {
        let a = RetryPolicy {
            jitter_seed: 1,
            retries: 3,
            ..RetryPolicy::default()
        };
        let b = RetryPolicy {
            jitter_seed: 2,
            ..a
        };
        for attempt in 0..8 {
            assert_eq!(
                a.backoff(attempt),
                a.backoff(attempt),
                "same seed, same delay"
            );
        }
        assert!(
            (0..8).any(|i| a.backoff(i) != b.backoff(i)),
            "different seeds must produce different schedules"
        );
    }
}
