//! The `diffd` server binary.
//!
//! ```text
//! diffd [--addr HOST:PORT] [--threads N] [--max-pending-rows N]
//!       [--max-requests N] [--max-connections N] [--deadline-ms N]
//!       [--max-deadline-ms N] [--idle-timeout-ms N] [--frame-timeout-ms N]
//!       [--max-frame-len BYTES]
//! ```
//!
//! Shutdown: the process drains gracefully when stdin reaches EOF or a
//! line reading `shutdown` arrives (portable without signal-handler
//! dependencies — `echo shutdown | diffd`, or close the pipe). SIGINT /
//! SIGTERM keep their default process-killing behaviour.

use std::io::BufRead;
use std::time::Duration;

use diffd::{DiffServer, DiffServerConfig};

const USAGE: &str = "\
diffd - network front end for the compressed-domain diff pipeline

USAGE:
    diffd [OPTIONS]

OPTIONS:
    --addr HOST:PORT        listen address (default 127.0.0.1:7177)
    --threads N             pipeline worker threads (default: cores)
    --max-pending-rows N    admission ceiling on pipeline rows (default 65536)
    --max-requests N        concurrent admitted requests (default 64)
    --max-connections N     concurrent sessions (default 256)
    --deadline-ms N         default per-request budget (default 10000)
    --max-deadline-ms N     clamp on client-requested budgets (default 60000)
    --idle-timeout-ms N     close sessions idle this long (default 60000)
    --frame-timeout-ms N    a started frame must finish in this (default 10000)
    --max-frame-len BYTES   frame payload cap (default 16777216)
    --help                  print this help

SHUTDOWN:
    send a line reading 'shutdown' on stdin, or close stdin; the server
    stops accepting, flushes in-flight requests, then exits.
";

fn parse(args: &[String]) -> Result<(String, DiffServerConfig), String> {
    let mut addr = String::from("127.0.0.1:7177");
    let mut cfg = DiffServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?.clone(),
            "--threads" => cfg.threads = parse_num(value("--threads")?)?,
            "--max-pending-rows" => cfg.max_pending_rows = parse_num(value("--max-pending-rows")?)?,
            "--max-requests" => {
                cfg.max_concurrent_requests = parse_num(value("--max-requests")?)?;
            }
            "--max-connections" => cfg.max_connections = parse_num(value("--max-connections")?)?,
            "--deadline-ms" => {
                cfg.default_deadline = Duration::from_millis(parse_num(value("--deadline-ms")?)?);
            }
            "--max-deadline-ms" => {
                cfg.max_deadline = Duration::from_millis(parse_num(value("--max-deadline-ms")?)?);
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout = Duration::from_millis(parse_num(value("--idle-timeout-ms")?)?);
            }
            "--frame-timeout-ms" => {
                cfg.frame_timeout = Duration::from_millis(parse_num(value("--frame-timeout-ms")?)?);
            }
            "--max-frame-len" => cfg.max_frame_len = parse_num(value("--max-frame-len")?)?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if cfg.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok((addr, cfg))
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, cfg) = match parse(&args) {
        Ok(parsed) => parsed,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    let server = match DiffServer::bind(&addr, cfg.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "diffd listening on {} ({} pipeline workers, {} max sessions)",
        server.local_addr(),
        cfg.threads,
        cfg.max_connections
    );

    let handle = server.handle();
    let watcher = handle.clone();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(line) if line.trim() == "shutdown" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
        // EOF or the shutdown command: begin the drain.
        watcher.shutdown();
    });

    let report = server.run();
    println!(
        "diffd drained: {} sessions at shutdown, {} drained, {} detached",
        report.sessions_at_shutdown, report.sessions_drained, report.sessions_detached
    );
    let _ = handle;
}
