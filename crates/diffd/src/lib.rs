//! `diffd` — a fault-hardened network front end for the compressed-domain
//! diff pipeline.
//!
//! The paper's systolic XOR operates on run-length-encoded rows; this
//! crate puts that pipeline behind a TCP socket **without decompressing at
//! the boundary**: clients send `rle::serialize` images inside
//! length-prefixed frames, the server diffs them on one shared
//! [`systolic_core::DiffPipeline`], and the difference comes back in the
//! same compressed encoding.
//!
//! The design is failure-first — see [`server`] for the admission-control,
//! deadline, slowloris and drain policies, and [`proto`] for the hardened
//! frame format. Everything is `std` only (`TcpListener` + threads), no
//! external dependencies.
//!
//! # Quick embedding
//!
//! ```no_run
//! use diffd::{DiffClient, DiffServer, DiffServerConfig};
//!
//! let server = DiffServer::bind("127.0.0.1:0", DiffServerConfig::default())?;
//! let addr = server.local_addr();
//! let (handle, join) = server.spawn();
//!
//! let mut client = DiffClient::connect(addr)?;
//! # let (a, b) = (rle::RleImage::new(8, 1), rle::RleImage::new(8, 1));
//! let reply = client.diff(&a, &b, 0).unwrap();
//! assert_eq!(reply.image.height(), a.height());
//!
//! handle.shutdown();
//! join.join().unwrap();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use client::{ClientError, DiffClient, RetryPolicy};
pub use metrics::ServerMetrics;
pub use proto::{DiffReply, DiffRequest, ErrorCode, ErrorReply, FrameKind, ProtoError};
pub use server::{DiffServer, DiffServerConfig, DrainReport, ServerHandle};
