//! Black-box tests of the compiled `rlediff` binary.

use std::path::PathBuf;
use std::process::Command;

fn rlediff(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rlediff"))
        .args(args)
        .output()
        .expect("binary must run")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlediff_bin_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn help_exits_zero() {
    let out = rlediff(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn bad_arguments_exit_nonzero_with_usage() {
    let out = rlediff(&["frobnicate"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_file_exits_one() {
    let out = rlediff(&["info", "/nonexistent/nope.pbm"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn full_workflow_gen_diff_info() {
    let a = tmp("w_a.pbm");
    let b = tmp("w_b.pbm");
    let d = tmp("w_diff.rle");

    let out = rlediff(&["gen", "glyphs", "-o", a.to_str().unwrap(), "--text", "IPPS"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = rlediff(&["gen", "glyphs", "-o", b.to_str().unwrap(), "--text", "IPPC"]);
    assert!(out.status.success());

    let out = rlediff(&[
        "diff",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "-o",
        d.to_str().unwrap(),
        "--algo",
        "systolic",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("px differ"), "{text}");
    assert!(text.contains("systolic"), "{text}");

    let out = rlediff(&["info", d.to_str().unwrap()]);
    assert!(out.status.success());
    let info = String::from_utf8_lossy(&out.stdout);
    assert!(info.contains("dimensions"), "{info}");
}

#[test]
fn corrupt_rle_exits_one_without_panic() {
    // An adversarial 13-byte header declaring a gigantic image: the binary
    // must exit 1 quickly with a parse error on stderr — no panic
    // backtrace, no multi-gigabyte allocation.
    let evil = tmp("evil.rle");
    let mut bytes = b"RLI1".to_vec();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0x7F]);
    std::fs::write(&evil, &bytes).unwrap();

    for cmd in ["info", "decode"] {
        let out = tmp("evil_out.pbm");
        let args: Vec<&str> = match cmd {
            "decode" => vec![cmd, evil.to_str().unwrap(), "-o", out.to_str().unwrap()],
            _ => vec![cmd, evil.to_str().unwrap()],
        };
        let out = rlediff(&args);
        assert_eq!(out.status.code(), Some(1), "{cmd} must exit 1");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("parse error"), "{cmd}: {stderr}");
        assert!(!stderr.contains("panicked"), "{cmd}: {stderr}");
    }

    // Truncated and bit-flipped streams get the same treatment.
    let garbage = tmp("garbage.rle");
    std::fs::write(&garbage, b"RLR1\x10\x00").unwrap();
    let out = rlediff(&["info", garbage.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));
}

#[test]
fn diff_image_timeout_flag_round_trips() {
    let a = tmp("t_a.pbm");
    let b = tmp("t_b.pbm");
    rlediff(&["gen", "glyphs", "-o", a.to_str().unwrap(), "--text", "AB"]);
    rlediff(&["gen", "glyphs", "-o", b.to_str().unwrap(), "--text", "AC"]);
    // A generous deadline on healthy workers changes nothing.
    let out = rlediff(&[
        "diff-image",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--threads",
        "2",
        "--timeout-ms",
        "60000",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("pipeline:"));
    // A malformed value is a usage error (exit 2).
    let out = rlediff(&[
        "diff-image",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--timeout-ms",
        "never",
    ]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn diff_image_kernel_and_chunk_target_flags() {
    let a = tmp("k_a.pbm");
    let b = tmp("k_b.pbm");
    rlediff(&["gen", "glyphs", "-o", a.to_str().unwrap(), "--text", "XOR"]);
    rlediff(&["gen", "glyphs", "-o", b.to_str().unwrap(), "--text", "XOS"]);

    // Every kernel policy produces the same pixel diff; the stats block
    // reports the per-kernel row counts and avoided allocations.
    let mut diffs = Vec::new();
    for kernel in ["auto", "rle", "packed", "systolic"] {
        let out_path = tmp(&format!("k_d_{kernel}.rle"));
        let out = rlediff(&[
            "diff-image",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
            "--kernel",
            kernel,
            "--chunk-target",
            "64",
        ]);
        assert!(
            out.status.success(),
            "{kernel}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(text.contains("kernels    :"), "{kernel}: {text}");
        assert!(text.contains("row clones avoided"), "{kernel}: {text}");
        let first_line = text.lines().next().unwrap_or("").to_string();
        diffs.push((std::fs::read(&out_path).unwrap(), first_line));
    }
    for (bytes, summary) in &diffs[1..] {
        assert_eq!(bytes, &diffs[0].0, "kernels must agree byte-for-byte");
        assert_eq!(summary, &diffs[0].1);
    }

    // An unknown kernel is a usage error (exit 2) that names the options.
    let out = rlediff(&[
        "diff-image",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--kernel",
        "quantum",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("packed"));
    // So is a malformed chunk target.
    let out = rlediff(&[
        "diff-image",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--chunk-target",
        "lots",
    ]);
    assert_eq!(out.status.code(), Some(2));
}

/// Pulls `name value` out of Prometheus text exposition.
fn prom_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing:\n{text}"))
        .parse()
        .unwrap_or_else(|_| panic!("metric {name} is not an integer"))
}

/// Pulls `"key": value` out of the flat JSON exposition.
fn json_value(text: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = text
        .find(&pat)
        .unwrap_or_else(|| panic!("key {key} missing:\n{text}"));
    text[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("key {key} is not an integer"))
}

#[test]
fn diff_image_metrics_out_emits_a_parsable_consistent_snapshot() {
    let a = tmp("m_a.pbm");
    let b = tmp("m_b.pbm");
    rlediff(&["gen", "pcb", "-o", a.to_str().unwrap(), "--seed", "7"]);
    rlediff(&["gen", "pcb", "-o", b.to_str().unwrap(), "--seed", "8"]);
    let prom = tmp("m.prom");
    let json = tmp("m.json");
    let trace = tmp("m.jsonl");

    let out = rlediff(&[
        "diff-image",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--threads",
        "2",
        "--metrics-out",
        prom.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(metrics)"), "{stdout}");
    assert!(stdout.contains("(trace"), "{stdout}");

    // Prometheus text: the ledger identities must reconcile.
    let text = std::fs::read_to_string(&prom).unwrap();
    let rows = prom_value(&text, "diffpipeline_rows_submitted_total");
    assert!(rows > 0, "pcb images are not empty");
    assert_eq!(prom_value(&text, "diffpipeline_rows_completed_total"), rows);
    assert_eq!(prom_value(&text, "diffpipeline_rows_errored_total"), 0);
    assert_eq!(prom_value(&text, "diffpipeline_rows_diffed_total"), rows);
    let by_kernel = prom_value(&text, "diffpipeline_rows_fast_path_total")
        + prom_value(&text, "diffpipeline_rows_rle_kernel_total")
        + prom_value(&text, "diffpipeline_rows_packed_kernel_total")
        + prom_value(&text, "diffpipeline_rows_systolic_kernel_total");
    assert_eq!(by_kernel, rows, "kernel counters partition the rows");
    assert_eq!(prom_value(&text, "diffpipeline_row_latency_ns_count"), rows);
    assert_eq!(prom_value(&text, "diffpipeline_row_runs_count"), rows);
    assert_eq!(prom_value(&text, "diffpipeline_queue_depth"), 0);
    assert_eq!(prom_value(&text, "diffpipeline_in_flight"), 0);
    assert_eq!(
        prom_value(&text, "diffpipeline_chunks_completed_total"),
        prom_value(&text, "diffpipeline_chunks_dispatched_total"),
    );

    // A .json extension switches to the JSON exposition with the same
    // numbers.
    let out = rlediff(&[
        "diff-image",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--threads",
        "2",
        "--metrics-out",
        json.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let jtext = std::fs::read_to_string(&json).unwrap();
    assert!(jtext.trim_start().starts_with('{'), "{jtext}");
    assert_eq!(json_value(&jtext, "rows_submitted"), rows);
    assert_eq!(json_value(&jtext, "rows_completed"), rows);
    assert_eq!(json_value(&jtext, "batches"), 1);

    // The trace is one JSON object per line, with submits and kernels for
    // every row (ring capacity far exceeds this workload).
    let ttext = std::fs::read_to_string(&trace).unwrap();
    let mut submits = 0u64;
    let mut kernels = 0u64;
    for line in ttext.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"event\": \""), "{line}");
        if line.contains("\"event\": \"submit\"") {
            submits += 1;
        }
        if line.contains("\"event\": \"kernel\"") {
            kernels += 1;
        }
    }
    assert_eq!(submits, rows);
    assert_eq!(kernels, rows);
}

/// The robustness contract of `--timeout-ms` end to end: a wedged worker
/// (deterministically injected via `RLEDIFF_FAULT_STALL_MS`) must surface
/// as exit code 1 with the pipeline's deadline message on stderr — no
/// panic, no hang. Requires `--features fault-injection`.
#[cfg(feature = "fault-injection")]
#[test]
fn diff_image_timeout_under_a_stalled_worker_exits_one_with_deadline_message() {
    let a = tmp("s_a.pbm");
    let b = tmp("s_b.pbm");
    rlediff(&[
        "gen",
        "glyphs",
        "-o",
        a.to_str().unwrap(),
        "--text",
        "STALL",
    ]);
    rlediff(&[
        "gen",
        "glyphs",
        "-o",
        b.to_str().unwrap(),
        "--text",
        "STALK",
    ]);

    let out = Command::new(env!("CARGO_BIN_EXE_rlediff"))
        .args([
            "diff-image",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--threads",
            "2",
            "--timeout-ms",
            "50",
        ])
        .env("RLEDIFF_FAULT_STALL_MS", "2000")
        .output()
        .expect("binary must run");
    assert_eq!(out.status.code(), Some(1), "deadline expiry is exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("deadline exceeded"),
        "stderr must carry the DeadlineExceeded message: {stderr}"
    );
    assert!(stderr.contains("pipeline error"), "{stderr}");
    assert!(!stderr.contains("panicked"), "no panic leaks: {stderr}");

    // Same flags without the injected stall: clean success, proving the
    // failure above was the deadline and not the flag plumbing.
    let out = Command::new(env!("CARGO_BIN_EXE_rlediff"))
        .args([
            "diff-image",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--threads",
            "2",
            "--timeout-ms",
            "50",
        ])
        .output()
        .expect("binary must run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn archive_round_trips_frames_bit_identically() {
    let store = tmp("seq.rda");
    let _ = std::fs::remove_file(&store);
    let mut frame_paths = Vec::new();
    for (i, text) in ["AAA", "AAB", "ABB", "BBB"].iter().enumerate() {
        let p = tmp(&format!("seq_f{i}.rle"));
        let out = rlediff(&["gen", "glyphs", "-o", p.to_str().unwrap(), "--text", text]);
        assert!(out.status.success());
        frame_paths.push(p);
    }

    // Append the first two frames in one invocation, the rest in a second
    // — the archive must pick up where it left off.
    let out = rlediff(&[
        "archive",
        "append",
        store.to_str().unwrap(),
        frame_paths[0].to_str().unwrap(),
        frame_paths[1].to_str().unwrap(),
        "--keyframe-every",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("frame 0"), "{text}");
    assert!(text.contains("keyframe"), "{text}");
    let out = rlediff(&[
        "archive",
        "append",
        store.to_str().unwrap(),
        frame_paths[2].to_str().unwrap(),
        frame_paths[3].to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // stat reports the shape.
    let out = rlediff(&["archive", "stat", store.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("frames     : 4 (2 keyframes, every 3)"),
        "{text}"
    );

    // Every extracted frame matches its source byte-for-byte.
    for (i, src) in frame_paths.iter().enumerate() {
        let got = tmp(&format!("seq_x{i}.rle"));
        let out = rlediff(&[
            "archive",
            "extract",
            store.to_str().unwrap(),
            &i.to_string(),
            "-o",
            got.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "frame {i}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            std::fs::read(&got).unwrap(),
            std::fs::read(src).unwrap(),
            "frame {i} must be bit-identical"
        );
    }

    // An out-of-range index and a corrupt archive both exit 1 cleanly.
    let out = rlediff(&[
        "archive",
        "extract",
        store.to_str().unwrap(),
        "9",
        "-o",
        tmp("nope.rle").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
    let evil = tmp("evil.rda");
    std::fs::write(&evil, b"RDA1\xFF\xFF").unwrap();
    let out = rlediff(&["archive", "stat", evil.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));
}

/// A load run where the server sheds every request must exit nonzero: a
/// scripted benchmark that silently reports "p50 0.000 ms" over zero
/// successes is worse than one that fails. A zero-admission server makes
/// the total shed deterministic.
#[test]
fn diff_client_exits_one_when_every_request_is_shed() {
    let cfg = diffd::DiffServerConfig {
        max_concurrent_requests: 0,
        ..Default::default()
    };
    let server = diffd::DiffServer::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();
    let (handle, join) = server.spawn();

    let out = rlediff(&[
        "diff-client",
        &addr,
        "--clients",
        "2",
        "--requests",
        "3",
        "--width",
        "64",
        "--height",
        "16",
    ]);
    handle.shutdown();
    let _ = join.join();

    assert_eq!(out.status.code(), Some(1), "all-shed run must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no request succeeded"), "{stderr}");
    assert!(stderr.contains("6 shed"), "{stderr}");
}

#[test]
fn diff_of_identical_inputs_is_empty() {
    let a = tmp("i_a.pbm");
    rlediff(&["gen", "pcb", "-o", a.to_str().unwrap(), "--seed", "3"]);
    let out = rlediff(&["diff", a.to_str().unwrap(), a.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 px differ"));
}
