//! Implementation of the `rlediff` command-line tool.
//!
//! The binary in `main.rs` is a thin wrapper over [`run_command`]; all
//! behaviour lives here so it can be unit-tested without spawning
//! processes.
//!
//! ```text
//! rlediff diff a.pbm b.pbm -o diff.pbm [--algo systolic|sequential|mesh|dense] [--clean N]
//! rlediff encode image.pbm -o image.rle
//! rlediff decode image.rle -o image.pbm
//! rlediff info file.(pbm|rle)
//! rlediff components file.(pbm|rle) [--min-area N]
//! rlediff gen pcb|paper|glyphs -o out.pbm [--seed N] [--text S]
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use bitimg::{convert, pbm};
use rle::{serialize, RleImage};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Which differencing algorithm `diff` uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// The paper's systolic array (simulated).
    Systolic,
    /// The sequential RLE merge (§2 baseline).
    Sequential,
    /// The §6 reconfigurable-mesh-assisted array.
    Mesh,
    /// Dense word-wise XOR (uncompressed baseline).
    Dense,
}

impl Algo {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "systolic" => Ok(Algo::Systolic),
            "sequential" => Ok(Algo::Sequential),
            "mesh" => Ok(Algo::Mesh),
            "dense" => Ok(Algo::Dense),
            other => Err(CliError::Usage(format!("unknown algorithm {other:?}"))),
        }
    }
}

/// A parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Diff two images.
    Diff {
        /// First input path.
        a: PathBuf,
        /// Second input path.
        b: PathBuf,
        /// Output path (PBM or `.rle`); `None` prints stats only.
        out: Option<PathBuf>,
        /// Algorithm selection.
        algo: Algo,
        /// Despeckle radius: drop difference components shorter than this.
        clean: u32,
    },
    /// Diff two images through the persistent worker-pool pipeline.
    DiffImage {
        /// First input path.
        a: PathBuf,
        /// Second input path.
        b: PathBuf,
        /// Output path (PBM or `.rle`); `None` prints stats only.
        out: Option<PathBuf>,
        /// Worker threads in the pool (`0` = all available cores).
        threads: usize,
        /// Despeckle radius: drop difference components shorter than this.
        clean: u32,
        /// Per-row pipeline deadline in milliseconds (`None` = wait
        /// indefinitely); wired to
        /// [`systolic_core::DiffPipelineConfig::row_deadline`].
        timeout_ms: Option<u64>,
        /// Per-row kernel policy; wired to
        /// [`systolic_core::DiffPipelineConfig::kernel`].
        kernel: systolic_core::Kernel,
        /// Scheduling weight per chunk in input runs (`None` = derive from
        /// the batch); wired to
        /// [`systolic_core::DiffPipelineConfig::chunk_target`].
        chunk_target: Option<usize>,
        /// SIMD level for the packed kernel (`None` = env / auto-detect,
        /// clamped to the hardware); wired to
        /// [`systolic_core::DiffPipelineConfig::simd`].
        simd: Option<systolic_core::SimdLevel>,
        /// Write a metrics snapshot here after the batch (`.json` gets the
        /// JSON exposition, anything else Prometheus text). Enables
        /// observation.
        metrics_out: Option<PathBuf>,
        /// Write the structured trace here as JSON lines. Enables
        /// observation.
        trace_out: Option<PathBuf>,
        /// Skip rows whose cached 64-bit signatures match; wired to
        /// [`systolic_core::DiffPipelineConfig::signature_prefilter`].
        sig_prefilter: bool,
        /// Cross-check sampled skips against the reference XOR (implies
        /// `--sig-prefilter`); wired to
        /// [`systolic_core::DiffPipelineConfig::verify_signatures`].
        verify_sigs: bool,
    },
    /// Convert a PBM file to the compact RLE format.
    Encode {
        /// Input PBM path.
        input: PathBuf,
        /// Output `.rle` path.
        out: PathBuf,
    },
    /// Convert a compact RLE file back to PBM.
    Decode {
        /// Input `.rle` path.
        input: PathBuf,
        /// Output PBM path.
        out: PathBuf,
    },
    /// Print information about an image file.
    Info {
        /// Input path (PBM or `.rle`).
        input: PathBuf,
    },
    /// Label the connected components of an image and report them.
    Components {
        /// Input path (PBM or `.rle`).
        input: PathBuf,
        /// Ignore components smaller than this many pixels.
        min_area: u64,
    },
    /// Generate a synthetic workload image.
    Gen {
        /// Workload kind: `pcb`, `paper` or `glyphs`.
        kind: String,
        /// Output path.
        out: PathBuf,
        /// RNG seed.
        seed: u64,
        /// Text for the `glyphs` kind.
        text: String,
    },
    /// Append frames to (or create) a crash-safe archive journal.
    /// Legacy RDA1 blobs are migrated to the RDA2 journal in place
    /// (atomically, via a temp sibling + rename) before the append.
    ArchiveAppend {
        /// Archive path (created if missing).
        archive: PathBuf,
        /// Frame image paths, appended in order.
        frames: Vec<PathBuf>,
        /// Keyframe cadence when creating a new archive.
        keyframe_every: usize,
        /// When the journal fsyncs; wired to
        /// [`archive::ArchiveOptions::fsync`].
        fsync: archive::FsyncPolicy,
    },
    /// Extract one frame of a delta archive.
    ArchiveExtract {
        /// Archive path.
        archive: PathBuf,
        /// Frame index (0-based).
        index: usize,
        /// Output image path.
        out: PathBuf,
    },
    /// Print a delta archive's shape summary.
    ArchiveStat {
        /// Archive path.
        archive: PathBuf,
    },
    /// Check an RDA2 archive journal: structural scan plus a deep
    /// replay-and-verify of every committed frame. Exits non-zero on an
    /// unclean journal unless `--repair` is given.
    ArchiveFsck {
        /// Archive path.
        archive: PathBuf,
        /// Truncate torn tails and cut back past corrupt records so the
        /// journal is consistent again (lost frames are reported).
        repair: bool,
    },
    /// Drive a remote `diffd` server with synthetic load and report
    /// latency percentiles and throughput.
    DiffClient {
        /// Server address (`host:port`).
        addr: String,
        /// Concurrent client connections.
        clients: usize,
        /// Requests per client.
        requests: usize,
        /// Synthetic image width in pixels.
        width: u32,
        /// Synthetic image height in rows.
        height: usize,
        /// Foreground density of the synthetic images.
        density: f64,
        /// RNG seed for the synthetic images.
        seed: u64,
        /// Per-request deadline in milliseconds (`0` = server default).
        deadline_ms: u32,
        /// Retries absorbed per request when the server sheds with
        /// `Overloaded` (`0` = no retrying, the shed counts as a failure).
        retries: u32,
        /// Base backoff between retries in milliseconds (doubles per
        /// attempt, capped at 32× the base, deterministically jittered).
        backoff_ms: u64,
        /// Write the summary as JSON here as well as printing it.
        json_out: Option<PathBuf>,
    },
    /// Show usage.
    Help,
}

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; the string explains.
    Usage(String),
    /// I/O failure.
    Io(std::io::Error),
    /// Input file could not be parsed.
    Parse(String),
    /// The two diff inputs are incompatible.
    Mismatch(String),
    /// The diff pipeline failed (row failure past its retry budget, or a
    /// deadline expiry).
    Pipeline(String),
    /// An archive journal failed its integrity check (`archive fsck`
    /// without `--repair` on an unclean journal).
    Corrupt(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Parse(m) => write!(f, "parse error: {m}"),
            CliError::Mismatch(m) => write!(f, "input mismatch: {m}"),
            CliError::Pipeline(m) => write!(f, "pipeline error: {m}"),
            CliError::Corrupt(m) => write!(f, "archive integrity error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// The usage text.
pub const USAGE: &str = "\
rlediff — binary image differencing in the compressed domain

usage:
  rlediff diff <a> <b> [-o OUT] [--algo systolic|sequential|mesh|dense] [--clean N]
  rlediff diff-image <a> <b> [-o OUT] [--threads N] [--clean N] [--timeout-ms N]
                     [--kernel auto|rle|packed|systolic] [--chunk-target N]
                     [--simd auto|scalar|sse2|avx2] [--sig-prefilter]
                     [--verify-sigs] [--metrics-out PATH] [--trace-out PATH]
  rlediff encode <in.pbm> -o <out.rle>
  rlediff decode <in.rle> -o <out.pbm>
  rlediff info <file>
  rlediff components <file> [--min-area N]
  rlediff gen <pcb|paper|glyphs> -o <out> [--seed N] [--text S]
  rlediff archive append <archive> <frame>... [--keyframe-every N]
                         [--fsync always|every=N|close]
  rlediff archive extract <archive> <index> -o <out>
  rlediff archive stat <archive>
  rlediff archive fsck <archive> [--repair]
  rlediff diff-client <host:port> [--clients N] [--requests N] [--width N]
                      [--height N] [--density F] [--seed N] [--deadline-ms N]
                      [--retries N] [--backoff-ms N] [--json-out PATH]

Inputs and outputs may be PBM (P1/P4, by .pbm extension) or the compact
RLE stream format (any other extension). `diff-client` generates a
synthetic workload and drives a running `diffd` server, reporting p50/p99
latency and throughput; it exits nonzero when no request succeeds.
`archive` manages a versioned delta store: frames are kept as keyframes
plus per-row XOR deltas keyed by row signatures, and any version can be
extracted bit-identically.";

/// Parses an argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut positional: Vec<&str> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut algo = Algo::Systolic;
    let mut clean = 0u32;
    let mut seed = 1u64;
    let mut min_area = 1u64;
    let mut threads = 0usize;
    let mut timeout_ms: Option<u64> = None;
    let mut kernel = systolic_core::Kernel::Auto;
    let mut chunk_target: Option<usize> = None;
    let mut simd: Option<systolic_core::SimdLevel> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut sig_prefilter = false;
    let mut verify_sigs = false;
    let mut text = String::from("RLE SYSTOLIC 1999");
    let mut clients = 1usize;
    let mut requests = 16usize;
    let mut width = 512u32;
    let mut height = 128usize;
    let mut density = 0.3f64;
    let mut deadline_ms = 0u32;
    let mut retries = 0u32;
    let mut backoff_ms = 25u64;
    let mut json_out: Option<PathBuf> = None;
    let mut keyframe_every = archive::DEFAULT_KEYFRAME_INTERVAL;
    let mut fsync = archive::FsyncPolicy::Always;
    let mut repair = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--out" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("-o needs a path".into()))?;
                out = Some(PathBuf::from(v));
            }
            "--algo" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--algo needs a value".into()))?;
                algo = Algo::parse(v)?;
            }
            "--clean" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--clean needs a value".into()))?;
                clean = v
                    .parse()
                    .map_err(|_| CliError::Usage("--clean needs a number".into()))?;
            }
            "--min-area" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--min-area needs a value".into()))?;
                min_area = v
                    .parse()
                    .map_err(|_| CliError::Usage("--min-area needs a number".into()))?;
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--threads needs a value".into()))?;
                threads = v
                    .parse()
                    .map_err(|_| CliError::Usage("--threads needs a number".into()))?;
            }
            "--timeout-ms" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--timeout-ms needs a value".into()))?;
                timeout_ms = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage("--timeout-ms needs a number".into()))?,
                );
            }
            "--kernel" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--kernel needs a value".into()))?;
                kernel = v.parse().map_err(CliError::Usage)?;
            }
            "--chunk-target" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--chunk-target needs a value".into()))?;
                chunk_target = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage("--chunk-target needs a number".into()))?,
                );
            }
            "--simd" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--simd needs a value".into()))?;
                simd = systolic_core::SimdLevel::parse_override(v).map_err(CliError::Usage)?;
            }
            "--sig-prefilter" => sig_prefilter = true,
            "--verify-sigs" => verify_sigs = true,
            "--metrics-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--metrics-out needs a path".into()))?;
                metrics_out = Some(PathBuf::from(v));
            }
            "--trace-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--trace-out needs a path".into()))?;
                trace_out = Some(PathBuf::from(v));
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--seed needs a value".into()))?;
                seed = v
                    .parse()
                    .map_err(|_| CliError::Usage("--seed needs a number".into()))?;
            }
            "--clients" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--clients needs a value".into()))?;
                clients = v
                    .parse()
                    .map_err(|_| CliError::Usage("--clients needs a number".into()))?;
            }
            "--requests" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--requests needs a value".into()))?;
                requests = v
                    .parse()
                    .map_err(|_| CliError::Usage("--requests needs a number".into()))?;
            }
            "--width" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--width needs a value".into()))?;
                width = v
                    .parse()
                    .map_err(|_| CliError::Usage("--width needs a number".into()))?;
            }
            "--height" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--height needs a value".into()))?;
                height = v
                    .parse()
                    .map_err(|_| CliError::Usage("--height needs a number".into()))?;
            }
            "--density" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--density needs a value".into()))?;
                density = v
                    .parse()
                    .map_err(|_| CliError::Usage("--density needs a number".into()))?;
            }
            "--deadline-ms" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--deadline-ms needs a value".into()))?;
                deadline_ms = v
                    .parse()
                    .map_err(|_| CliError::Usage("--deadline-ms needs a number".into()))?;
            }
            "--retries" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--retries needs a value".into()))?;
                retries = v
                    .parse()
                    .map_err(|_| CliError::Usage("--retries needs a number".into()))?;
            }
            "--backoff-ms" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--backoff-ms needs a value".into()))?;
                backoff_ms = v
                    .parse()
                    .map_err(|_| CliError::Usage("--backoff-ms needs a number".into()))?;
                if backoff_ms == 0 {
                    return Err(CliError::Usage("--backoff-ms must be at least 1".into()));
                }
            }
            "--keyframe-every" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--keyframe-every needs a value".into()))?;
                keyframe_every = v
                    .parse()
                    .map_err(|_| CliError::Usage("--keyframe-every needs a number".into()))?;
                if keyframe_every == 0 {
                    return Err(CliError::Usage(
                        "--keyframe-every must be at least 1".into(),
                    ));
                }
            }
            "--json-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--json-out needs a path".into()))?;
                json_out = Some(PathBuf::from(v));
            }
            "--fsync" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--fsync needs a policy".into()))?;
                fsync = match v.as_str() {
                    "always" => archive::FsyncPolicy::Always,
                    "close" => archive::FsyncPolicy::OnClose,
                    other => match other.strip_prefix("every=") {
                        Some(n) => {
                            let n: u64 = n.parse().map_err(|_| {
                                CliError::Usage("--fsync every=N needs a number".into())
                            })?;
                            if n == 0 {
                                return Err(CliError::Usage(
                                    "--fsync every=N must be at least 1".into(),
                                ));
                            }
                            archive::FsyncPolicy::EveryN(n)
                        }
                        None => {
                            return Err(CliError::Usage(format!(
                                "unknown fsync policy {other:?} (want always, every=N or close)"
                            )))
                        }
                    },
                };
            }
            "--repair" => repair = true,
            "--text" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--text needs a value".into()))?;
                text = v.clone();
            }
            "-h" | "--help" => return Ok(Command::Help),
            other => positional.push(other),
        }
    }

    match positional.as_slice() {
        ["diff", a, b] => Ok(Command::Diff {
            a: PathBuf::from(a),
            b: PathBuf::from(b),
            out,
            algo,
            clean,
        }),
        ["diff-image", a, b] => Ok(Command::DiffImage {
            a: PathBuf::from(a),
            b: PathBuf::from(b),
            out,
            threads,
            clean,
            timeout_ms,
            kernel,
            chunk_target,
            simd,
            metrics_out,
            trace_out,
            sig_prefilter,
            verify_sigs,
        }),
        ["encode", input] => Ok(Command::Encode {
            input: PathBuf::from(input),
            out: out.ok_or_else(|| CliError::Usage("encode needs -o".into()))?,
        }),
        ["decode", input] => Ok(Command::Decode {
            input: PathBuf::from(input),
            out: out.ok_or_else(|| CliError::Usage("decode needs -o".into()))?,
        }),
        ["info", input] => Ok(Command::Info {
            input: PathBuf::from(input),
        }),
        ["components", input] => Ok(Command::Components {
            input: PathBuf::from(input),
            min_area,
        }),
        ["gen", kind] => Ok(Command::Gen {
            kind: (*kind).to_string(),
            out: out.ok_or_else(|| CliError::Usage("gen needs -o".into()))?,
            seed,
            text,
        }),
        ["archive", "append", archive_path, frames @ ..] if !frames.is_empty() => {
            Ok(Command::ArchiveAppend {
                archive: PathBuf::from(archive_path),
                frames: frames.iter().map(PathBuf::from).collect(),
                keyframe_every,
                fsync,
            })
        }
        ["archive", "extract", archive_path, index] => Ok(Command::ArchiveExtract {
            archive: PathBuf::from(archive_path),
            index: index
                .parse()
                .map_err(|_| CliError::Usage("archive extract needs a frame index".into()))?,
            out: out.ok_or_else(|| CliError::Usage("archive extract needs -o".into()))?,
        }),
        ["archive", "stat", archive_path] => Ok(Command::ArchiveStat {
            archive: PathBuf::from(archive_path),
        }),
        ["archive", "fsck", archive_path] => Ok(Command::ArchiveFsck {
            archive: PathBuf::from(archive_path),
            repair,
        }),
        ["diff-client", addr] => {
            if clients == 0 || requests == 0 {
                return Err(CliError::Usage(
                    "--clients and --requests must be at least 1".into(),
                ));
            }
            Ok(Command::DiffClient {
                addr: (*addr).to_string(),
                clients,
                requests,
                width,
                height,
                density,
                seed,
                deadline_ms,
                retries,
                backoff_ms,
                json_out,
            })
        }
        [] => Ok(Command::Help),
        other => Err(CliError::Usage(format!(
            "unrecognised arguments: {other:?}"
        ))),
    }
}

fn is_pbm(path: &Path) -> bool {
    path.extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("pbm"))
}

/// Loads an image from PBM or the compact RLE format, by extension.
pub fn load_image(path: &Path) -> Result<RleImage, CliError> {
    let data = fs::read(path)?;
    if is_pbm(path) {
        let bm = pbm::read(&mut &data[..])
            .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))?;
        Ok(convert::encode(&bm))
    } else {
        serialize::decode_image(&data)
            .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))
    }
}

/// Saves an image as PBM (P4) or the compact RLE format, by extension.
pub fn save_image(img: &RleImage, path: &Path) -> Result<(), CliError> {
    if is_pbm(path) {
        let bm = convert::decode(img);
        let mut buf = Vec::new();
        pbm::write_p4(&bm, &mut buf)?;
        fs::write(path, buf)?;
    } else {
        fs::write(path, serialize::encode_image(img))?;
    }
    Ok(())
}

/// Opens (or creates) the RDA2 journal at `path` for appending. A legacy
/// RDA1 blob is migrated first: its frames are imported into a temp
/// sibling journal, synced, and atomically renamed over the original — a
/// crash mid-migration leaves either format fully intact, never a mix.
/// Returns the open journal plus the notes to print (migration, recovery
/// salvage).
fn open_journal(
    path: &Path,
    opts: archive::ArchiveOptions,
) -> Result<(archive::ArchiveFile<fs::File>, String), CliError> {
    let mut notes = String::new();
    let legacy = match fs::read(path) {
        Ok(data) if data.starts_with(archive::LEGACY_MAGIC) => Some(
            archive::DeltaArchive::from_bytes(&data)
                .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))?,
        ),
        Ok(_) => None,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(e.into()),
    };
    if let Some(old) = legacy {
        // Keep the blob's own keyframe cadence; the CLI flag only governs
        // archives created from scratch.
        let migrate_opts = archive::ArchiveOptions {
            keyframe_interval: old.stat().keyframe_interval,
            fsync: opts.fsync,
        };
        let mut tmp = path.to_path_buf().into_os_string();
        tmp.push(".migrate");
        let tmp = PathBuf::from(tmp);
        let _ = fs::remove_file(&tmp);
        let mut journal = archive::ArchiveFile::open(&tmp, migrate_opts)
            .map_err(|e| CliError::Parse(format!("{}: {e}", tmp.display())))?;
        journal
            .import(&old)
            .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))?;
        journal
            .sync()
            .map_err(|e| CliError::Io(std::io::Error::other(e.to_string())))?;
        drop(journal.into_storage());
        fs::rename(&tmp, path)?;
        let _ = writeln!(
            notes,
            "migrated {} RDA1 frame(s) into the RDA2 journal",
            old.len()
        );
    }
    let journal = archive::ArchiveFile::open(path, opts)
        .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))?;
    let rec = journal.recovery();
    if !rec.clean() {
        let _ = writeln!(
            notes,
            "recovered: {} committed frame(s) intact, {} torn byte(s) truncated ({})",
            rec.frames,
            rec.truncated_bytes,
            rec.reason
                .map_or_else(|| "unknown".to_string(), |r| r.to_string()),
        );
    }
    Ok((journal, notes))
}

/// Extracts one frame from either archive format: RDA2 journals are
/// loaded into memory first so a recovery scan never mutates the file on
/// a read path. Returns the frame plus the notes to print.
fn extract_frame(path: &Path, index: usize) -> Result<(RleImage, String), CliError> {
    let data = fs::read(path)?;
    let mut notes = String::new();
    let frame = if data.starts_with(archive::JOURNAL_MAGIC) {
        let mut store = archive::ArchiveFile::open_on(
            archive::MemStorage::from_bytes(data),
            archive::ArchiveOptions::default(),
        )
        .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))?;
        let rec = store.recovery();
        if !rec.clean() {
            let _ = writeln!(
                notes,
                "note: journal tail is torn ({} byte(s) ignored); run `archive fsck`",
                rec.truncated_bytes
            );
        }
        store
            .extract(index)
            .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))?
    } else {
        let store = archive::DeltaArchive::from_bytes(&data)
            .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))?;
        store
            .extract(index)
            .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))?
    };
    Ok((frame, notes))
}

/// Executes a command, returning the text to print.
pub fn run_command(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(format!("{USAGE}\n")),
        Command::Encode { input, out } => {
            let img = load_image(input)?;
            save_image(&img, out)?;
            let rle_len = serialize::encode_image(&img).len();
            let dense = serialize::dense_size_bytes(img.width(), img.height());
            Ok(format!(
                "encoded {} -> {} ({} runs, {} bytes vs {} dense, {:.1}x)\n",
                input.display(),
                out.display(),
                img.total_runs(),
                rle_len,
                dense,
                dense as f64 / rle_len.max(1) as f64
            ))
        }
        Command::Decode { input, out } => {
            let img = load_image(input)?;
            save_image(&img, out)?;
            Ok(format!(
                "decoded {} -> {}\n",
                input.display(),
                out.display()
            ))
        }
        Command::Info { input } => {
            let img = load_image(input)?;
            let rle_len = serialize::encode_image(&img).len();
            let dense = serialize::dense_size_bytes(img.width(), img.height());
            let mut s = String::new();
            let _ = writeln!(s, "{}", input.display());
            let _ = writeln!(s, "  dimensions : {} x {}", img.width(), img.height());
            let _ = writeln!(s, "  runs       : {}", img.total_runs());
            let _ = writeln!(
                s,
                "  foreground : {} px ({:.2}%)",
                img.ones(),
                img.density() * 100.0
            );
            let _ = writeln!(s, "  canonical  : {}", img.is_canonical());
            let _ = writeln!(
                s,
                "  storage    : {} bytes RLE vs {} bytes dense ({:.1}x)",
                rle_len,
                dense,
                dense as f64 / rle_len.max(1) as f64
            );
            Ok(s)
        }
        Command::Components { input, min_area } => {
            use rle_analysis::features::{classify_defect, shape_features};
            let img = load_image(input)?;
            let labeling = rle_analysis::label_components(&img, rle_analysis::Connectivity::Eight);
            let kept = rle_analysis::features::filter_by_area(&labeling, *min_area);
            let mut s = String::new();
            let _ = writeln!(
                s,
                "{}: {} components ({} after --min-area {})",
                input.display(),
                labeling.count(),
                kept.len(),
                min_area
            );
            let mut sorted = kept;
            sorted.sort_by_key(|c| std::cmp::Reverse(c.area));
            for c in sorted.iter().take(20) {
                let f = shape_features(c);
                let _ = writeln!(
                    s,
                    "  #{:<4} {:?} at ({:.0},{:.0})  area {:<6} bbox {}x{}  fill {:.0}%",
                    c.label,
                    classify_defect(c),
                    c.cx,
                    c.cy,
                    c.area,
                    c.bbox_width(),
                    c.bbox_height(),
                    f.fill_ratio * 100.0
                );
            }
            if sorted.len() > 20 {
                let _ = writeln!(s, "  ... and {} more", sorted.len() - 20);
            }
            Ok(s)
        }
        Command::Diff {
            a,
            b,
            out,
            algo,
            clean,
        } => {
            let ia = load_image(a)?;
            let ib = load_image(b)?;
            if ia.width() != ib.width() || ia.height() != ib.height() {
                return Err(CliError::Mismatch(format!(
                    "{}x{} vs {}x{}",
                    ia.width(),
                    ia.height(),
                    ib.width(),
                    ib.height()
                )));
            }
            let (mut diff, detail) = run_diff(&ia, &ib, *algo)?;
            if *clean > 0 {
                for y in 0..diff.height() {
                    let cleaned = rle::morph::remove_small(&diff.rows()[y], *clean);
                    diff.set_row(y, cleaned).expect("widths preserved");
                }
            }
            let mut s = String::new();
            let _ = writeln!(
                s,
                "diff: {} px differ in {} runs",
                diff.ones(),
                diff.total_runs()
            );
            let _ = writeln!(s, "{detail}");
            if let Some(out) = out {
                save_image(&diff, out)?;
                let _ = writeln!(s, "wrote {}", out.display());
            }
            Ok(s)
        }
        Command::DiffImage {
            a,
            b,
            out,
            threads,
            clean,
            timeout_ms,
            kernel,
            chunk_target,
            simd,
            metrics_out,
            trace_out,
            sig_prefilter,
            verify_sigs,
        } => {
            let ia = std::sync::Arc::new(load_image(a)?);
            let ib = std::sync::Arc::new(load_image(b)?);
            let threads = if *threads == 0 {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            } else {
                *threads
            };
            let mut config = systolic_core::DiffPipelineConfig::new(threads).kernel(*kernel);
            if let Some(ms) = timeout_ms {
                config = config.row_deadline(std::time::Duration::from_millis(*ms));
            }
            if let Some(target) = chunk_target {
                config = config.chunk_target(*target);
            }
            if let Some(level) = simd {
                config = config.simd(*level);
            }
            if *sig_prefilter || *verify_sigs {
                config = config.signature_prefilter();
            }
            if *verify_sigs {
                config = config.verify_signatures();
            }
            if metrics_out.is_some() || trace_out.is_some() {
                config = config.observe();
            }
            // Deterministic wedge for black-box deadline drills: with the
            // fault-injection build, RLEDIFF_FAULT_STALL_MS=N stalls the
            // batch's first row for N ms so `--timeout-ms` can trip.
            #[cfg(feature = "fault-injection")]
            if let Some(ms) = std::env::var("RLEDIFF_FAULT_STALL_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                config = config.fault_plan(
                    systolic_core::FaultPlan::new()
                        .stall_on_row(0, std::time::Duration::from_millis(ms)),
                );
            }
            let mut pipeline = config.build();
            let (mut diff, stats) = pipeline.diff_images_shared(&ia, &ib).map_err(|e| match e {
                systolic_core::SystolicError::WidthMismatch { .. }
                | systolic_core::SystolicError::HeightMismatch { .. } => {
                    CliError::Mismatch(e.to_string())
                }
                other => CliError::Pipeline(other.to_string()),
            })?;
            if *clean > 0 {
                for y in 0..diff.height() {
                    let cleaned = rle::morph::remove_small(&diff.rows()[y], *clean);
                    diff.set_row(y, cleaned).expect("widths preserved");
                }
            }
            let mut s = String::new();
            let _ = writeln!(
                s,
                "diff: {} px differ in {} runs",
                diff.ones(),
                diff.total_runs()
            );
            let _ = writeln!(
                s,
                "pipeline: {} rows in {:.3} ms",
                stats.rows,
                stats.wall.as_secs_f64() * 1e3
            );
            let _ = writeln!(
                s,
                "  iterations : {} total, slowest row {}",
                stats.totals.iterations, stats.max_row_iterations
            );
            let _ = writeln!(
                s,
                "  workers    : {} effective of {} in pool",
                stats.effective_workers, stats.workers
            );
            let _ = writeln!(
                s,
                "  kernels    : {} fast-path, {} rle, {} packed, {} systolic over {} chunks",
                stats.rows_fast_path,
                stats.rows_rle_kernel,
                stats.rows_packed_kernel,
                stats.rows_systolic_kernel,
                stats.chunks
            );
            if stats.sig_prefilter != systolic_core::SigPrefilterMode::Off {
                let mode = match stats.sig_prefilter {
                    systolic_core::SigPrefilterMode::Off => unreachable!(),
                    systolic_core::SigPrefilterMode::Active => "active",
                    systolic_core::SigPrefilterMode::Bypassed => "bypassed (high churn)",
                };
                let _ = writeln!(
                    s,
                    "  signatures : {mode}; {} rows skipped, {} collisions caught, {} skips verified",
                    stats.rows_sig_skipped, stats.sig_collisions, stats.sig_verified
                );
            }
            let _ = writeln!(
                s,
                "  allocations: {} row clones avoided, {} buffers reused",
                stats.row_clones_avoided, stats.buffers_reused
            );
            if stats.retries + stats.respawns + stats.timeouts > 0 {
                let _ = writeln!(
                    s,
                    "  supervision: {} retries, {} respawns, {} timeouts",
                    stats.retries, stats.respawns, stats.timeouts
                );
            }
            if let Some(rps) = stats.rows_per_second() {
                let _ = writeln!(s, "  throughput : {rps:.0} rows/s");
            }
            if let Some(obs) = pipeline.observer() {
                let snapshot = obs.metrics_snapshot();
                if let Some(path) = metrics_out {
                    let json = path
                        .extension()
                        .is_some_and(|e| e.eq_ignore_ascii_case("json"));
                    let body = if json {
                        snapshot.to_json()
                    } else {
                        snapshot.to_prometheus()
                    };
                    fs::write(path, body)?;
                    let _ = writeln!(s, "wrote {} (metrics)", path.display());
                }
                if let Some(path) = trace_out {
                    let mut body = String::new();
                    for event in obs.trace_snapshot() {
                        body.push_str(&event.to_json_line());
                        body.push('\n');
                    }
                    fs::write(path, body)?;
                    let _ = writeln!(
                        s,
                        "wrote {} (trace, {} events, {} dropped)",
                        path.display(),
                        snapshot.trace_recorded - snapshot.trace_dropped,
                        snapshot.trace_dropped
                    );
                }
            }
            if let Some(out) = out {
                save_image(&diff, out)?;
                let _ = writeln!(s, "wrote {}", out.display());
            }
            Ok(s)
        }
        Command::Gen {
            kind,
            out,
            seed,
            text,
        } => {
            let img = match kind.as_str() {
                "pcb" => {
                    let bm =
                        workload::pcb::reference_layer(&workload::pcb::PcbParams::default(), *seed);
                    convert::encode(&bm)
                }
                "paper" => {
                    let params = workload::GenParams::for_density(2_048, 0.3);
                    workload::RowGenerator::new(params, *seed).next_image(512)
                }
                "glyphs" => workload::glyphs::render_rle(text, 4),
                other => return Err(CliError::Usage(format!("unknown workload kind {other:?}"))),
            };
            save_image(&img, out)?;
            Ok(format!(
                "generated {kind} workload: {}x{}, {} runs -> {}\n",
                img.width(),
                img.height(),
                img.total_runs(),
                out.display()
            ))
        }
        Command::ArchiveAppend {
            archive: path,
            frames,
            keyframe_every,
            fsync,
        } => {
            let opts = archive::ArchiveOptions {
                keyframe_interval: *keyframe_every,
                fsync: *fsync,
            };
            let (mut store, mut s) = open_journal(path, opts)?;
            for frame_path in frames {
                let frame = load_image(frame_path)?;
                let outcome = store
                    .append(&frame)
                    .map_err(|e| CliError::Mismatch(format!("{}: {e}", frame_path.display())))?;
                let _ = writeln!(
                    s,
                    "frame {} <- {} ({}, {} rows changed)",
                    outcome.frame,
                    frame_path.display(),
                    if outcome.keyframe {
                        "keyframe"
                    } else {
                        "delta"
                    },
                    outcome.changed_rows
                );
            }
            let stats = store.stat();
            store
                .close()
                .map_err(|e| CliError::Io(std::io::Error::other(e.to_string())))?;
            let _ = writeln!(
                s,
                "journal {} ({} frames, {} bytes, {} appended this run, {} fsyncs)",
                path.display(),
                stats.frames,
                stats.journal_bytes,
                frames.len(),
                stats.syncs
            );
            Ok(s)
        }
        Command::ArchiveExtract {
            archive: path,
            index,
            out,
        } => {
            let (frame, mut s) = extract_frame(path, *index)?;
            save_image(&frame, out)?;
            let _ = writeln!(
                s,
                "extracted frame {index} ({}x{}, {} runs) -> {}",
                frame.width(),
                frame.height(),
                frame.total_runs(),
                out.display()
            );
            Ok(s)
        }
        Command::ArchiveStat { archive: path } => {
            let data = fs::read(path)?;
            let mut s = String::new();
            let _ = writeln!(s, "{}", path.display());
            let stats = if data.starts_with(archive::JOURNAL_MAGIC) {
                // Load the journal bytes into memory so the recovery scan
                // never mutates the file — stat stays read-only.
                let store = archive::ArchiveFile::open_on(
                    archive::MemStorage::from_bytes(data.clone()),
                    archive::ArchiveOptions::default(),
                )
                .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))?;
                let rec = *store.recovery();
                let _ = writeln!(s, "  format     : RDA2 journal");
                if !rec.clean() {
                    let _ = writeln!(
                        s,
                        "  unclean    : {} torn byte(s) past the committed prefix ({}) — run `archive fsck`",
                        rec.truncated_bytes,
                        rec.reason.map_or_else(|| "unknown".to_string(), |r| r.to_string()),
                    );
                }
                store.stat()
            } else {
                let store = archive::DeltaArchive::from_bytes(&data)
                    .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))?;
                let _ = writeln!(
                    s,
                    "  format     : RDA1 legacy blob (append migrates it to the RDA2 journal)"
                );
                store.stat()
            };
            let _ = writeln!(s, "  dimensions : {} x {}", stats.width, stats.height);
            let _ = writeln!(
                s,
                "  frames     : {} ({} keyframes, every {})",
                stats.frames, stats.keyframes, stats.keyframe_interval
            );
            let _ = writeln!(s, "  delta rows : {}", stats.delta_rows);
            let _ = writeln!(s, "  stored runs: {}", stats.stored_runs);
            let full = stats.frames * stats.height;
            if full > 0 {
                let stored = stats.keyframes * stats.height + stats.delta_rows;
                let _ = writeln!(
                    s,
                    "  row storage: {stored} of {full} row-slots ({:.1}% of storing every frame in full)",
                    stored as f64 / full as f64 * 100.0
                );
            }
            let _ = writeln!(s, "  bytes      : {}", data.len());
            Ok(s)
        }
        Command::ArchiveFsck {
            archive: path,
            repair,
        } => {
            let mut file = fs::OpenOptions::new()
                .read(true)
                .write(*repair)
                .open(path)?;
            let report = archive::ArchiveFile::<fs::File>::fsck(&mut file, *repair)
                .map_err(|e| CliError::Parse(format!("{}: {e}", path.display())))?;
            let mut s = String::new();
            let _ = writeln!(s, "{}", path.display());
            let _ = writeln!(
                s,
                "  frames     : {} committed, {} verified deep",
                report.frames, report.verified
            );
            if report.torn_bytes > 0 {
                let _ = writeln!(
                    s,
                    "  torn tail  : {} byte(s) ({})",
                    report.torn_bytes,
                    report
                        .torn_reason
                        .map_or_else(|| "unknown".to_string(), |r| r.to_string()),
                );
            }
            if let Some(frame) = report.first_corrupt {
                let _ = writeln!(s, "  corrupt    : first bad committed frame is {frame}");
            }
            if report.repaired {
                let _ = writeln!(
                    s,
                    "  repaired   : journal cut back to {} byte(s), {} frame(s) lost",
                    report.bytes, report.frames_lost
                );
            }
            if report.clean() {
                let _ = writeln!(s, "  clean      : every committed frame verifies");
            } else if !*repair {
                return Err(CliError::Corrupt(format!(
                    "{} is unclean (re-run with --repair to truncate to the consistent prefix)\n{s}",
                    path.display()
                )));
            }
            Ok(s)
        }
        Command::DiffClient {
            addr,
            clients,
            requests,
            width,
            height,
            density,
            seed,
            deadline_ms,
            retries,
            backoff_ms,
            json_out,
        } => run_diff_client(
            addr,
            *clients,
            *requests,
            *width,
            *height,
            *density,
            *seed,
            *deadline_ms,
            *retries,
            *backoff_ms,
            json_out.as_deref(),
        ),
    }
}

/// Typed per-request outcomes the load generator tallies; anything else
/// (a transport failure, a protocol violation) aborts the run.
#[derive(Default, Clone, Copy)]
struct LoadTally {
    ok: u64,
    /// Requests that succeeded only after absorbing ≥ 1 `Overloaded`
    /// shed under the retry policy (a subset of `ok`; their latency
    /// samples include the backoff, which is exactly what the p99
    /// should show under overload).
    shed_then_ok: u64,
    /// Total sheds absorbed by retries across the run.
    sheds_absorbed: u64,
    /// Requests that ended shed (the retry budget exhausted, or no
    /// retrying configured).
    shed: u64,
    deadline: u64,
    other_server: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_diff_client(
    addr: &str,
    clients: usize,
    requests: usize,
    width: u32,
    height: usize,
    density: f64,
    seed: u64,
    deadline_ms: u32,
    retries: u32,
    backoff_ms: u64,
    json_out: Option<&Path>,
) -> Result<String, CliError> {
    use diffd::proto::ErrorCode;
    use std::time::Instant;

    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            std::thread::spawn(move || -> Result<(Vec<[f64; 3]>, LoadTally), String> {
                // Per-client synthetic pair; replies are verified against
                // the local reference so the load run doubles as a
                // correctness check.
                let params = workload::GenParams::for_density(width, density);
                let a = workload::RowGenerator::new(params, seed.wrapping_add(c as u64))
                    .next_image(height);
                let b = workload::errors::apply_errors_image(
                    &a,
                    &workload::ErrorModel::fraction(0.05),
                    seed ^ 0x00C1_1E47 ^ c as u64,
                );
                let expected = a.xor(&b).map_err(|e| e.to_string())?;
                let mut client = diffd::DiffClient::connect(&addr)
                    .map_err(|e| format!("connect {addr}: {e}"))?;
                // One jitter stream per client so synchronized sheds
                // spread out instead of re-colliding on the retry.
                let policy = diffd::RetryPolicy {
                    retries,
                    base_backoff: std::time::Duration::from_millis(backoff_ms),
                    max_backoff: std::time::Duration::from_millis(backoff_ms.saturating_mul(32)),
                    jitter_seed: seed ^ 0xBAC0_FF00 ^ c as u64,
                };
                let mut samples = Vec::with_capacity(requests);
                let mut tally = LoadTally::default();
                for _ in 0..requests {
                    let t0 = Instant::now();
                    match client.diff_with_retry(&a, &b, deadline_ms, &policy) {
                        Ok((reply, sheds_absorbed)) => {
                            if reply.image != expected {
                                return Err("server returned a wrong diff".into());
                            }
                            // Total round-trip, plus the server-reported
                            // split of its own share: executor queue wait
                            // vs. compute. The split comes per request off
                            // the reply, so the percentiles below are true
                            // per-request distributions, not a scrape of
                            // the server-wide histograms.
                            samples.push([
                                t0.elapsed().as_secs_f64() * 1e3,
                                reply.queue_wait_ns as f64 / 1e6,
                                reply.compute_ns as f64 / 1e6,
                            ]);
                            tally.ok += 1;
                            if sheds_absorbed > 0 {
                                tally.shed_then_ok += 1;
                                tally.sheds_absorbed += u64::from(sheds_absorbed);
                            }
                        }
                        Err(diffd::ClientError::Server { code, .. }) => match code {
                            ErrorCode::Overloaded => tally.shed += 1,
                            ErrorCode::DeadlineExceeded => tally.deadline += 1,
                            _ => tally.other_server += 1,
                        },
                        Err(e) => return Err(e.to_string()),
                    }
                }
                Ok((samples, tally))
            })
        })
        .collect();

    let mut samples: Vec<[f64; 3]> = Vec::new();
    let mut tally = LoadTally::default();
    for w in workers {
        let (lat, t) = w
            .join()
            .map_err(|_| CliError::Pipeline("a load client panicked".into()))?
            .map_err(CliError::Pipeline)?;
        samples.extend(lat);
        tally.ok += t.ok;
        tally.shed_then_ok += t.shed_then_ok;
        tally.sheds_absorbed += t.sheds_absorbed;
        tally.shed += t.shed;
        tally.deadline += t.deadline;
        tally.other_server += t.other_server;
    }
    let wall = started.elapsed().as_secs_f64();
    // A run where every request was shed or timed out measured nothing:
    // there are no latencies to report and a scripted caller must not
    // mistake the summary for a healthy benchmark. Fail loudly instead.
    if tally.ok == 0 {
        return Err(CliError::Pipeline(format!(
            "no request succeeded ({} shed, {} deadline-exceeded, {} other server errors)",
            tally.shed, tally.deadline, tally.other_server
        )));
    }
    let percentiles = |column: usize| -> (f64, f64) {
        let mut values: Vec<f64> = samples.iter().map(|s| s[column]).collect();
        values.sort_by(|x, y| x.partial_cmp(y).expect("latencies are finite"));
        if values.is_empty() {
            return (0.0, 0.0);
        }
        let pick = |p: f64| values[((values.len() as f64 - 1.0) * p).round() as usize];
        (pick(0.50), pick(0.99))
    };
    let (p50, p99) = percentiles(0);
    let (queue_p50, queue_p99) = percentiles(1);
    let (compute_p50, compute_p99) = percentiles(2);
    let throughput = if wall > 0.0 {
        tally.ok as f64 / wall
    } else {
        0.0
    };

    let mut s = String::new();
    let _ = writeln!(
        s,
        "diff-client: {clients} clients x {requests} requests against {addr}"
    );
    let _ = writeln!(
        s,
        "  workload   : {width}x{height} at density {density:.2}, seed {seed}"
    );
    let _ = writeln!(
        s,
        "  outcomes   : {} ok, {} shed, {} deadline, {} other",
        tally.ok, tally.shed, tally.deadline, tally.other_server
    );
    if tally.shed_then_ok > 0 || retries > 0 {
        let _ = writeln!(
            s,
            "  retries    : {} of the ok succeeded after retry ({} sheds absorbed, \
             budget {retries} x {backoff_ms} ms backoff)",
            tally.shed_then_ok, tally.sheds_absorbed
        );
    }
    let _ = writeln!(s, "  latency    : p50 {p50:.3} ms, p99 {p99:.3} ms");
    let _ = writeln!(
        s,
        "  queue wait : p50 {queue_p50:.3} ms, p99 {queue_p99:.3} ms (server-reported, per request)"
    );
    let _ = writeln!(
        s,
        "  compute    : p50 {compute_p50:.3} ms, p99 {compute_p99:.3} ms (server-reported, per request)"
    );
    let _ = writeln!(
        s,
        "  throughput : {throughput:.1} requests/s over {wall:.3} s"
    );
    if let Some(path) = json_out {
        let json = format!(
            "{{\n  \"addr\": \"{addr}\",\n  \"clients\": {clients},\n  \"requests_per_client\": {requests},\n  \"width\": {width},\n  \"height\": {height},\n  \"density\": {density},\n  \"retries\": {retries},\n  \"backoff_ms\": {backoff_ms},\n  \"ok\": {},\n  \"shed_then_ok\": {},\n  \"sheds_absorbed\": {},\n  \"shed\": {},\n  \"deadline\": {},\n  \"other_server_errors\": {},\n  \"p50_ms\": {p50},\n  \"p99_ms\": {p99},\n  \"queue_wait_p50_ms\": {queue_p50},\n  \"queue_wait_p99_ms\": {queue_p99},\n  \"compute_p50_ms\": {compute_p50},\n  \"compute_p99_ms\": {compute_p99},\n  \"throughput_rps\": {throughput},\n  \"wall_s\": {wall}\n}}\n",
            tally.ok, tally.shed_then_ok, tally.sheds_absorbed, tally.shed, tally.deadline, tally.other_server
        );
        fs::write(path, json)?;
        let _ = writeln!(s, "wrote {} (summary)", path.display());
    }
    Ok(s)
}

fn run_diff(a: &RleImage, b: &RleImage, algo: Algo) -> Result<(RleImage, String), CliError> {
    let to_err = |e: systolic_core::SystolicError| CliError::Mismatch(e.to_string());
    match algo {
        Algo::Systolic => {
            let (diff, stats) = systolic_core::image::xor_image(a, b).map_err(to_err)?;
            Ok((
                diff,
                format!(
                    "systolic: {} iterations total, slowest row {} (cells provisioned: {})",
                    stats.totals.iterations, stats.max_row_iterations, stats.totals.cells
                ),
            ))
        }
        Algo::Mesh => {
            let mut rows = Vec::with_capacity(a.height());
            let mut iters = 0u64;
            for (ra, rb) in a.rows().iter().zip(b.rows()) {
                let (row, stats) = systolic_core::bus::systolic_xor_mesh(ra, rb).map_err(to_err)?;
                iters += stats.iterations;
                rows.push(row);
            }
            let diff = RleImage::from_rows(a.width(), rows).expect("widths preserved");
            Ok((
                diff,
                format!("mesh-assisted systolic: {iters} iterations total"),
            ))
        }
        Algo::Sequential => {
            let mut rows = Vec::with_capacity(a.height());
            let mut iters = 0u64;
            for (ra, rb) in a.rows().iter().zip(b.rows()) {
                let (row, stats) = rle::ops::xor_raw_with_stats(ra, rb);
                iters += stats.iterations;
                rows.push(row.canonicalized());
            }
            let diff = RleImage::from_rows(a.width(), rows).expect("widths preserved");
            Ok((diff, format!("sequential merge: {iters} iterations total")))
        }
        Algo::Dense => {
            let da = convert::decode(a);
            let db = convert::decode(b);
            let diff = convert::encode(&bitimg::ops::xor(&da, &db));
            Ok((diff, "dense word XOR".to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rlediff_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parse_diff_with_options() {
        let cmd = parse_args(&args(&[
            "diff", "a.pbm", "b.pbm", "-o", "d.pbm", "--algo", "mesh", "--clean", "2",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Diff {
                a: "a.pbm".into(),
                b: "b.pbm".into(),
                out: Some("d.pbm".into()),
                algo: Algo::Mesh,
                clean: 2,
            }
        );
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            parse_args(&args(&["encode", "x.pbm"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["diff", "a", "b", "--algo", "warp"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert_eq!(parse_args(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn gen_info_encode_decode_round_trip() {
        let pbm_path = tmp("board.pbm");
        let msg = run_command(&Command::Gen {
            kind: "pcb".into(),
            out: pbm_path.clone(),
            seed: 5,
            text: String::new(),
        })
        .unwrap();
        assert!(msg.contains("generated pcb"));

        let info = run_command(&Command::Info {
            input: pbm_path.clone(),
        })
        .unwrap();
        assert!(info.contains("dimensions"));

        let rle_path = tmp("board.rle");
        run_command(&Command::Encode {
            input: pbm_path.clone(),
            out: rle_path.clone(),
        })
        .unwrap();
        let back_path = tmp("board_back.pbm");
        run_command(&Command::Decode {
            input: rle_path.clone(),
            out: back_path.clone(),
        })
        .unwrap();
        assert_eq!(
            load_image(&pbm_path).unwrap(),
            load_image(&back_path).unwrap()
        );
        // RLE file is smaller than the PBM.
        assert!(fs::metadata(&rle_path).unwrap().len() < fs::metadata(&pbm_path).unwrap().len());
    }

    #[test]
    fn diff_algorithms_agree_end_to_end() {
        let a_path = tmp("ga.pbm");
        let b_path = tmp("gb.pbm");
        run_command(&Command::Gen {
            kind: "glyphs".into(),
            out: a_path.clone(),
            seed: 1,
            text: "PCB".into(),
        })
        .unwrap();
        run_command(&Command::Gen {
            kind: "glyphs".into(),
            out: b_path.clone(),
            seed: 1,
            text: "PCR".into(),
        })
        .unwrap();

        let mut outputs = Vec::new();
        for algo in [Algo::Systolic, Algo::Sequential, Algo::Mesh, Algo::Dense] {
            let out = tmp(&format!("diff_{algo:?}.rle"));
            let msg = run_command(&Command::Diff {
                a: a_path.clone(),
                b: b_path.clone(),
                out: Some(out.clone()),
                algo,
                clean: 0,
            })
            .unwrap();
            assert!(msg.contains("px differ"), "{msg}");
            outputs.push(load_image(&out).unwrap());
        }
        for pair in outputs.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
        assert!(outputs[0].ones() > 0, "B vs R must differ");
    }

    #[test]
    fn diff_clean_drops_specks() {
        // Two glyph images with 1-px noise: --clean 2 keeps only wider
        // difference components.
        let a = workload::glyphs::render_rle("O", 3);
        let mut noisy_dense = convert::decode(&a);
        noisy_dense.set(0, 0, true); // single-pixel speck
        let b = convert::encode(&noisy_dense);
        let a_path = tmp("ca.rle");
        let b_path = tmp("cb.rle");
        save_image(&a, &a_path).unwrap();
        save_image(&b, &b_path).unwrap();
        let out = tmp("cd.rle");
        run_command(&Command::Diff {
            a: a_path,
            b: b_path,
            out: Some(out.clone()),
            algo: Algo::Systolic,
            clean: 2,
        })
        .unwrap();
        assert_eq!(
            load_image(&out).unwrap().ones(),
            0,
            "speck must be cleaned away"
        );
    }

    #[test]
    fn diff_rejects_dimension_mismatch() {
        let a = workload::glyphs::render_rle("A", 2);
        let b = workload::glyphs::render_rle("AB", 2);
        let a_path = tmp("ma.rle");
        let b_path = tmp("mb.rle");
        save_image(&a, &a_path).unwrap();
        save_image(&b, &b_path).unwrap();
        let err = run_command(&Command::Diff {
            a: a_path,
            b: b_path,
            out: None,
            algo: Algo::Systolic,
            clean: 0,
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Mismatch(_)));
    }

    #[test]
    fn components_command_reports_blobs() {
        let img = workload::glyphs::render_rle("I I", 2);
        let path = tmp("comp.rle");
        save_image(&img, &path).unwrap();
        let out = run_command(&Command::Components {
            input: path.clone(),
            min_area: 1,
        })
        .unwrap();
        assert!(out.contains("2 components"), "{out}");
        // min-area filters the report.
        let filtered = run_command(&Command::Components {
            input: path,
            min_area: 10_000,
        })
        .unwrap();
        assert!(filtered.contains("(0 after --min-area"), "{filtered}");
    }

    #[test]
    fn parse_diff_image_with_threads() {
        let cmd = parse_args(&args(&[
            "diff-image",
            "a.pbm",
            "b.pbm",
            "-o",
            "d.rle",
            "--threads",
            "3",
            "--clean",
            "1",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::DiffImage {
                a: "a.pbm".into(),
                b: "b.pbm".into(),
                out: Some("d.rle".into()),
                threads: 3,
                clean: 1,
                timeout_ms: None,
                kernel: systolic_core::Kernel::Auto,
                chunk_target: None,
                simd: None,
                metrics_out: None,
                trace_out: None,
                sig_prefilter: false,
                verify_sigs: false,
            }
        );
    }

    #[test]
    fn parse_diff_image_sig_flags() {
        let cmd = parse_args(&args(&["diff-image", "a.pbm", "b.pbm", "--verify-sigs"])).unwrap();
        let Command::DiffImage {
            sig_prefilter,
            verify_sigs,
            ..
        } = cmd
        else {
            panic!("parsed the wrong command")
        };
        assert!(
            !sig_prefilter,
            "--verify-sigs implies the prefilter at run time, not parse time"
        );
        assert!(verify_sigs);
    }

    #[test]
    fn parse_diff_image_metrics_and_trace_out() {
        let cmd = parse_args(&args(&[
            "diff-image",
            "a.pbm",
            "b.pbm",
            "--metrics-out",
            "m.prom",
            "--trace-out",
            "t.jsonl",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::DiffImage {
                a: "a.pbm".into(),
                b: "b.pbm".into(),
                out: None,
                threads: 0,
                clean: 0,
                timeout_ms: None,
                kernel: systolic_core::Kernel::Auto,
                chunk_target: None,
                simd: None,
                metrics_out: Some("m.prom".into()),
                trace_out: Some("t.jsonl".into()),
                sig_prefilter: false,
                verify_sigs: false,
            }
        );
        assert!(matches!(
            parse_args(&args(&["diff-image", "a", "b", "--metrics-out"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["diff-image", "a", "b", "--trace-out"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_diff_image_kernel_and_chunk_target() {
        let cmd = parse_args(&args(&[
            "diff-image",
            "a.pbm",
            "b.pbm",
            "--kernel",
            "packed",
            "--chunk-target",
            "256",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::DiffImage {
                a: "a.pbm".into(),
                b: "b.pbm".into(),
                out: None,
                threads: 0,
                clean: 0,
                timeout_ms: None,
                kernel: systolic_core::Kernel::Packed,
                chunk_target: Some(256),
                simd: None,
                metrics_out: None,
                trace_out: None,
                sig_prefilter: false,
                verify_sigs: false,
            }
        );
        for kernel in ["auto", "rle", "systolic"] {
            assert!(
                parse_args(&args(&["diff-image", "a", "b", "--kernel", kernel])).is_ok(),
                "{kernel}"
            );
        }
        let err = parse_args(&args(&["diff-image", "a", "b", "--kernel", "quantum"]));
        assert!(matches!(err, Err(CliError::Usage(m)) if m.contains("quantum")));
        assert!(matches!(
            parse_args(&args(&["diff-image", "a", "b", "--chunk-target", "many"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["diff-image", "a", "b", "--kernel"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_diff_image_simd_level() {
        for (value, expected) in [
            ("auto", None),
            ("scalar", Some(systolic_core::SimdLevel::Scalar)),
            ("sse2", Some(systolic_core::SimdLevel::Sse2)),
            ("avx2", Some(systolic_core::SimdLevel::Avx2)),
        ] {
            let cmd = parse_args(&args(&["diff-image", "a", "b", "--simd", value])).unwrap();
            let Command::DiffImage { simd, .. } = cmd else {
                panic!("expected diff-image, got {cmd:?}");
            };
            assert_eq!(simd, expected, "{value}");
        }
        let err = parse_args(&args(&["diff-image", "a", "b", "--simd", "avx512"]));
        assert!(matches!(err, Err(CliError::Usage(m)) if m.contains("avx512")));
        assert!(matches!(
            parse_args(&args(&["diff-image", "a", "b", "--simd"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_diff_image_timeout() {
        let cmd = parse_args(&args(&[
            "diff-image",
            "a.pbm",
            "b.pbm",
            "--timeout-ms",
            "1500",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::DiffImage {
                a: "a.pbm".into(),
                b: "b.pbm".into(),
                out: None,
                threads: 0,
                clean: 0,
                timeout_ms: Some(1500),
                kernel: systolic_core::Kernel::Auto,
                chunk_target: None,
                simd: None,
                metrics_out: None,
                trace_out: None,
                sig_prefilter: false,
                verify_sigs: false,
            }
        );
        assert!(matches!(
            parse_args(&args(&["diff-image", "a", "b", "--timeout-ms", "soon"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["diff-image", "a", "b", "--timeout-ms"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn diff_image_with_generous_timeout_succeeds() {
        let a = workload::glyphs::render_rle("OK", 2);
        let b = workload::glyphs::render_rle("OX", 2);
        let a_path = tmp("ta.rle");
        let b_path = tmp("tb.rle");
        save_image(&a, &a_path).unwrap();
        save_image(&b, &b_path).unwrap();
        let msg = run_command(&Command::DiffImage {
            a: a_path,
            b: b_path,
            out: None,
            threads: 2,
            clean: 0,
            timeout_ms: Some(60_000),
            kernel: systolic_core::Kernel::Auto,
            chunk_target: None,
            simd: None,
            metrics_out: None,
            trace_out: None,
            sig_prefilter: false,
            verify_sigs: false,
        })
        .unwrap();
        assert!(msg.contains("pipeline:"), "{msg}");
    }

    #[test]
    fn corrupt_rle_input_is_a_clean_parse_error() {
        // An adversarial header declaring a huge image must fail fast with
        // a parse error, not a panic or a giant allocation.
        let path = tmp("evil.rle");
        let mut bytes = b"RLI1".to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0x7F]); // huge height varint
        fs::write(&path, &bytes).unwrap();
        let err = run_command(&Command::Info {
            input: path.clone(),
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Parse(_)), "{err:?}");
        assert!(err.to_string().contains("exceeds"), "{err}");
        let display = CliError::Pipeline("row 3 failed".into()).to_string();
        assert!(display.contains("pipeline error"));
    }

    #[test]
    fn diff_image_matches_diff_and_prints_stats() {
        let a = workload::glyphs::render_rle("PCB", 2);
        let b = workload::glyphs::render_rle("PCR", 2);
        let a_path = tmp("pa.rle");
        let b_path = tmp("pb.rle");
        save_image(&a, &a_path).unwrap();
        save_image(&b, &b_path).unwrap();

        let via_diff = tmp("pd1.rle");
        run_command(&Command::Diff {
            a: a_path.clone(),
            b: b_path.clone(),
            out: Some(via_diff.clone()),
            algo: Algo::Systolic,
            clean: 0,
        })
        .unwrap();

        let via_pipeline = tmp("pd2.rle");
        let msg = run_command(&Command::DiffImage {
            a: a_path,
            b: b_path,
            out: Some(via_pipeline.clone()),
            threads: 2,
            clean: 0,
            timeout_ms: None,
            kernel: systolic_core::Kernel::Auto,
            chunk_target: None,
            simd: None,
            metrics_out: None,
            trace_out: None,
            sig_prefilter: false,
            verify_sigs: false,
        })
        .unwrap();
        assert!(msg.contains("pipeline:"), "{msg}");
        assert!(msg.contains("workers"), "{msg}");
        assert!(msg.contains("kernels"), "{msg}");
        assert!(msg.contains("row clones avoided"), "{msg}");
        assert_eq!(
            load_image(&via_diff).unwrap(),
            load_image(&via_pipeline).unwrap()
        );
    }

    #[test]
    fn diff_image_rejects_dimension_mismatch() {
        let a = workload::glyphs::render_rle("A", 2);
        let b = workload::glyphs::render_rle("AB", 2);
        let a_path = tmp("pma.rle");
        let b_path = tmp("pmb.rle");
        save_image(&a, &a_path).unwrap();
        save_image(&b, &b_path).unwrap();
        let err = run_command(&Command::DiffImage {
            a: a_path,
            b: b_path,
            out: None,
            threads: 2,
            clean: 0,
            timeout_ms: None,
            kernel: systolic_core::Kernel::Auto,
            chunk_target: None,
            simd: None,
            metrics_out: None,
            trace_out: None,
            sig_prefilter: false,
            verify_sigs: false,
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Mismatch(_)));
    }

    #[test]
    fn parse_components_with_min_area() {
        let cmd = parse_args(&args(&["components", "x.rle", "--min-area", "5"])).unwrap();
        assert_eq!(
            cmd,
            Command::Components {
                input: "x.rle".into(),
                min_area: 5
            }
        );
    }

    #[test]
    fn help_text() {
        let out = run_command(&Command::Help).unwrap();
        assert!(out.contains("rlediff"));
        assert!(out.contains("diff"));
        assert!(out.contains("diff-client"));
    }

    #[test]
    fn parse_diff_client_with_options() {
        let cmd = parse_args(&args(&[
            "diff-client",
            "127.0.0.1:7177",
            "--clients",
            "4",
            "--requests",
            "32",
            "--width",
            "256",
            "--height",
            "64",
            "--density",
            "0.25",
            "--seed",
            "9",
            "--deadline-ms",
            "500",
            "--retries",
            "3",
            "--backoff-ms",
            "10",
            "--json-out",
            "load.json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::DiffClient {
                addr: "127.0.0.1:7177".into(),
                clients: 4,
                requests: 32,
                width: 256,
                height: 64,
                density: 0.25,
                seed: 9,
                deadline_ms: 500,
                retries: 3,
                backoff_ms: 10,
                json_out: Some("load.json".into()),
            }
        );
        assert!(matches!(
            parse_args(&args(&["diff-client", "host:1", "--clients", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["diff-client", "host:1", "--density", "thick"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn diff_client_drives_a_loopback_server_and_writes_json() {
        let server =
            diffd::DiffServer::bind("127.0.0.1:0", diffd::DiffServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let (handle, join) = server.spawn();

        let json_path = tmp("load.json");
        let out = run_command(&Command::DiffClient {
            addr: addr.to_string(),
            clients: 2,
            requests: 3,
            width: 64,
            height: 16,
            density: 0.3,
            seed: 1,
            deadline_ms: 0,
            retries: 0,
            backoff_ms: 25,
            json_out: Some(json_path.clone()),
        })
        .unwrap();
        assert!(out.contains("6 ok, 0 shed"), "{out}");
        assert!(out.contains("p50"), "{out}");
        assert!(out.contains("requests/s"), "{out}");

        let json = fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"ok\": 6"), "{json}");
        assert!(json.contains("\"p99_ms\""), "{json}");

        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn diff_client_reports_connect_failure_as_an_error() {
        // A port nothing listens on: the run must fail with a typed error,
        // not hang or panic.
        let err = run_command(&Command::DiffClient {
            addr: "127.0.0.1:1".into(),
            clients: 1,
            requests: 1,
            width: 32,
            height: 4,
            density: 0.3,
            seed: 1,
            deadline_ms: 0,
            retries: 0,
            backoff_ms: 25,
            json_out: None,
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Pipeline(_)), "{err:?}");
        assert!(err.to_string().contains("connect"), "{err}");
    }

    /// Deterministic same-geometry frames for the archive tests, written
    /// to disk as `.rle` files.
    fn frame_files(prefix: &str, n: usize, seed: u64) -> (Vec<RleImage>, Vec<PathBuf>) {
        let params = workload::SequenceParams {
            gen: workload::GenParams::for_density(256, 0.3),
            height: 32,
            churn: 0.2,
        };
        let frames = workload::FrameSequence::new(params, seed).take_frames(n);
        let paths: Vec<PathBuf> = frames
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let p = tmp(&format!("{prefix}_{i}.rle"));
                save_image(f, &p).unwrap();
                p
            })
            .collect();
        (frames, paths)
    }

    #[test]
    fn parse_archive_append_with_fsync_policies() {
        let cmd = parse_args(&args(&[
            "archive",
            "append",
            "a.rda",
            "f0.rle",
            "f1.rle",
            "--keyframe-every",
            "4",
            "--fsync",
            "every=8",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::ArchiveAppend {
                archive: "a.rda".into(),
                frames: vec!["f0.rle".into(), "f1.rle".into()],
                keyframe_every: 4,
                fsync: archive::FsyncPolicy::EveryN(8),
            }
        );
        for (value, expected) in [
            ("always", archive::FsyncPolicy::Always),
            ("close", archive::FsyncPolicy::OnClose),
        ] {
            let cmd = parse_args(&args(&[
                "archive", "append", "a.rda", "f.rle", "--fsync", value,
            ]))
            .unwrap();
            assert!(
                matches!(cmd, Command::ArchiveAppend { fsync, .. } if fsync == expected),
                "{value}"
            );
        }
        for bad in ["every=0", "sometimes", "every=x"] {
            assert!(matches!(
                parse_args(&args(&[
                    "archive", "append", "a.rda", "f.rle", "--fsync", bad
                ])),
                Err(CliError::Usage(_))
            ));
        }
    }

    #[test]
    fn parse_archive_fsck() {
        assert_eq!(
            parse_args(&args(&["archive", "fsck", "a.rda"])).unwrap(),
            Command::ArchiveFsck {
                archive: "a.rda".into(),
                repair: false,
            }
        );
        assert_eq!(
            parse_args(&args(&["archive", "fsck", "a.rda", "--repair"])).unwrap(),
            Command::ArchiveFsck {
                archive: "a.rda".into(),
                repair: true,
            }
        );
    }

    #[test]
    fn archive_append_extract_stat_fsck_round_trip() {
        let (frames, paths) = frame_files("journal_rt", 6, 0xA11CE);
        let archive_path = tmp("journal_rt.rda");
        let _ = fs::remove_file(&archive_path);

        let out = run_command(&Command::ArchiveAppend {
            archive: archive_path.clone(),
            frames: paths,
            keyframe_every: 3,
            fsync: archive::FsyncPolicy::EveryN(2),
        })
        .unwrap();
        assert!(out.contains("frame 0"), "{out}");
        assert!(out.contains("keyframe"), "{out}");
        assert!(out.contains("6 frames"), "{out}");

        // The file on disk is an RDA2 journal now.
        let head = fs::read(&archive_path).unwrap();
        assert!(head.starts_with(archive::JOURNAL_MAGIC));

        // Every frame extracts bit-identically through the CLI.
        for (i, want) in frames.iter().enumerate() {
            let out_path = tmp(&format!("journal_rt_out_{i}.rle"));
            run_command(&Command::ArchiveExtract {
                archive: archive_path.clone(),
                index: i,
                out: out_path.clone(),
            })
            .unwrap();
            assert_eq!(&load_image(&out_path).unwrap(), want, "frame {i}");
        }

        let stat = run_command(&Command::ArchiveStat {
            archive: archive_path.clone(),
        })
        .unwrap();
        assert!(stat.contains("RDA2 journal"), "{stat}");
        assert!(stat.contains("6 (2 keyframes, every 3)"), "{stat}");
        assert!(!stat.contains("unclean"), "{stat}");

        let fsck = run_command(&Command::ArchiveFsck {
            archive: archive_path.clone(),
            repair: false,
        })
        .unwrap();
        assert!(fsck.contains("6 committed, 6 verified"), "{fsck}");
        assert!(fsck.contains("clean"), "{fsck}");
    }

    #[test]
    fn archive_append_migrates_rda1_blobs_in_place() {
        let (frames, paths) = frame_files("migrate", 5, 0x1DA1);
        let archive_path = tmp("migrate.rda");

        // Write a legacy RDA1 blob the old way.
        let mut old = archive::DeltaArchive::new(2);
        for f in &frames[..4] {
            old.append(f).unwrap();
        }
        fs::write(&archive_path, old.to_bytes()).unwrap();

        // Appending migrates, then appends on the journal.
        let out = run_command(&Command::ArchiveAppend {
            archive: archive_path.clone(),
            frames: vec![paths[4].clone()],
            keyframe_every: 999, // ignored: the blob's cadence wins
            fsync: archive::FsyncPolicy::Always,
        })
        .unwrap();
        assert!(out.contains("migrated 4 RDA1 frame(s)"), "{out}");
        assert!(out.contains("5 frames"), "{out}");
        assert!(fs::read(&archive_path)
            .unwrap()
            .starts_with(archive::JOURNAL_MAGIC));

        let stat = run_command(&Command::ArchiveStat {
            archive: archive_path.clone(),
        })
        .unwrap();
        assert!(stat.contains("every 2"), "{stat}");

        for (i, want) in frames.iter().enumerate() {
            let out_path = tmp(&format!("migrate_out_{i}.rle"));
            run_command(&Command::ArchiveExtract {
                archive: archive_path.clone(),
                index: i,
                out: out_path.clone(),
            })
            .unwrap();
            assert_eq!(&load_image(&out_path).unwrap(), want, "frame {i}");
        }
    }

    #[test]
    fn archive_fsck_flags_a_torn_tail_and_repairs_it() {
        let (frames, paths) = frame_files("fsck", 4, 0xF5C);
        let archive_path = tmp("fsck.rda");
        let _ = fs::remove_file(&archive_path);
        run_command(&Command::ArchiveAppend {
            archive: archive_path.clone(),
            frames: paths,
            keyframe_every: 2,
            fsync: archive::FsyncPolicy::Always,
        })
        .unwrap();

        // Tear the tail: chop 3 bytes off the last committed record.
        let len = fs::metadata(&archive_path).unwrap().len();
        let file = fs::OpenOptions::new()
            .write(true)
            .open(&archive_path)
            .unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        // Without --repair: report + non-zero exit via the typed error.
        let err = run_command(&Command::ArchiveFsck {
            archive: archive_path.clone(),
            repair: false,
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("--repair"), "{err}");

        // Reads still work (recovery ignores the torn tail) and say so.
        let out_path = tmp("fsck_out.rle");
        let out = run_command(&Command::ArchiveExtract {
            archive: archive_path.clone(),
            index: 2,
            out: out_path.clone(),
        })
        .unwrap();
        assert!(out.contains("torn"), "{out}");
        assert_eq!(&load_image(&out_path).unwrap(), &frames[2]);

        // --repair truncates to the consistent prefix; fsck is then clean.
        let repaired = run_command(&Command::ArchiveFsck {
            archive: archive_path.clone(),
            repair: true,
        })
        .unwrap();
        assert!(repaired.contains("repaired"), "{repaired}");
        let clean = run_command(&Command::ArchiveFsck {
            archive: archive_path.clone(),
            repair: false,
        })
        .unwrap();
        assert!(clean.contains("3 committed, 3 verified"), "{clean}");
        assert!(clean.contains("clean"), "{clean}");
    }
}
