//! `rlediff` — see [`rlediff::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match rlediff::parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("{e}\n\n{}", rlediff::USAGE);
            std::process::exit(2);
        }
    };
    match rlediff::run_command(&command) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
