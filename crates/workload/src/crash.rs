//! Crash-point plans for the journal's byte-level crash-injection
//! harness.
//!
//! The durability property the archive journal claims is *per byte*:
//! after a crash at **any** write-stream offset, reopening recovers
//! exactly the committed frames. The only fully convincing test is the
//! exhaustive sweep — every offset from 0 to the journal's total length —
//! and [`CrashSweep::exhaustive`] produces exactly that. For larger
//! journals where per-byte reopening is too slow, [`CrashSweep::sampled`]
//! keeps the offsets that matter most (every record boundary and its ±1
//! neighbours, where commit semantics flip) and fills the interiors with
//! deterministic seeded samples, so CI time stays bounded without the
//! sweep going blind inside record bodies.
//!
//! Like everything in this crate, plans are seeded and deterministic:
//! the same inputs always yield the same crash offsets.

/// A deterministic set of byte offsets at which to injected-crash a
/// journal write stream (see `archive::FaultStorage`).
#[derive(Clone, Debug)]
pub struct CrashSweep {
    offsets: Vec<u64>,
}

/// splitmix64 — the same tiny deterministic mixer the workload
/// generators build on.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CrashSweep {
    /// Every offset in `0..=total_bytes` — the full property, no blind
    /// spots. `total_bytes` itself is included: a "crash" after the last
    /// byte must recover everything.
    #[must_use]
    pub fn exhaustive(total_bytes: u64) -> Self {
        Self {
            offsets: (0..=total_bytes).collect(),
        }
    }

    /// Record-boundary offsets and their ±1 neighbours (where a frame
    /// flips between committed and torn), plus `per_gap` seeded interior
    /// offsets between consecutive boundaries. `boundaries` are the
    /// cumulative end offsets of each committed record, as reported by a
    /// clean reference run.
    #[must_use]
    pub fn sampled(total_bytes: u64, boundaries: &[u64], per_gap: usize, seed: u64) -> Self {
        let mut offsets = vec![0u64, total_bytes];
        let mut prev = 0u64;
        for (i, &b) in boundaries.iter().enumerate() {
            let b = b.min(total_bytes);
            offsets.push(b);
            offsets.push(b.saturating_sub(1));
            offsets.push((b + 1).min(total_bytes));
            let gap = b.saturating_sub(prev);
            if gap > 2 {
                for j in 0..per_gap {
                    let r = mix(seed ^ ((i as u64) << 32) ^ j as u64);
                    offsets.push(prev + 1 + r % (gap - 1));
                }
            }
            prev = b;
        }
        offsets.sort_unstable();
        offsets.dedup();
        Self { offsets }
    }

    /// The crash offsets, ascending and deduplicated.
    #[must_use]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Number of crash points in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the plan is empty (never true for the constructors here).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_covers_every_offset() {
        let sweep = CrashSweep::exhaustive(10);
        assert_eq!(sweep.offsets(), (0..=10).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn sampled_is_deterministic_sorted_and_hits_boundaries() {
        let boundaries = [13u64, 150, 310, 452];
        let a = CrashSweep::sampled(500, &boundaries, 3, 0xC0FFEE);
        let b = CrashSweep::sampled(500, &boundaries, 3, 0xC0FFEE);
        assert_eq!(a.offsets(), b.offsets(), "same seed, same plan");
        for &b0 in &boundaries {
            for want in [b0 - 1, b0, b0 + 1] {
                assert!(
                    a.offsets().contains(&want),
                    "missing boundary offset {want}"
                );
            }
        }
        assert!(
            a.offsets().windows(2).all(|w| w[0] < w[1]),
            "sorted, deduped"
        );
        assert!(a.offsets().first() == Some(&0) && a.offsets().last() == Some(&500));
        let c = CrashSweep::sampled(500, &boundaries, 3, 0xBEEF);
        assert_ne!(
            a.offsets(),
            c.offsets(),
            "different seed, different interiors"
        );
    }
}
