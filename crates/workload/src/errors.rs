//! The paper's error injector.
//!
//! §5: "the second image was obtained by flipping some of the bits of the
//! first image in either direction (1 to 0, and 0 to 1). Here these changes
//! are called errors and they were created in runs of length 2 to 6."
//!
//! Two targeting modes match the two experiments:
//!
//! * [`ErrorModel::ByFraction`] — keep flipping error runs until roughly a
//!   requested fraction of the pixels differ (Figure 5's x-axis, Table 1's
//!   "3.5 %" rows);
//! * [`ErrorModel::ByCount`] — exactly `count` error runs of a fixed length
//!   (Table 1's "6 runs" of "size 4 pixels" rows).

use bitimg::convert::{decode_row, encode_row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::{Pixel, RleImage, RleRow};

/// How many errors to inject.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ErrorModel {
    /// Flip runs of length `run_len.0 ..= run_len.1` until at least
    /// `fraction` of the row's pixels have been flipped. The paper's
    /// default run-length range is `(2, 6)`.
    ByFraction {
        /// Target fraction of flipped pixels, in `[0, 1]`.
        fraction: f64,
        /// Inclusive error-run length range.
        run_len: (Pixel, Pixel),
    },
    /// Flip exactly `count` error runs of exactly `len` pixels each
    /// (distinct, non-overlapping positions).
    ByCount {
        /// Number of error runs.
        count: usize,
        /// Length of every error run.
        len: Pixel,
    },
}

impl ErrorModel {
    /// The paper's error-run length range.
    pub const PAPER_ERROR_LEN: (Pixel, Pixel) = (2, 6);

    /// Figure-5-style model: flip ~`fraction` of the pixels in runs of 2–6.
    #[must_use]
    pub fn fraction(fraction: f64) -> Self {
        ErrorModel::ByFraction {
            fraction,
            run_len: Self::PAPER_ERROR_LEN,
        }
    }

    /// Table-1-style fixed model: `count` runs of `len` pixels.
    #[must_use]
    pub fn fixed(count: usize, len: Pixel) -> Self {
        ErrorModel::ByCount { count, len }
    }
}

/// Applies the error model to a row, returning the perturbed row.
///
/// Flipping happens in the dense domain (decode → flip → re-encode), which
/// is exactly "flipping some of the bits ... in either direction": an error
/// run landing on foreground erases, on background paints, and straddling
/// both does some of each.
#[must_use]
pub fn apply_errors(row: &RleRow, model: &ErrorModel, seed: u64) -> RleRow {
    let mut rng = StdRng::seed_from_u64(seed);
    apply_errors_rng(row, model, &mut rng)
}

/// Like [`apply_errors`] with a caller-managed RNG (for trial loops).
#[must_use]
pub fn apply_errors_rng(row: &RleRow, model: &ErrorModel, rng: &mut StdRng) -> RleRow {
    let width = row.width();
    if width == 0 {
        return row.clone();
    }
    let mut dense = decode_row(row);
    match *model {
        ErrorModel::ByFraction { fraction, run_len } => {
            assert!(
                (0.0..=1.0).contains(&fraction),
                "fraction must be in [0, 1]"
            );
            // Target the *realized* number of differing pixels (the
            // quantity on Figure 5's x-axis): flips that land on already
            // flipped pixels cancel, so we track the live Hamming distance
            // against the original row. Random flipping saturates towards
            // 50 % difference, so an attempt budget bounds the loop when an
            // unreachable fraction is requested.
            let original = dense.clone();
            let target = (f64::from(width) * fraction).round() as u64;
            let mut differing = 0u64;
            let mut attempts = 0u64;
            let max_attempts = 40 * (target / u64::from(run_len.0.max(1)) + 1);
            while differing < target && attempts < max_attempts {
                attempts += 1;
                let len = rng.gen_range(run_len.0..=run_len.1).min(width);
                let start = rng.gen_range(0..=width - len);
                // The paper's errors are whole flipped runs of length 2–6.
                // A placement that partially overlaps an earlier error run
                // would cancel some of its pixels and leave a difference
                // segment shorter than run_len.0, so such placements are
                // rejected; runs may still land adjacent and merge.
                if (start..start + len).any(|p| dense.get(p) != original.get(p)) {
                    continue;
                }
                for p in start..start + len {
                    dense.set(p, !original.get(p));
                }
                differing += u64::from(len);
            }
        }
        ErrorModel::ByCount { count, len } => {
            let len = len.min(width);
            if len == 0 {
                return row.clone();
            }
            // Choose non-overlapping starts so the runs stay distinct.
            let mut starts: Vec<Pixel> = Vec::with_capacity(count);
            let mut attempts = 0usize;
            while starts.len() < count && attempts < count * 1000 {
                attempts += 1;
                let s = rng.gen_range(0..=width - len);
                if starts.iter().all(|&t| s + len <= t || t + len <= s) {
                    starts.push(s);
                }
            }
            for s in starts {
                for p in s..s + len {
                    dense.set(p, !dense.get(p));
                }
            }
        }
    }
    encode_row(&dense)
}

/// Applies the model independently to every row of an image (each row gets
/// its own RNG stream derived from `seed`).
#[must_use]
pub fn apply_errors_image(img: &RleImage, model: &ErrorModel, seed: u64) -> RleImage {
    let rows = img
        .rows()
        .iter()
        .enumerate()
        .map(|(y, row)| apply_errors(row, model, seed.wrapping_add(y as u64)))
        .collect();
    RleImage::from_rows(img.width(), rows).expect("error injection preserves width")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenParams, RowGenerator};
    use rle::metrics::hamming;

    fn base_row(width: u32, seed: u64) -> RleRow {
        RowGenerator::new(GenParams::for_density(width, 0.3), seed).next_row()
    }

    #[test]
    fn fraction_model_hits_target_approximately() {
        let row = base_row(10_000, 1);
        for fraction in [0.01, 0.05, 0.2, 0.4] {
            let noisy = apply_errors(&row, &ErrorModel::fraction(fraction), 42);
            let diff = hamming(&row, &noisy) as f64 / 10_000.0;
            // Realized-difference targeting: lands at the target, give or
            // take the last error run.
            assert!(diff >= fraction, "fraction {fraction}: diff {diff}");
            assert!(diff < fraction + 0.001, "fraction {fraction}: diff {diff}");
        }
    }

    #[test]
    fn zero_fraction_is_identity() {
        let row = base_row(2048, 2);
        assert_eq!(apply_errors(&row, &ErrorModel::fraction(0.0), 3), row);
    }

    #[test]
    fn fixed_model_flips_exactly_count_times_len_pixels() {
        let row = base_row(2048, 3);
        // Non-overlapping runs, each flipping len pixels: the Hamming
        // distance is exactly count * len.
        let noisy = apply_errors(&row, &ErrorModel::fixed(6, 4), 9);
        assert_eq!(hamming(&row, &noisy), 24);
    }

    #[test]
    fn errors_flip_in_both_directions() {
        // A half-full row must see both 1→0 and 0→1 flips eventually.
        let row = base_row(4096, 4);
        let noisy = apply_errors(&row, &ErrorModel::fraction(0.3), 5);
        let lost = rle::ops::sub(&row, &noisy).ones();
        let gained = rle::ops::sub(&noisy, &row).ones();
        assert!(lost > 0, "some foreground must be erased");
        assert!(gained > 0, "some background must be painted");
    }

    #[test]
    fn deterministic_by_seed() {
        let row = base_row(2048, 5);
        let m = ErrorModel::fraction(0.1);
        assert_eq!(apply_errors(&row, &m, 7), apply_errors(&row, &m, 7));
        assert_ne!(apply_errors(&row, &m, 7), apply_errors(&row, &m, 8));
    }

    #[test]
    fn error_run_lengths_respect_range() {
        // With run range (2,2) and a sparse base row, every difference
        // segment has length ≤ 2 unless two error runs merge — statistically
        // verify most are exactly 2 on an empty base.
        let empty = RleRow::new(10_000);
        let noisy = apply_errors(
            &empty,
            &ErrorModel::ByFraction {
                fraction: 0.01,
                run_len: (2, 2),
            },
            11,
        );
        for run in noisy.runs() {
            assert!(run.len() >= 2, "{run:?}"); // merges only grow runs
        }
    }

    #[test]
    fn image_level_injection() {
        let mut g = RowGenerator::new(GenParams::for_density(512, 0.3), 6);
        let img = g.next_image(8);
        let noisy = apply_errors_image(&img, &ErrorModel::fixed(2, 3), 1);
        assert_eq!(noisy.height(), 8);
        let sims = img.row_similarities(&noisy).unwrap();
        for s in &sims {
            assert_eq!(s.differing_pixels, 6, "each row gets its own 2×3 flips");
        }
    }

    #[test]
    fn zero_width_row_is_noop() {
        let empty = RleRow::new(0);
        assert_eq!(apply_errors(&empty, &ErrorModel::fraction(0.5), 1), empty);
    }

    #[test]
    fn fixed_count_larger_than_row_degrades_gracefully() {
        let row = RleRow::new(8);
        // Only a few non-overlapping length-4 runs fit in 8 pixels.
        let noisy = apply_errors(&row, &ErrorModel::fixed(10, 4), 2);
        assert_eq!(noisy.ones() % 4, 0);
        assert!(noisy.ones() <= 8);
    }
}
