//! Synthetic workload generators for the systolic RLE experiments.
//!
//! The paper evaluates with "a simulation program ... on a large number of
//! randomly generated input cases" (§5): first images built from runs of
//! 4–20 pixels with density controlled by the gap length, second images
//! derived by flipping error runs of 2–6 pixels in either direction. This
//! crate reproduces that generator ([`gen`], [`errors`]) plus synthetic
//! versions of the application domains the paper's introduction motivates:
//!
//! * [`pcb`] — printed-circuit-board layers vs. a CAD reference with
//!   injected manufacturing defects (the paper's own driving application);
//! * [`motion`] — frame sequences with moving objects (motion detection);
//! * [`glyphs`] — rasterised text (character recognition).
//!
//! Everything is seeded and deterministic: the same seed always yields the
//! same images, so every experiment in the harness is reproducible.
//! [`corpus`] bundles the standard named cases (the Figure-1 example, the
//! §5 workloads, inspection and motion scenarios) used across the
//! experiments, benches and integration tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod crash;
pub mod errors;
pub mod gen;
pub mod glyphs;
pub mod motion;
pub mod pcb;
pub mod sequence;

pub use crash::CrashSweep;
pub use errors::{apply_errors, ErrorModel};
pub use gen::{GenParams, RowGenerator};
pub use sequence::{FrameSequence, SequenceParams};
