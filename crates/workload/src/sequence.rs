//! Frame sequences with row-level churn control.
//!
//! The signature prefilter and the delta archive both exploit one property:
//! from one frame to the next, most rows are *bit-identical*. The [`motion`]
//! generator produces realistic motion, but its churn is emergent — you
//! can't dial "exactly 10% of rows change per frame". This module generates
//! sequences where that fraction is the control variable, which is what the
//! churn-sweep experiments need.
//!
//! Each frame is the previous frame with exactly `⌈churn · height⌉` rows
//! redrawn from the paper's §5 row generator ([`crate::gen`]); every other
//! row is *cloned*, so unchanged rows carry their cached signature forward
//! exactly as a real capture pipeline reusing row buffers would.
//!
//! [`motion`]: crate::motion

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::RleImage;

use crate::gen::{GenParams, RowGenerator};

/// Parameters for a churn-controlled frame sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SequenceParams {
    /// Row parameters for the base frame and all redrawn rows.
    pub gen: GenParams,
    /// Rows per frame.
    pub height: usize,
    /// Fraction of rows redrawn each frame, in `[0, 1]`. The exact count
    /// is `⌈churn · height⌉` (so any nonzero churn changes ≥ 1 row).
    pub churn: f64,
}

/// A seeded churn-controlled sequence generator. Frame 0 is fully random;
/// each later frame redraws a random subset of rows of the previous frame.
#[derive(Clone, Debug)]
pub struct FrameSequence {
    params: SequenceParams,
    rows: RowGenerator,
    rng: StdRng,
    current: RleImage,
    emitted: usize,
}

impl FrameSequence {
    /// Creates a sequence generator with a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ churn ≤ 1` and `height ≥ 1`.
    #[must_use]
    pub fn new(params: SequenceParams, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&params.churn),
            "churn must be in [0, 1]"
        );
        assert!(params.height >= 1, "height must be ≥ 1");
        let mut rows = RowGenerator::new(params.gen, seed);
        let current = rows.next_image(params.height);
        Self {
            params,
            rows,
            // Decorrelate row-subset choice from row content.
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            current,
            emitted: 0,
        }
    }

    /// The sequence parameters.
    #[must_use]
    pub fn params(&self) -> &SequenceParams {
        &self.params
    }

    /// Exact number of rows redrawn per frame transition.
    #[must_use]
    pub fn rows_per_step(&self) -> usize {
        ((self.params.churn * self.params.height as f64).ceil() as usize).min(self.params.height)
    }

    /// Produces the next frame. The first call returns the fully random
    /// base frame; later calls redraw [`rows_per_step`](Self::rows_per_step)
    /// distinct rows of the previous frame and clone the rest (preserving
    /// their cached signatures).
    pub fn next_frame(&mut self) -> RleImage {
        if self.emitted == 0 {
            self.emitted = 1;
            return self.current.clone();
        }
        let step = self.rows_per_step();
        // Partial Fisher–Yates over the row indices: the first `step`
        // entries are a uniform distinct sample.
        let mut indices: Vec<usize> = (0..self.params.height).collect();
        for i in 0..step {
            let j = self.rng.gen_range(i..self.params.height);
            indices.swap(i, j);
        }
        for &row in &indices[..step] {
            let fresh = self.rows.next_row();
            self.current
                .set_row(row, fresh)
                .expect("generator preserves width");
        }
        self.emitted += 1;
        self.current.clone()
    }

    /// Collects the next `n` frames.
    pub fn take_frames(&mut self, n: usize) -> Vec<RleImage> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(width: u32, height: usize, churn: f64) -> SequenceParams {
        SequenceParams {
            gen: GenParams::for_density(width, 0.3),
            height,
            churn,
        }
    }

    #[test]
    fn churn_bounds_rows_changed_per_frame() {
        let mut seq = FrameSequence::new(params(1024, 40, 0.10), 7);
        let mut prev = seq.next_frame();
        let step = seq.rows_per_step();
        assert_eq!(step, 4);
        for _ in 0..10 {
            let next = seq.next_frame();
            let changed = prev
                .rows()
                .iter()
                .zip(next.rows())
                .filter(|(a, b)| a != b)
                .count();
            // A redrawn row can coincidentally equal the old one, so
            // `changed` is at most `step`, never more.
            assert!(changed <= step, "changed {changed} > step {step}");
            assert!(changed > 0, "churn 10% must change something");
            prev = next;
        }
    }

    #[test]
    fn zero_churn_freezes_the_sequence() {
        let mut seq = FrameSequence::new(params(256, 8, 0.0), 3);
        let first = seq.next_frame();
        assert_eq!(seq.rows_per_step(), 0);
        for _ in 0..3 {
            assert_eq!(seq.next_frame(), first);
        }
    }

    #[test]
    fn unchanged_rows_are_bit_identical() {
        // The prefilter and archive rely on unchanged rows being exact
        // clones, not merely content-equivalent re-generations.
        let mut seq = FrameSequence::new(params(512, 20, 0.10), 11);
        let a = seq.next_frame();
        let b = seq.next_frame();
        let step = seq.rows_per_step();
        let same = a
            .rows()
            .iter()
            .zip(b.rows())
            .filter(|(x, y)| x == y)
            .count();
        assert!(same >= a.height() - step, "same {same}, step {step}");
        // A warmed row's signature cache survives the clone into the
        // emitted frame, so downstream consumers hash each row once.
        let _ = b.rows()[0].signature();
        let copy = b.clone();
        assert!(copy.rows()[0].cached_signature().is_some());
    }

    #[test]
    fn same_seed_same_sequence() {
        let p = params(512, 16, 0.25);
        let mut s1 = FrameSequence::new(p, 42);
        let mut s2 = FrameSequence::new(p, 42);
        for _ in 0..5 {
            assert_eq!(s1.next_frame(), s2.next_frame());
        }
        let mut s3 = FrameSequence::new(p, 43);
        let _ = s3.next_frame();
        assert_ne!(s1.next_frame(), s3.next_frame());
    }

    #[test]
    fn full_churn_redraws_every_row() {
        let mut seq = FrameSequence::new(params(256, 6, 1.0), 5);
        assert_eq!(seq.rows_per_step(), 6);
        let a = seq.next_frame();
        let b = seq.next_frame();
        let changed = a
            .rows()
            .iter()
            .zip(b.rows())
            .filter(|(x, y)| x != y)
            .count();
        assert!(changed >= 4, "full churn should change most rows");
    }
}
