//! Named, reproducible workload suites.
//!
//! Experiments, benches and examples that want "the paper's workload" or
//! "a PCB inspection scenario" without re-stating parameters pull named
//! cases from here. Every case is a pure function of its name and seed.

use crate::errors::{apply_errors_rng, ErrorModel};
use crate::gen::{GenParams, RowGenerator};
use crate::motion::{Scene, SceneParams};
use crate::pcb::{inspection_pair, typical_defects, PcbParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::{RleImage, RleRow};

/// A row pair plus provenance, ready to feed to any differencing algorithm.
#[derive(Clone, Debug)]
pub struct RowCase {
    /// Case name (stable across versions).
    pub name: &'static str,
    /// First row.
    pub a: RleRow,
    /// Second row.
    pub b: RleRow,
}

/// An image pair plus provenance.
#[derive(Clone, Debug)]
pub struct ImageCase {
    /// Case name (stable across versions).
    pub name: &'static str,
    /// First image.
    pub a: RleImage,
    /// Second image.
    pub b: RleImage,
}

/// The Figure-1 worked example from the paper.
#[must_use]
pub fn figure1() -> RowCase {
    RowCase {
        name: "figure1",
        a: RleRow::from_pairs(40, &[(10, 3), (16, 2), (23, 2), (27, 3)]).unwrap(),
        b: RleRow::from_pairs(40, &[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)]).unwrap(),
    }
}

/// The paper's §5 workload at a given width and realized error fraction.
#[must_use]
pub fn paper_rows(width: u32, error_fraction: f64, seed: u64) -> RowCase {
    let params = GenParams::for_density(width, 0.3);
    let mut rng = StdRng::seed_from_u64(seed);
    let a = RowGenerator::new(params, rng.gen()).next_row();
    let b = apply_errors_rng(&a, &ErrorModel::fraction(error_fraction), &mut rng);
    RowCase {
        name: "paper_rows",
        a,
        b,
    }
}

/// Table 1's fixed-error regime: `count` error runs of `len` px.
#[must_use]
pub fn fixed_error_rows(width: u32, count: usize, len: u32, seed: u64) -> RowCase {
    let params = GenParams::for_density(width, 0.3);
    let mut rng = StdRng::seed_from_u64(seed);
    let a = RowGenerator::new(params, rng.gen()).next_row();
    let b = apply_errors_rng(&a, &ErrorModel::fixed(count, len), &mut rng);
    RowCase {
        name: "fixed_error_rows",
        a,
        b,
    }
}

/// A PCB reference/scan pair with the typical defect set.
#[must_use]
pub fn pcb_inspection(seed: u64) -> ImageCase {
    let (a, b) = inspection_pair(&PcbParams::default(), &typical_defects(), seed);
    ImageCase {
        name: "pcb_inspection",
        a,
        b,
    }
}

/// Two consecutive frames of a default motion scene.
#[must_use]
pub fn motion_frames(seed: u64) -> ImageCase {
    let scene = Scene::new(SceneParams::default(), seed);
    ImageCase {
        name: "motion_frames",
        a: scene.frame_rle(0),
        b: scene.frame_rle(1),
    }
}

/// The standard regression suite: a spread of row cases covering the
/// regimes the paper discusses (identical, similar, dissimilar, dense,
/// sparse, adversarial interleavings).
#[must_use]
pub fn regression_rows(seed: u64) -> Vec<RowCase> {
    let mut cases = vec![figure1()];
    cases.push(paper_rows(10_000, 0.02, seed));
    cases.push(paper_rows(10_000, 0.35, seed ^ 1));
    cases.push(fixed_error_rows(2_048, 6, 4, seed ^ 2));
    // Identical pair.
    let base = paper_rows(4_096, 0.0, seed ^ 3);
    cases.push(RowCase {
        name: "identical",
        a: base.a.clone(),
        b: base.a.clone(),
    });
    // Fully interleaved disjoint runs (the k1 + k2 stressor).
    let inter_a =
        RleRow::from_pairs(4_096, &(0..250).map(|i| (i * 16, 4)).collect::<Vec<_>>()).unwrap();
    let inter_b = RleRow::from_pairs(
        4_096,
        &(0..250).map(|i| (i * 16 + 8, 4)).collect::<Vec<_>>(),
    )
    .unwrap();
    cases.push(RowCase {
        name: "interleaved",
        a: inter_a,
        b: inter_b,
    });
    // One side empty.
    let one = paper_rows(4_096, 0.1, seed ^ 4);
    cases.push(RowCase {
        name: "vs_empty",
        a: one.a,
        b: RleRow::new(4_096),
    });
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_the_paper() {
        let c = figure1();
        assert_eq!(rle::ops::xor(&c.a, &c.b).run_count(), 5);
    }

    #[test]
    fn cases_are_deterministic() {
        let x = paper_rows(2_000, 0.05, 42);
        let y = paper_rows(2_000, 0.05, 42);
        assert_eq!(x.a, y.a);
        assert_eq!(x.b, y.b);
        let p1 = pcb_inspection(7);
        let p2 = pcb_inspection(7);
        assert_eq!(p1.a, p2.a);
        assert_eq!(p1.b, p2.b);
    }

    #[test]
    fn regression_suite_covers_regimes() {
        let cases = regression_rows(1);
        assert!(cases.len() >= 7);
        let names: Vec<_> = cases.iter().map(|c| c.name).collect();
        for needle in ["figure1", "identical", "interleaved", "vs_empty"] {
            assert!(names.contains(&needle), "{names:?}");
        }
        // Every case must be diffable and agree with the sequential merge.
        for case in &cases {
            let (diff, stats) = systolic_core_check(&case.a, &case.b);
            assert_eq!(diff, rle::ops::xor(&case.a, &case.b), "{}", case.name);
            assert!(stats.iterations <= (case.a.run_count() + case.b.run_count()) as u64);
        }
    }

    // Tiny local shim: workload cannot depend on systolic-core (dependency
    // direction), so the dev-dependency is used inside tests only.
    fn systolic_core_check(a: &RleRow, b: &RleRow) -> (RleRow, systolic_core::ArrayStats) {
        systolic_core::systolic_xor(a, b).unwrap()
    }

    #[test]
    fn motion_case_is_similar_pair() {
        let c = motion_frames(3);
        let sims = c.a.row_similarities(&c.b).unwrap();
        let total: u64 = sims.iter().map(|s| s.differing_pixels).sum();
        assert!(total > 0);
        let area = u64::from(c.a.width()) * c.a.height() as u64;
        assert!(total < area / 10);
    }
}
