//! Synthetic printed-circuit-board layers — the paper's driving application.
//!
//! Real PCB scans and CAD data are proprietary, so we substitute a
//! generator that preserves the property the paper's speedup depends on:
//! a *reference* layer (the CAD design) and a *scan* layer that is nearly
//! identical except for a handful of small manufacturing defects. The
//! reference-based inspection step is then `scan XOR reference`, whose
//! result is small and localised exactly as in the paper's "highly similar
//! images" regime.
//!
//! Layers are Manhattan-style: horizontal/vertical traces, rectangular
//! pads, and via dots. Defects follow the classic inspection taxonomy:
//! opens (missing copper), shorts (bridges between nets), and spurious
//! copper blobs.

use bitimg::convert::encode;
use bitimg::Bitmap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::RleImage;

/// Parameters for the synthetic board generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcbParams {
    /// Board width in pixels.
    pub width: u32,
    /// Board height in pixels.
    pub height: usize,
    /// Number of horizontal routing traces.
    pub h_traces: usize,
    /// Number of vertical routing traces.
    pub v_traces: usize,
    /// Trace width in pixels.
    pub trace_width: u32,
    /// Number of pads (larger rectangles).
    pub pads: usize,
    /// Number of vias (small squares).
    pub vias: usize,
}

impl Default for PcbParams {
    fn default() -> Self {
        Self {
            width: 1024,
            height: 256,
            h_traces: 24,
            v_traces: 24,
            trace_width: 3,
            pads: 16,
            vias: 40,
        }
    }
}

/// A defect to inject into a scan of the reference layer — the classic
/// inspection taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Defect {
    /// Missing copper: a gap cut out of the artwork.
    Open {
        /// Gap size in pixels (square).
        size: u32,
    },
    /// A copper bridge: a small filled rectangle added.
    Short {
        /// Bridge size in pixels (square).
        size: u32,
    },
    /// A spurious copper blob away from the artwork.
    Spur {
        /// Blob size in pixels (square).
        size: u32,
    },
    /// A tiny void strictly inside copper (etching bubble).
    Pinhole {
        /// Hole size in pixels (square).
        size: u32,
    },
    /// A notch bitten out of a copper edge.
    Mousebite {
        /// Notch size in pixels (square).
        size: u32,
    },
}

/// Draws the reference (CAD) layer: a grid of pads, Manhattan (L-shaped)
/// routes connecting random pad pairs with vias at the bends, plus some
/// free-running traces — the visual grammar of a real single-layer board.
#[must_use]
pub fn reference_layer(params: &PcbParams, seed: u64) -> Bitmap {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bm = Bitmap::new(params.width, params.height);
    if params.width < 24 || params.height < 24 {
        return bm;
    }
    let tw = params.trace_width.max(1);

    // Pad grid: place pads on a jittered lattice so routes have anchors.
    let mut pad_centers: Vec<(u32, usize)> = Vec::new();
    for _ in 0..params.pads {
        let x = rng.gen_range(6..params.width.saturating_sub(16));
        let y = rng.gen_range(6..params.height.saturating_sub(16));
        bm.fill_rect(x, y, 10, 10, true);
        pad_centers.push((x + 5, y + 5));
    }

    // Nets: L-shaped routes between random pad pairs, via dot at the bend.
    let routes = (params.h_traces + params.v_traces) / 2;
    for _ in 0..routes {
        if pad_centers.len() < 2 {
            break;
        }
        let a = pad_centers[rng.gen_range(0..pad_centers.len())];
        let b = pad_centers[rng.gen_range(0..pad_centers.len())];
        let (x0, x1) = (a.0.min(b.0), a.0.max(b.0));
        let (y0, y1) = (a.1.min(b.1), a.1.max(b.1));
        // Horizontal leg at a's row, vertical leg at b's column.
        bm.fill_rect(x0, a.1, x1 - x0 + tw, tw as usize, true);
        bm.fill_rect(b.0, y0, tw, y1 - y0 + tw as usize, true);
        // Via at the corner.
        bm.fill_rect(
            b.0.saturating_sub(1),
            a.1.saturating_sub(1),
            tw + 2,
            tw as usize + 2,
            true,
        );
    }

    // Free traces (bus lines) for texture.
    for _ in 0..params.h_traces / 2 {
        let y = rng.gen_range(0..params.height.saturating_sub(tw as usize));
        let x0 = rng.gen_range(0..params.width / 2);
        let len = rng.gen_range(params.width / 4..params.width - x0);
        bm.fill_rect(x0, y, len, tw as usize, true);
    }
    for _ in 0..params.v_traces / 2 {
        let x = rng.gen_range(0..params.width.saturating_sub(tw));
        let y0 = rng.gen_range(0..params.height / 2);
        let len = rng.gen_range(params.height / 4..params.height - y0);
        bm.fill_rect(x, y0, tw, len, true);
    }
    for _ in 0..params.vias {
        let x = rng.gen_range(0..params.width.saturating_sub(4));
        let y = rng.gen_range(0..params.height.saturating_sub(4));
        bm.fill_rect(x, y, 3, 3, true);
    }
    bm
}

/// Produces a scan: the reference plus the given defects at random
/// positions. Returns the scan and the number of defects applied.
#[must_use]
pub fn scan_with_defects(reference: &Bitmap, defects: &[Defect], seed: u64) -> Bitmap {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scan = reference.clone();
    for defect in defects {
        match *defect {
            Defect::Open { size } => {
                // Cut copper where copper exists: search a few times for a
                // foreground spot so opens actually remove material.
                if let Some((x, y)) = find_pixel(&scan, &mut rng, true) {
                    scan.fill_rect(x, y, size, size as usize, false);
                }
            }
            Defect::Short { size } | Defect::Spur { size } => {
                if let Some((x, y)) = find_pixel(&scan, &mut rng, false) {
                    scan.fill_rect(x, y, size, size as usize, true);
                }
            }
            Defect::Pinhole { size } => {
                // A void strictly inside copper: find a foreground pixel
                // whose neighbourhood is solid, then clear a smaller hole.
                if let Some((x, y)) = find_interior(&scan, &mut rng, size) {
                    scan.fill_rect(x, y, size, size as usize, false);
                }
            }
            Defect::Mousebite { size } => {
                // A notch at a copper edge: a foreground pixel with a
                // background neighbour.
                if let Some((x, y)) = find_edge(&scan, &mut rng) {
                    scan.fill_rect(
                        x.saturating_sub(size / 2),
                        y.saturating_sub(size as usize / 2),
                        size,
                        size as usize,
                        false,
                    );
                }
            }
        }
    }
    scan
}

/// A foreground pixel whose `size`-square neighbourhood is solid copper.
fn find_interior(bm: &Bitmap, rng: &mut StdRng, size: u32) -> Option<(u32, usize)> {
    if bm.width() <= size || bm.height() <= size as usize {
        return None;
    }
    'outer: for _ in 0..512 {
        let x = rng.gen_range(0..bm.width() - size);
        let y = rng.gen_range(0..bm.height() - size as usize);
        for dy in 0..size as usize {
            for dx in 0..size {
                if !bm.get(x + dx, y + dy) {
                    continue 'outer;
                }
            }
        }
        return Some((x, y));
    }
    None
}

/// A foreground pixel with at least one background 4-neighbour.
fn find_edge(bm: &Bitmap, rng: &mut StdRng) -> Option<(u32, usize)> {
    if bm.width() < 3 || bm.height() < 3 {
        return None;
    }
    for _ in 0..512 {
        let x = rng.gen_range(1..bm.width() - 1);
        let y = rng.gen_range(1..bm.height() - 1);
        if bm.get(x, y)
            && (!bm.get(x - 1, y) || !bm.get(x + 1, y) || !bm.get(x, y - 1) || !bm.get(x, y + 1))
        {
            return Some((x, y));
        }
    }
    None
}

fn find_pixel(bm: &Bitmap, rng: &mut StdRng, foreground: bool) -> Option<(u32, usize)> {
    if bm.width() == 0 || bm.height() == 0 {
        return None;
    }
    for _ in 0..256 {
        let x = rng.gen_range(0..bm.width());
        let y = rng.gen_range(0..bm.height());
        if bm.get(x, y) == foreground {
            return Some((x, y));
        }
    }
    None
}

/// A complete inspection scenario: reference and scan, RLE-encoded.
#[must_use]
pub fn inspection_pair(params: &PcbParams, defects: &[Defect], seed: u64) -> (RleImage, RleImage) {
    let reference = reference_layer(params, seed);
    let scan = scan_with_defects(&reference, defects, seed ^ 0x9E37_79B9_7F4A_7C15);
    (encode(&reference), encode(&scan))
}

/// A typical small defect set: two opens, one short, one spur.
#[must_use]
pub fn typical_defects() -> Vec<Defect> {
    vec![
        Defect::Open { size: 4 },
        Defect::Open { size: 3 },
        Defect::Short { size: 5 },
        Defect::Spur { size: 3 },
    ]
}

/// The full defect taxonomy, one of each kind — for exercising every
/// classifier branch.
#[must_use]
pub fn all_defect_kinds() -> Vec<Defect> {
    vec![
        Defect::Open { size: 4 },
        Defect::Short { size: 4 },
        Defect::Spur { size: 3 },
        Defect::Pinhole { size: 2 },
        Defect::Mousebite { size: 3 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_layer_is_plausible() {
        let bm = reference_layer(&PcbParams::default(), 1);
        let d = bm.density();
        assert!(d > 0.02 && d < 0.6, "density {d}");
    }

    #[test]
    fn deterministic_by_seed() {
        let p = PcbParams::default();
        assert_eq!(reference_layer(&p, 7), reference_layer(&p, 7));
        assert_ne!(reference_layer(&p, 7), reference_layer(&p, 8));
    }

    #[test]
    fn defects_change_little() {
        let p = PcbParams::default();
        let reference = reference_layer(&p, 2);
        let scan = scan_with_defects(&reference, &typical_defects(), 3);
        let diff = bitimg::ops::hamming(&reference, &scan);
        assert!(diff > 0, "defects must change something");
        let total = u64::from(p.width) * p.height as u64;
        assert!(
            (diff as f64) < total as f64 * 0.001,
            "defects must stay tiny: {diff} of {total}"
        );
    }

    #[test]
    fn opens_remove_and_shorts_add() {
        let p = PcbParams::default();
        let reference = reference_layer(&p, 4);
        let opened = scan_with_defects(&reference, &[Defect::Open { size: 4 }], 5);
        assert!(opened.count_ones() < reference.count_ones());
        let shorted = scan_with_defects(&reference, &[Defect::Short { size: 4 }], 5);
        assert!(shorted.count_ones() > reference.count_ones());
    }

    #[test]
    fn inspection_pair_is_rle_and_similar() {
        let (reference, scan) = inspection_pair(&PcbParams::default(), &typical_defects(), 6);
        assert_eq!(reference.width(), scan.width());
        assert_eq!(reference.height(), scan.height());
        let sims = reference.row_similarities(&scan).unwrap();
        let differing_rows = sims.iter().filter(|s| s.differing_pixels > 0).count();
        // Defects are local: only a handful of rows differ.
        assert!(differing_rows > 0);
        assert!(
            differing_rows < reference.height() / 4,
            "{differing_rows} rows differ"
        );
    }

    #[test]
    fn pinhole_and_mousebite_remove_copper() {
        let p = PcbParams::default();
        let reference = reference_layer(&p, 11);
        let pinholed = scan_with_defects(&reference, &[Defect::Pinhole { size: 2 }], 12);
        assert!(pinholed.count_ones() < reference.count_ones());
        // A pinhole's void sits strictly inside copper: the removed pixels'
        // bounding neighbourhood in the reference is solid.
        let bitten = scan_with_defects(&reference, &[Defect::Mousebite { size: 3 }], 13);
        assert!(bitten.count_ones() < reference.count_ones());
    }

    #[test]
    fn all_defect_kinds_apply() {
        let p = PcbParams::default();
        let reference = reference_layer(&p, 14);
        let scan = scan_with_defects(&reference, &all_defect_kinds(), 15);
        let diff = bitimg::ops::hamming(&reference, &scan);
        assert!(diff > 0);
        assert!(diff < 300, "all five defects stay local: {diff}");
    }

    #[test]
    fn routes_connect_pads() {
        // With routing on, the reference must contain long horizontal and
        // vertical straight segments (the legs), not just pads.
        let p = PcbParams::default();
        let bm = reference_layer(&p, 16);
        let img = encode(&bm);
        let longest = img
            .rows()
            .iter()
            .flat_map(|r| r.runs())
            .map(|r| r.len())
            .max()
            .unwrap();
        assert!(
            longest > 40,
            "expected long route legs, longest run {longest}"
        );
    }

    #[test]
    fn no_defects_means_identical_scan() {
        let p = PcbParams::default();
        let reference = reference_layer(&p, 9);
        let scan = scan_with_defects(&reference, &[], 10);
        assert_eq!(scan, reference);
    }
}
