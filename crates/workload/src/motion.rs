//! Moving-object frame sequences — the motion-detection workload.
//!
//! The paper's introduction cites "motion detection for safety and
//! security" as a binary-image application; frame differencing (XOR of
//! consecutive thresholded frames) is its classic kernel. This generator
//! produces a sequence of frames with rectangular objects drifting at
//! constant velocity, so consecutive frames are highly similar — again the
//! regime where the systolic algorithm shines.

use bitimg::convert::encode;
use bitimg::Bitmap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::RleImage;

/// One moving object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MovingObject {
    /// Left edge at frame 0 (may be fractional for slow drifts).
    pub x: f64,
    /// Top edge at frame 0.
    pub y: f64,
    /// Horizontal velocity in pixels/frame.
    pub vx: f64,
    /// Vertical velocity in pixels/frame.
    pub vy: f64,
    /// Object width.
    pub w: u32,
    /// Object height.
    pub h: usize,
}

/// Scene parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SceneParams {
    /// Frame width.
    pub width: u32,
    /// Frame height.
    pub height: usize,
    /// Number of moving objects.
    pub objects: usize,
    /// Maximum speed component in pixels/frame.
    pub max_speed: f64,
}

impl Default for SceneParams {
    fn default() -> Self {
        Self {
            width: 640,
            height: 200,
            objects: 5,
            max_speed: 3.0,
        }
    }
}

/// A deterministic scene of moving objects.
#[derive(Clone, Debug)]
pub struct Scene {
    params: SceneParams,
    objects: Vec<MovingObject>,
}

impl Scene {
    /// Creates a random scene.
    #[must_use]
    pub fn new(params: SceneParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..params.objects)
            .map(|_| MovingObject {
                x: rng.gen_range(0.0..f64::from(params.width) * 0.8),
                y: rng.gen_range(0.0..params.height as f64 * 0.8),
                vx: rng.gen_range(-params.max_speed..=params.max_speed),
                vy: rng.gen_range(-params.max_speed..=params.max_speed),
                w: rng.gen_range(8..40),
                h: rng.gen_range(8..40),
            })
            .collect();
        Self { params, objects }
    }

    /// The scene's objects.
    #[must_use]
    pub fn objects(&self) -> &[MovingObject] {
        &self.objects
    }

    /// Renders frame `t` (objects wrap around the frame edges).
    #[must_use]
    pub fn frame(&self, t: usize) -> Bitmap {
        let mut bm = Bitmap::new(self.params.width, self.params.height);
        let (w, h) = (f64::from(self.params.width), self.params.height as f64);
        for obj in &self.objects {
            let x = (obj.x + obj.vx * t as f64).rem_euclid(w);
            let y = (obj.y + obj.vy * t as f64).rem_euclid(h);
            bm.fill_rect(x as u32, y as usize, obj.w, obj.h, true);
        }
        bm
    }

    /// Renders frame `t` RLE-encoded.
    #[must_use]
    pub fn frame_rle(&self, t: usize) -> RleImage {
        encode(&self.frame(t))
    }

    /// Renders a whole sequence of frames RLE-encoded.
    #[must_use]
    pub fn sequence(&self, frames: usize) -> Vec<RleImage> {
        (0..frames).map(|t| self.frame_rle(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_deterministic() {
        let s1 = Scene::new(SceneParams::default(), 1);
        let s2 = Scene::new(SceneParams::default(), 1);
        assert_eq!(s1.frame(3), s2.frame(3));
    }

    #[test]
    fn objects_actually_move() {
        let scene = Scene::new(SceneParams::default(), 2);
        let f0 = scene.frame(0);
        let f5 = scene.frame(5);
        assert_ne!(f0, f5);
    }

    #[test]
    fn consecutive_frames_are_similar() {
        let scene = Scene::new(SceneParams::default(), 3);
        let f0 = scene.frame(0);
        let f1 = scene.frame(1);
        let diff = bitimg::ops::hamming(&f0, &f1);
        let area = u64::from(f0.width()) * f0.height() as u64;
        assert!(diff > 0);
        assert!((diff as f64) < area as f64 * 0.05, "diff {diff} of {area}");
    }

    #[test]
    fn static_scene_when_speed_zero() {
        let scene = Scene::new(
            SceneParams {
                max_speed: 0.0,
                ..Default::default()
            },
            4,
        );
        assert_eq!(scene.frame(0), scene.frame(10));
    }

    #[test]
    fn sequence_has_requested_length_and_dims() {
        let scene = Scene::new(SceneParams::default(), 5);
        let seq = scene.sequence(4);
        assert_eq!(seq.len(), 4);
        for frame in &seq {
            assert_eq!(frame.width(), 640);
            assert_eq!(frame.height(), 200);
        }
    }

    #[test]
    fn objects_wrap_around_edges() {
        let scene = Scene::new(
            SceneParams {
                objects: 1,
                max_speed: 3.0,
                ..Default::default()
            },
            6,
        );
        // Far-future frames stay in-bounds and non-empty thanks to wrap.
        let f = scene.frame(10_000);
        assert!(f.count_ones() > 0);
    }
}
