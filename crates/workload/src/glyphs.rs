//! Rasterised text — the character-recognition workload.
//!
//! The paper's introduction lists character recognition among the
//! applications of binary image differencing: comparing a scanned glyph to
//! each template glyph, the smallest difference wins. This module provides
//! a classic 5×7 bitmap font, rendering at integer scale, and perturbation
//! so that template-matching scenarios can be generated deterministically.

use bitimg::convert::encode;
use bitimg::Bitmap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::RleImage;

/// Glyph cell width in the base font.
pub const GLYPH_W: u32 = 5;
/// Glyph cell height in the base font.
pub const GLYPH_H: usize = 7;

/// Returns the 7 rows (5 LSBs used, MSB-first within the 5) of a glyph, or
/// `None` for unsupported characters. Supported: `A`–`Z`, `0`–`9`, space,
/// `.`, `-`.
#[must_use]
#[rustfmt::skip]
pub fn glyph(c: char) -> Option<[u8; 7]> {
    Some(match c.to_ascii_uppercase() {
        'A' => [0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001],
        'B' => [0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110],
        'C' => [0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110],
        'D' => [0b11110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b11110],
        'E' => [0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111],
        'F' => [0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000],
        'G' => [0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111],
        'H' => [0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001],
        'I' => [0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110],
        'J' => [0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100],
        'K' => [0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001],
        'L' => [0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111],
        'M' => [0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001],
        'N' => [0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001],
        'O' => [0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110],
        'P' => [0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000],
        'Q' => [0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101],
        'R' => [0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001],
        'S' => [0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110],
        'T' => [0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100],
        'U' => [0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110],
        'V' => [0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100],
        'W' => [0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b10101, 0b01010],
        'X' => [0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001],
        'Y' => [0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100, 0b00100],
        'Z' => [0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111],
        '0' => [0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110],
        '1' => [0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110],
        '2' => [0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111],
        '3' => [0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110],
        '4' => [0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010],
        '5' => [0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110],
        '6' => [0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110],
        '7' => [0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000],
        '8' => [0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110],
        '9' => [0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100],
        ' ' => [0; 7],
        '.' => [0, 0, 0, 0, 0, 0b00100, 0b00100],
        '-' => [0, 0, 0, 0b11111, 0, 0, 0],
        _ => return None,
    })
}

/// Renders a string at integer `scale` with one scaled column of spacing
/// between glyphs and a one-cell margin around the text. Unsupported
/// characters render as blanks.
#[must_use]
pub fn render(text: &str, scale: u32) -> Bitmap {
    assert!(scale >= 1, "scale must be at least 1");
    let chars: Vec<char> = text.chars().collect();
    let cell_w = (GLYPH_W + 1) * scale;
    let margin = scale;
    let width = margin * 2 + cell_w * chars.len() as u32;
    let height = (margin as usize) * 2 + GLYPH_H * scale as usize;
    let mut bm = Bitmap::new(width.max(1), height);
    for (ci, &c) in chars.iter().enumerate() {
        let Some(rows) = glyph(c) else { continue };
        let ox = margin + cell_w * ci as u32;
        for (ry, bits) in rows.iter().enumerate() {
            for rx in 0..GLYPH_W {
                if bits & (1 << (GLYPH_W - 1 - rx)) != 0 {
                    bm.fill_rect(
                        ox + rx * scale,
                        margin as usize + ry * scale as usize,
                        scale,
                        scale as usize,
                        true,
                    );
                }
            }
        }
    }
    bm
}

/// Renders a string RLE-encoded.
#[must_use]
pub fn render_rle(text: &str, scale: u32) -> RleImage {
    encode(&render(text, scale))
}

/// Flips `count` random pixels — scanner noise for template-matching
/// scenarios.
#[must_use]
pub fn perturb(bm: &Bitmap, count: usize, seed: u64) -> Bitmap {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = bm.clone();
    if bm.width() == 0 || bm.height() == 0 {
        return out;
    }
    for _ in 0..count {
        let x = rng.gen_range(0..bm.width());
        let y = rng.gen_range(0..bm.height());
        out.set(x, y, !out.get(x, y));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_advertised_char_has_a_glyph() {
        for c in ('A'..='Z').chain('0'..='9').chain([' ', '.', '-']) {
            assert!(glyph(c).is_some(), "missing glyph {c:?}");
        }
        assert!(glyph('@').is_none());
        assert_eq!(glyph('a'), glyph('A'), "case-insensitive");
    }

    #[test]
    fn glyphs_fit_in_five_columns() {
        for c in ('A'..='Z').chain('0'..='9') {
            for row in glyph(c).unwrap() {
                assert_eq!(row & !0b11111, 0, "glyph {c:?} exceeds 5 columns");
            }
        }
    }

    #[test]
    fn render_dimensions() {
        let bm = render("AB", 2);
        assert_eq!(bm.width(), 2 * 2 + (5 + 1) * 2 * 2);
        assert_eq!(bm.height(), 2 * 2 + 7 * 2);
        assert!(bm.count_ones() > 0);
    }

    #[test]
    fn scaling_multiplies_ink() {
        let s1 = render("E", 1).count_ones();
        let s3 = render("E", 3).count_ones();
        assert_eq!(s3, s1 * 9);
    }

    #[test]
    fn different_letters_differ() {
        assert_ne!(render("O", 2), render("Q", 2));
        // ... but only slightly: O and Q share most ink.
        let diff = bitimg::ops::hamming(&render("O", 2), &render("Q", 2));
        let ink = render("O", 2).count_ones();
        assert!(diff < ink, "O vs Q differ by {diff}, ink {ink}");
    }

    #[test]
    fn perturb_flips_at_most_count() {
        let bm = render("HELLO", 2);
        let noisy = perturb(&bm, 10, 3);
        let diff = bitimg::ops::hamming(&bm, &noisy);
        assert!(diff > 0 && diff <= 10, "diff {diff}");
    }

    #[test]
    fn perturb_is_deterministic() {
        let bm = render("HI", 1);
        assert_eq!(perturb(&bm, 5, 9), perturb(&bm, 5, 9));
    }

    #[test]
    fn render_rle_round_trips() {
        let text = "PCB-99";
        let dense = render(text, 2);
        let rle = render_rle(text, 2);
        assert_eq!(bitimg::convert::decode(&rle), dense);
    }

    #[test]
    fn unsupported_chars_render_blank() {
        let with = render("A@B", 1);
        let without = render("A B", 1);
        assert_eq!(with, without);
    }
}
