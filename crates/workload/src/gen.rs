//! The paper's random-image generator.
//!
//! §5: "The on pixels in the first image were chosen in runs of length 4 to
//! 20 ... The percentage of on pixels in the first image ... was varied by
//! changing the average distance between the runs."
//!
//! A row is produced by alternating gaps and runs: run lengths uniform in
//! `run_len`, gap lengths uniform in `[1, 2·mean_gap − 1]` (mean exactly
//! `mean_gap`). [`GenParams::for_density`] solves for the mean gap that
//! yields a requested foreground density.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::{Pixel, RleImage, RleRow, Run};

/// Parameters of the paper's row generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenParams {
    /// Row width `b` in pixels.
    pub width: Pixel,
    /// Inclusive range of run lengths; the paper uses `(4, 20)`.
    pub run_len: (Pixel, Pixel),
    /// Mean background gap between runs (≥ 1).
    pub mean_gap: f64,
}

impl GenParams {
    /// The paper's run-length range.
    pub const PAPER_RUN_LEN: (Pixel, Pixel) = (4, 20);

    /// Parameters matching the paper's §5 setup at a given density:
    /// run lengths 4–20, mean gap solved so the expected foreground
    /// fraction equals `density`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < density < 1`.
    #[must_use]
    pub fn for_density(width: Pixel, density: f64) -> Self {
        Self::with_runs(width, Self::PAPER_RUN_LEN, density)
    }

    /// Like [`GenParams::for_density`] with an explicit run-length range.
    #[must_use]
    pub fn with_runs(width: Pixel, run_len: (Pixel, Pixel), density: f64) -> Self {
        assert!(density > 0.0 && density < 1.0, "density must be in (0, 1)");
        assert!(
            run_len.0 >= 1 && run_len.0 <= run_len.1,
            "bad run length range"
        );
        let mean_run = f64::from(run_len.0 + run_len.1) / 2.0;
        // density = mean_run / (mean_run + mean_gap)  ⇒
        let mean_gap = (mean_run * (1.0 - density) / density).max(1.0);
        Self {
            width,
            run_len,
            mean_gap,
        }
    }

    /// Expected foreground density of rows drawn from these parameters.
    #[must_use]
    pub fn expected_density(&self) -> f64 {
        let mean_run = f64::from(self.run_len.0 + self.run_len.1) / 2.0;
        mean_run / (mean_run + self.mean_gap)
    }

    /// Expected number of runs per row.
    #[must_use]
    pub fn expected_runs(&self) -> f64 {
        let mean_run = f64::from(self.run_len.0 + self.run_len.1) / 2.0;
        f64::from(self.width) / (mean_run + self.mean_gap)
    }
}

/// A seeded stream of random rows with fixed parameters.
#[derive(Clone, Debug)]
pub struct RowGenerator {
    params: GenParams,
    rng: StdRng,
}

impl RowGenerator {
    /// Creates a generator with a fixed seed.
    #[must_use]
    pub fn new(params: GenParams, seed: u64) -> Self {
        Self {
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The generator's parameters.
    #[must_use]
    pub fn params(&self) -> &GenParams {
        &self.params
    }

    /// Draws the next random row. Rows are canonical (gaps ≥ 1).
    pub fn next_row(&mut self) -> RleRow {
        let p = &self.params;
        let mut row = RleRow::new(p.width);
        // Uniform gap in [1, 2·mean_gap − 1] has mean mean_gap; clamp the
        // top so tiny means still work.
        let gap_hi = ((2.0 * p.mean_gap - 1.0).round() as Pixel).max(1);
        let mut pos: Pixel = self
            .rng
            .gen_range(0..=gap_hi.min(p.width.saturating_sub(1)).max(1));
        loop {
            let len = self.rng.gen_range(p.run_len.0..=p.run_len.1);
            if u64::from(pos) + u64::from(len) > u64::from(p.width) {
                break;
            }
            row.push_run(Run::new(pos, len))
                .expect("generator emits ordered runs");
            let gap = self.rng.gen_range(1..=gap_hi);
            let Some(next) = pos.checked_add(len).and_then(|p| p.checked_add(gap)) else {
                break;
            };
            if next >= p.width {
                break;
            }
            pos = next;
        }
        row
    }

    /// Draws an image of `height` rows.
    pub fn next_image(&mut self, height: usize) -> RleImage {
        let rows = (0..height).map(|_| self.next_row()).collect();
        RleImage::from_rows(self.params.width, rows).expect("generator preserves width")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_valid_and_canonical() {
        let mut g = RowGenerator::new(GenParams::for_density(2048, 0.3), 1);
        for _ in 0..50 {
            let row = g.next_row();
            assert!(row.is_canonical());
            assert!(row.run_count() > 0);
            for run in row.runs() {
                assert!(run.len() >= 4 && run.len() <= 20, "{run:?}");
            }
        }
    }

    #[test]
    fn density_is_approximately_requested() {
        for target in [0.1, 0.3, 0.5, 0.7] {
            let mut g = RowGenerator::new(GenParams::for_density(100_000, target), 7);
            let row = g.next_row();
            let got = row.density();
            assert!((got - target).abs() < 0.05, "target {target}, got {got:.3}");
        }
    }

    #[test]
    fn figure5_setup_run_count() {
        // "the image size is 10,000 pixels with approximately 250 runs in
        // the original image, which translates to a density of 30%".
        let params = GenParams::for_density(10_000, 0.3);
        assert!(
            (params.expected_runs() - 250.0).abs() < 15.0,
            "{}",
            params.expected_runs()
        );
        let mut g = RowGenerator::new(params, 3);
        let mut total = 0usize;
        let trials = 30;
        for _ in 0..trials {
            total += g.next_row().run_count();
        }
        let mean = total as f64 / f64::from(trials);
        assert!((mean - 250.0).abs() < 25.0, "mean runs {mean}");
    }

    #[test]
    fn same_seed_same_rows() {
        let params = GenParams::for_density(4096, 0.25);
        let mut g1 = RowGenerator::new(params, 99);
        let mut g2 = RowGenerator::new(params, 99);
        for _ in 0..10 {
            assert_eq!(g1.next_row(), g2.next_row());
        }
        let mut g3 = RowGenerator::new(params, 100);
        assert_ne!(g1.next_row(), g3.next_row());
    }

    #[test]
    fn image_generation() {
        let mut g = RowGenerator::new(GenParams::for_density(512, 0.3), 5);
        let img = g.next_image(20);
        assert_eq!(img.height(), 20);
        assert_eq!(img.width(), 512);
        assert!(img.total_runs() > 100);
    }

    #[test]
    fn tiny_widths_do_not_panic() {
        for width in [1u32, 3, 4, 5, 21] {
            let mut g = RowGenerator::new(
                GenParams {
                    width,
                    run_len: (4, 20),
                    mean_gap: 2.0,
                },
                11,
            );
            for _ in 0..20 {
                let _ = g.next_row(); // may be empty; must not panic
            }
        }
    }

    #[test]
    #[should_panic(expected = "density must be in")]
    fn bad_density_rejected() {
        let _ = GenParams::for_density(100, 1.5);
    }

    #[test]
    fn expected_density_matches_solver() {
        let p = GenParams::for_density(1000, 0.42);
        assert!((p.expected_density() - 0.42).abs() < 1e-9);
    }
}
