//! Image analysis on RLE binary images.
//!
//! The paper's introduction motivates compressed-domain processing with a
//! list of binary-image applications — component labelling, feature
//! extraction, template matching, morphological operations. This crate
//! implements those downstream stages directly on the RLE representation,
//! so a full inspection pipeline (difference → clean-up → defect grouping →
//! classification) never decompresses:
//!
//! * [`components`] — connected-component labelling (4/8-connectivity) via
//!   row-run merging with union-find, O(total runs · α);
//! * [`features`] — per-component features: area, bounding box, centroid;
//! * [`matching`] — binary template matching by windowed XOR score;
//! * [`morph2d`] — separable 2-D morphology (rectangular structuring
//!   elements) built from the row operators in `rle::morph`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod components;
pub mod features;
pub mod matching;
pub mod morph2d;

pub use components::{label_components, Component, Connectivity, Labeling};
