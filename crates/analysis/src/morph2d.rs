//! Separable 2-D morphology with rectangular structuring elements.
//!
//! A dilation/erosion by a `(2·rx+1) × (2·ry+1)` rectangle factors into a
//! horizontal pass (the O(k) row operators of `rle::morph`) and a vertical
//! pass (the same operators applied to the transposed image via the dense
//! substrate). Rectangles are what inspection pipelines actually use for
//! mask clean-up, and separability keeps everything linear in runs.

use bitimg::convert::{decode, encode};
use rle::morph;
use rle::{Pixel, RleImage};

/// Applies a horizontal-only pass of `f` to every row.
fn horizontal(
    img: &RleImage,
    radius: Pixel,
    f: fn(&rle::RleRow, Pixel) -> rle::RleRow,
) -> RleImage {
    let rows = img.rows().iter().map(|r| f(r, radius)).collect();
    RleImage::from_rows(img.width(), rows).expect("row widths preserved")
}

/// Applies a vertical-only pass by transposing through the dense substrate.
fn vertical(img: &RleImage, radius: Pixel, f: fn(&rle::RleRow, Pixel) -> rle::RleRow) -> RleImage {
    let transposed = encode(&decode(img).transpose());
    let processed = horizontal(&transposed, radius, f);
    encode(&decode(&processed).transpose())
}

/// 2-D dilation by a `(2·rx+1) × (2·ry+1)` rectangle.
#[must_use]
pub fn dilate_rect(img: &RleImage, rx: Pixel, ry: Pixel) -> RleImage {
    let h = horizontal(img, rx, morph::dilate);
    if ry == 0 {
        h
    } else {
        vertical(&h, ry, morph::dilate)
    }
}

/// 2-D erosion by a `(2·rx+1) × (2·ry+1)` rectangle.
#[must_use]
pub fn erode_rect(img: &RleImage, rx: Pixel, ry: Pixel) -> RleImage {
    let h = horizontal(img, rx, morph::erode);
    if ry == 0 {
        h
    } else {
        vertical(&h, ry, morph::erode)
    }
}

/// 2-D opening (erode then dilate).
#[must_use]
pub fn open_rect(img: &RleImage, rx: Pixel, ry: Pixel) -> RleImage {
    dilate_rect(&erode_rect(img, rx, ry), rx, ry)
}

/// 2-D closing (dilate then erode).
#[must_use]
pub fn close_rect(img: &RleImage, rx: Pixel, ry: Pixel) -> RleImage {
    erode_rect(&dilate_rect(img, rx, ry), rx, ry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(art: &str) -> RleImage {
        RleImage::from_ascii(art)
    }

    /// Pixel-level reference: value at (x,y) is OR/AND over the rectangle.
    fn reference(img: &RleImage, rx: i64, ry: i64, dilated: bool) -> RleImage {
        let (w, h) = (i64::from(img.width()), img.height() as i64);
        let mut art = String::new();
        for y in 0..h {
            for x in 0..w {
                let mut acc = !dilated;
                for dy in -ry..=ry {
                    for dx in -rx..=rx {
                        let (nx, ny) = (x + dx, y + dy);
                        let v = nx >= 0
                            && nx < w
                            && ny >= 0
                            && ny < h
                            && img.get(nx as u32, ny as usize);
                        if dilated {
                            acc |= v;
                        } else {
                            acc &= v;
                        }
                    }
                }
                art.push(if acc { '#' } else { '.' });
            }
            art.push('\n');
        }
        RleImage::from_ascii(&art)
    }

    #[test]
    fn dilate_matches_reference() {
        let im = img("......\n..#...\n......\n....#.\n");
        for (rx, ry) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1), (2, 1)] {
            assert_eq!(
                dilate_rect(&im, rx, ry),
                reference(&im, i64::from(rx), i64::from(ry), true),
                "({rx},{ry})"
            );
        }
    }

    #[test]
    fn erode_matches_reference() {
        let im = img("......\n.####.\n.####.\n.####.\n......\n");
        for (rx, ry) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1)] {
            assert_eq!(
                erode_rect(&im, rx, ry),
                reference(&im, i64::from(rx), i64::from(ry), false),
                "({rx},{ry})"
            );
        }
    }

    #[test]
    fn closing_bridges_vertical_gaps() {
        let im = img("..#..\n.....\n..#..\n");
        let closed = close_rect(&im, 0, 1);
        assert!(
            closed.get(2, 1),
            "vertical 1-px gap must close:\n{}",
            closed.to_ascii()
        );
    }

    #[test]
    fn opening_removes_thin_vertical_lines() {
        let im = img("..#..\n..#..\n..#..\n");
        let opened = open_rect(&im, 1, 0);
        assert_eq!(
            opened.ones(),
            0,
            "1-px-wide line dies under horizontal opening"
        );
        // But survives a vertical-only opening.
        let opened_v = open_rect(&im, 0, 1);
        assert_eq!(opened_v.ones(), 3);
    }

    #[test]
    fn idempotence_of_open_and_close() {
        let im = img(".##..\n.###.\n..#..\n#....\n");
        let o = open_rect(&im, 1, 1);
        assert_eq!(open_rect(&o, 1, 1), o);
        let c = close_rect(&im, 1, 1);
        assert_eq!(close_rect(&c, 1, 1), c);
    }
}
