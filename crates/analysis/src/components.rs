//! Connected-component labelling on RLE images.
//!
//! The classic run-based two-pass algorithm: scan rows top to bottom,
//! give each run a provisional label, union it with every run in the
//! previous row it touches (column overlap for 4-connectivity, overlap
//! widened by one for 8-connectivity), then resolve labels to a dense
//! `0..count` range. Cost is O(total runs · α(total runs)) — independent
//! of pixel counts, like everything else in the compressed domain.

use rle::{Pixel, RleImage, Run};

/// Pixel adjacency rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Connectivity {
    /// Orthogonal neighbours only.
    Four,
    /// Orthogonal plus diagonal neighbours.
    Eight,
}

/// One labelled run: the run, its row, and its component id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabeledRun {
    /// Row index.
    pub row: usize,
    /// The run.
    pub run: Run,
    /// Dense component id in `0..component_count`.
    pub label: u32,
}

/// A connected component's aggregate description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Component {
    /// Dense component id.
    pub label: u32,
    /// Foreground pixel count.
    pub area: u64,
    /// Number of runs forming the component.
    pub runs: usize,
    /// Inclusive column range `[x0, x1]`.
    pub x0: Pixel,
    /// Rightmost column.
    pub x1: Pixel,
    /// Topmost row.
    pub y0: usize,
    /// Bottommost row.
    pub y1: usize,
    /// Centroid column (area-weighted mean of pixel x-coordinates).
    pub cx: f64,
    /// Centroid row.
    pub cy: f64,
}

impl Component {
    /// Bounding-box width in pixels.
    #[must_use]
    pub fn bbox_width(&self) -> Pixel {
        self.x1 - self.x0 + 1
    }

    /// Bounding-box height in rows.
    #[must_use]
    pub fn bbox_height(&self) -> usize {
        self.y1 - self.y0 + 1
    }
}

/// The result of labelling: per-run labels plus per-component summaries.
#[derive(Clone, Debug)]
pub struct Labeling {
    /// Every foreground run with its component id, in row-major order.
    pub runs: Vec<LabeledRun>,
    /// One summary per component, indexed by label.
    pub components: Vec<Component>,
}

impl Labeling {
    /// Number of connected components.
    #[must_use]
    pub fn count(&self) -> usize {
        self.components.len()
    }
}

/// Union-find with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new() -> Self {
        Self {
            parent: Vec::new(),
            size: Vec::new(),
        }
    }

    fn make(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.size.push(1);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// Whether two runs in vertically adjacent rows touch under the rule.
fn touches(a: &Run, b: &Run, connectivity: Connectivity) -> bool {
    match connectivity {
        Connectivity::Four => a.start() <= b.end() && b.start() <= a.end(),
        Connectivity::Eight => {
            // Diagonal contact widens each run's influence by one column.
            a.start() <= b.end().saturating_add(1) && b.start() <= a.end().saturating_add(1)
        }
    }
}

/// Labels the connected components of an image.
///
/// ```
/// use rle::RleImage;
/// use rle_analysis::{label_components, Connectivity};
///
/// let img = RleImage::from_ascii("##..#\n##...\n....#\n");
/// let labeling = label_components(&img, Connectivity::Four);
/// assert_eq!(labeling.count(), 3);
/// let biggest = labeling.components.iter().max_by_key(|c| c.area).unwrap();
/// assert_eq!(biggest.area, 4);
/// ```
#[must_use]
pub fn label_components(img: &RleImage, connectivity: Connectivity) -> Labeling {
    let mut uf = UnionFind::new();
    // Provisional label of every run, row-major.
    let mut provisional: Vec<Vec<u32>> = Vec::with_capacity(img.height());

    let mut prev_row: &[Run] = &[];
    let mut prev_labels: Vec<u32> = Vec::new();
    for row in img.rows() {
        let runs = row.runs();
        let mut labels = Vec::with_capacity(runs.len());
        // Two-pointer sweep over the previous row's runs: both lists are
        // sorted, so each pair is visited at most once.
        let mut p = 0usize;
        for run in runs {
            let mut label: Option<u32> = None;
            // Skip previous-row runs entirely left of this one.
            while p < prev_row.len() && !touches(&prev_row[p], run, connectivity) {
                if prev_row[p].end() < run.start() {
                    p += 1;
                } else {
                    break;
                }
            }
            let mut q = p;
            while q < prev_row.len() && touches(&prev_row[q], run, connectivity) {
                let up = prev_labels[q];
                match label {
                    None => label = Some(up),
                    Some(l) => uf.union(l, up),
                }
                q += 1;
            }
            // The last touching run may also touch this row's *next* run;
            // back up one so the sweep re-examines it.
            let label = label.unwrap_or_else(|| uf.make());
            labels.push(label);
        }
        provisional.push(labels.clone());
        prev_row = runs;
        prev_labels = labels;
    }

    // Resolve provisional labels to dense component ids.
    let mut dense: Vec<Option<u32>> = vec![None; uf.parent.len()];
    let mut components: Vec<Component> = Vec::new();
    let mut labeled_runs = Vec::new();
    for (y, row) in img.rows().iter().enumerate() {
        for (run, &prov) in row.runs().iter().zip(&provisional[y]) {
            let root = uf.find(prov);
            let label = *dense[root as usize].get_or_insert_with(|| {
                components.push(Component {
                    label: components.len() as u32,
                    area: 0,
                    runs: 0,
                    x0: Pixel::MAX,
                    x1: 0,
                    y0: usize::MAX,
                    y1: 0,
                    cx: 0.0,
                    cy: 0.0,
                });
                components.len() as u32 - 1
            });
            let c = &mut components[label as usize];
            let len = u64::from(run.len());
            c.area += len;
            c.runs += 1;
            c.x0 = c.x0.min(run.start());
            c.x1 = c.x1.max(run.end());
            c.y0 = c.y0.min(y);
            c.y1 = c.y1.max(y);
            // Sum of x over the run is an arithmetic series.
            c.cx += (f64::from(run.start()) + f64::from(run.end())) / 2.0 * len as f64;
            c.cy += y as f64 * len as f64;
            labeled_runs.push(LabeledRun {
                row: y,
                run: *run,
                label,
            });
        }
    }
    for c in &mut components {
        if c.area > 0 {
            c.cx /= c.area as f64;
            c.cy /= c.area as f64;
        }
    }
    Labeling {
        runs: labeled_runs,
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label_art(art: &str, conn: Connectivity) -> Labeling {
        label_components(&RleImage::from_ascii(art), conn)
    }

    #[test]
    fn empty_image_has_no_components() {
        let l = label_art("....\n....\n", Connectivity::Four);
        assert_eq!(l.count(), 0);
        assert!(l.runs.is_empty());
    }

    #[test]
    fn single_blob() {
        let l = label_art("###.\n.##.\n", Connectivity::Four);
        assert_eq!(l.count(), 1);
        let c = &l.components[0];
        assert_eq!(c.area, 5);
        assert_eq!(c.runs, 2);
        assert_eq!((c.x0, c.x1, c.y0, c.y1), (0, 2, 0, 1));
    }

    #[test]
    fn separate_blobs() {
        let l = label_art("##..##\n##..##\n", Connectivity::Four);
        assert_eq!(l.count(), 2);
        assert_eq!(l.components[0].area, 4);
        assert_eq!(l.components[1].area, 4);
    }

    #[test]
    fn diagonal_touch_depends_on_connectivity() {
        let art = "#....\n.#...\n";
        assert_eq!(label_art(art, Connectivity::Four).count(), 2);
        assert_eq!(label_art(art, Connectivity::Eight).count(), 1);
    }

    #[test]
    fn u_shape_merges_late() {
        // The two arms get different provisional labels, united by the base.
        let art = "\
#...#\n\
#...#\n\
#####\n";
        let l = label_art(art, Connectivity::Four);
        assert_eq!(l.count(), 1);
        assert_eq!(l.components[0].area, 9);
    }

    #[test]
    fn w_shape_multiple_unions_per_run() {
        // One wide run touching three runs above.
        let art = "\
#.#.#\n\
#####\n";
        let l = label_art(art, Connectivity::Four);
        assert_eq!(l.count(), 1);
        assert_eq!(l.components[0].area, 8);
    }

    #[test]
    fn nested_components_stay_separate() {
        let art = "\
#####\n\
#...#\n\
#.#.#\n\
#...#\n\
#####\n";
        let l = label_art(art, Connectivity::Four);
        assert_eq!(l.count(), 2, "ring and centre dot");
        let dot = l.components.iter().find(|c| c.area == 1).unwrap();
        assert_eq!((dot.cx, dot.cy), (2.0, 2.0));
    }

    #[test]
    fn centroid_of_rectangle() {
        let l = label_art("....\n.##.\n.##.\n", Connectivity::Four);
        let c = &l.components[0];
        assert!((c.cx - 1.5).abs() < 1e-12);
        assert!((c.cy - 1.5).abs() < 1e-12);
        assert_eq!(c.bbox_width(), 2);
        assert_eq!(c.bbox_height(), 2);
    }

    #[test]
    fn labels_are_dense_and_cover_all_runs() {
        let art = "\
##..#..#\n\
.#..#...\n\
........\n\
#..#..##\n";
        let img = RleImage::from_ascii(art);
        let l = label_components(&img, Connectivity::Four);
        let max_label = l.runs.iter().map(|r| r.label).max().unwrap();
        assert_eq!(usize::try_from(max_label).unwrap() + 1, l.count());
        let total_runs: usize = img.rows().iter().map(|r| r.run_count()).sum();
        assert_eq!(l.runs.len(), total_runs);
        // Component areas sum to the image's foreground.
        let area: u64 = l.components.iter().map(|c| c.area).sum();
        assert_eq!(area, img.ones());
    }

    #[test]
    fn component_count_matches_flood_fill_reference() {
        // Pseudo-random images, both connectivities, vs a pixel flood fill.
        let mut state = 0xDEADBEEFu64;
        for trial in 0..20 {
            let (w, h) = (24u32, 16usize);
            let mut art = String::new();
            for _ in 0..h {
                for _ in 0..w {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    art.push(if state >> 33 & 1 == 1 { '#' } else { '.' });
                }
                art.push('\n');
            }
            let img = RleImage::from_ascii(&art);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let got = label_components(&img, conn).count();
                let want = flood_fill_count(&img, conn);
                assert_eq!(got, want, "trial {trial}, {conn:?}\n{art}");
            }
        }
    }

    fn flood_fill_count(img: &RleImage, conn: Connectivity) -> usize {
        let (w, h) = (img.width() as i64, img.height() as i64);
        let mut seen = vec![false; (w * h) as usize];
        let at = |x: i64, y: i64| (y * w + x) as usize;
        let mut count = 0;
        let neighbours: &[(i64, i64)] = match conn {
            Connectivity::Four => &[(1, 0), (-1, 0), (0, 1), (0, -1)],
            Connectivity::Eight => &[
                (1, 0),
                (-1, 0),
                (0, 1),
                (0, -1),
                (1, 1),
                (1, -1),
                (-1, 1),
                (-1, -1),
            ],
        };
        for y in 0..h {
            for x in 0..w {
                if !img.get(x as u32, y as usize) || seen[at(x, y)] {
                    continue;
                }
                count += 1;
                let mut stack = vec![(x, y)];
                seen[at(x, y)] = true;
                while let Some((cx, cy)) = stack.pop() {
                    for (dx, dy) in neighbours {
                        let (nx, ny) = (cx + dx, cy + dy);
                        if nx >= 0
                            && nx < w
                            && ny >= 0
                            && ny < h
                            && img.get(nx as u32, ny as usize)
                            && !seen[at(nx, ny)]
                        {
                            seen[at(nx, ny)] = true;
                            stack.push((nx, ny));
                        }
                    }
                }
            }
        }
        count
    }
}
