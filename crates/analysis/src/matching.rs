//! Binary template matching by windowed image difference.
//!
//! The paper's introduction cites systolic "binary template matching"
//! hardware; the software kernel is: slide a template over the image and
//! score each placement by the number of differing pixels inside the
//! window (a windowed XOR popcount — the same image-difference primitive
//! the systolic array computes). The best placement has the lowest score.
//!
//! Everything stays in RLE: each window row is `crop`ped out in O(runs in
//! window) and XORed against the template row with the sequential merge.

use rle::{ops, Pixel, RleImage};

/// One scored template placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Window left edge.
    pub x: Pixel,
    /// Window top row.
    pub y: usize,
    /// Differing pixels inside the window.
    pub score: u64,
}

/// Scores the template at one placement. The window must lie within the
/// image.
///
/// # Panics
///
/// Panics if the window exceeds the image.
#[must_use]
pub fn score_at(image: &RleImage, template: &RleImage, x: Pixel, y: usize) -> u64 {
    assert!(
        u64::from(x) + u64::from(template.width()) <= u64::from(image.width())
            && y + template.height() <= image.height(),
        "template window out of bounds"
    );
    template
        .rows()
        .iter()
        .enumerate()
        .map(|(ty, trow)| {
            let window = image.rows()[y + ty].crop(x, template.width());
            ops::xor_raw_with_stats(&window, trow).0.ones()
        })
        .sum()
}

/// Exhaustively scores every placement (step 1 in both axes), returning
/// them in row-major order. Empty if the template does not fit.
#[must_use]
pub fn score_all(image: &RleImage, template: &RleImage) -> Vec<Placement> {
    let (iw, ih) = (image.width(), image.height());
    let (tw, th) = (template.width(), template.height());
    if tw > iw || th > ih {
        return Vec::new();
    }
    let mut out = Vec::new();
    for y in 0..=(ih - th) {
        for x in 0..=(iw - tw) {
            out.push(Placement {
                x,
                y,
                score: score_at(image, template, x, y),
            });
        }
    }
    out
}

/// The lowest-score placement (ties broken by row-major order), or `None`
/// if the template does not fit in the image.
#[must_use]
pub fn best_match(image: &RleImage, template: &RleImage) -> Option<Placement> {
    score_all(image, template)
        .into_iter()
        .min_by_key(|p| (p.score, p.y, p.x))
}

/// Classifies a glyph-sized probe image against a set of labelled
/// templates (all the same size as the probe): returns the label of the
/// template with the fewest differing pixels, with its score.
pub fn classify<'a, L>(
    probe: &RleImage,
    templates: impl IntoIterator<Item = (L, &'a RleImage)>,
) -> Option<(L, u64)> {
    templates
        .into_iter()
        .map(|(label, t)| {
            assert_eq!(
                (t.width(), t.height()),
                (probe.width(), probe.height()),
                "classify templates must match the probe size"
            );
            let score = score_at(t, probe, 0, 0);
            (label, score)
        })
        .min_by_key(|&(_, score)| score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rle::RleImage;

    fn img(art: &str) -> RleImage {
        RleImage::from_ascii(art)
    }

    #[test]
    fn perfect_match_scores_zero() {
        let image = img("........\n..##....\n..##....\n........\n");
        let template = img("##\n##\n");
        assert_eq!(score_at(&image, &template, 2, 1), 0);
        let best = best_match(&image, &template).unwrap();
        assert_eq!((best.x, best.y, best.score), (2, 1, 0));
    }

    #[test]
    fn score_counts_window_difference_only() {
        let image = img("##......\n##......\n");
        let template = img("##\n##\n");
        // At (0,0): exact. At (2,0): template all-on vs window all-off = 4.
        assert_eq!(score_at(&image, &template, 0, 0), 0);
        assert_eq!(score_at(&image, &template, 2, 0), 4);
        // Shifting one column keeps the overlapping column matched and
        // costs only the vacated one: 2 differing pixels.
        assert_eq!(score_at(&image, &template, 1, 0), 2);
    }

    #[test]
    fn score_all_covers_every_placement() {
        let image = img("....\n....\n");
        let template = img("##\n");
        let all = score_all(&image, &template);
        assert_eq!(all.len(), 3 * 2);
        assert!(all.iter().all(|p| p.score == 2));
    }

    #[test]
    fn oversized_template_does_not_fit() {
        let image = img("..\n");
        let template = img("###\n");
        assert!(score_all(&image, &template).is_empty());
        assert!(best_match(&image, &template).is_none());
    }

    #[test]
    fn best_match_prefers_lowest_then_row_major() {
        let image = img("#..#\n");
        let template = img("#\n");
        let best = best_match(&image, &template).unwrap();
        assert_eq!((best.x, best.y, best.score), (0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn score_at_bounds_checked() {
        let image = img("..\n");
        let template = img("###\n");
        let _ = score_at(&image, &template, 0, 0);
    }

    #[test]
    fn classify_glyphs_with_noise() {
        use workload::glyphs;
        let probe_dense = glyphs::perturb(&glyphs::render("K", 2), 5, 99);
        let probe = bitimg::convert::encode(&probe_dense);
        let alphabet: Vec<(char, RleImage)> = ('A'..='Z')
            .map(|c| (c, glyphs::render_rle(&c.to_string(), 2)))
            .collect();
        let (label, score) = classify(&probe, alphabet.iter().map(|(c, t)| (*c, t))).unwrap();
        assert_eq!(label, 'K');
        assert!(score <= 5, "noise bound: {score}");
    }

    #[test]
    fn matching_agrees_with_dense_reference() {
        // Exhaustive check of every placement vs a pixel-level computation.
        let image = img("#.#.#.\n.###..\n..#..#\n");
        let template = img("##\n.#\n");
        for p in score_all(&image, &template) {
            let mut want = 0u64;
            for ty in 0..template.height() {
                for tx in 0..template.width() {
                    if template.get(tx, ty) != image.get(p.x + tx, p.y + ty) {
                        want += 1;
                    }
                }
            }
            assert_eq!(p.score, want, "placement ({}, {})", p.x, p.y);
        }
    }
}
