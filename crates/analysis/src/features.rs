//! Feature extraction over labelled components.
//!
//! The paper's introduction cites "procedures and algorithms for detecting
//! and determining the orientation of objects in binary images" — feature
//! extraction. [`crate::components::Component`] already carries the raw
//! measurements (area, bounding box, centroid); this module adds the
//! derived descriptors and selection helpers an inspection or recognition
//! stage uses.

use crate::components::{Component, Labeling};

/// Derived shape descriptors of a component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShapeFeatures {
    /// The component's dense label.
    pub label: u32,
    /// Foreground pixels.
    pub area: u64,
    /// Fraction of the bounding box that is foreground, in `(0, 1]`.
    pub fill_ratio: f64,
    /// Bounding-box width / height.
    pub aspect_ratio: f64,
    /// Mean run length — long runs mean horizontally coherent structure.
    pub mean_run_length: f64,
}

/// Computes the shape descriptors of one component.
#[must_use]
pub fn shape_features(c: &Component) -> ShapeFeatures {
    let bbox_area = u64::from(c.bbox_width()) * c.bbox_height() as u64;
    ShapeFeatures {
        label: c.label,
        area: c.area,
        fill_ratio: c.area as f64 / bbox_area.max(1) as f64,
        aspect_ratio: f64::from(c.bbox_width()) / c.bbox_height().max(1) as f64,
        mean_run_length: c.area as f64 / c.runs.max(1) as f64,
    }
}

/// Components sorted by decreasing area.
#[must_use]
pub fn by_area_desc(labeling: &Labeling) -> Vec<Component> {
    let mut v = labeling.components.clone();
    v.sort_by(|a, b| b.area.cmp(&a.area).then(a.label.cmp(&b.label)));
    v
}

/// Components with at least `min_area` pixels — the blob-level despeckle.
#[must_use]
pub fn filter_by_area(labeling: &Labeling, min_area: u64) -> Vec<Component> {
    labeling
        .components
        .iter()
        .copied()
        .filter(|c| c.area >= min_area)
        .collect()
}

/// The component whose centroid is nearest to `(x, y)`, if any.
#[must_use]
pub fn nearest_to(labeling: &Labeling, x: f64, y: f64) -> Option<Component> {
    labeling.components.iter().copied().min_by(|a, b| {
        let da = (a.cx - x).powi(2) + (a.cy - y).powi(2);
        let db = (b.cx - x).powi(2) + (b.cy - y).powi(2);
        da.partial_cmp(&db).expect("distances are finite")
    })
}

/// A coarse defect taxonomy for the PCB-inspection story: classify a
/// difference-mask component by size and shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefectClass {
    /// Single pixels / tiny specks — usually sensor noise.
    Speck,
    /// Small compact blob — pinhole, mousebite or spur.
    Blob,
    /// Elongated region — likely a broken or bridged trace segment.
    Linear,
    /// Large area — gross artwork mismatch.
    Gross,
}

/// Classifies a component.
#[must_use]
pub fn classify_defect(c: &Component) -> DefectClass {
    let f = shape_features(c);
    if c.area <= 2 {
        DefectClass::Speck
    } else if c.area > 400 {
        DefectClass::Gross
    } else if f.aspect_ratio > 3.0 || f.aspect_ratio < 1.0 / 3.0 {
        DefectClass::Linear
    } else {
        DefectClass::Blob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{label_components, Connectivity};
    use rle::RleImage;

    fn labeling(art: &str) -> Labeling {
        label_components(&RleImage::from_ascii(art), Connectivity::Eight)
    }

    #[test]
    fn shape_features_of_square_and_line() {
        let l = labeling("####\n####\n####\n####\n");
        let square = shape_features(&l.components[0]);
        assert_eq!(square.area, 16);
        assert!((square.fill_ratio - 1.0).abs() < 1e-12);
        assert!((square.aspect_ratio - 1.0).abs() < 1e-12);
        assert!((square.mean_run_length - 4.0).abs() < 1e-12);

        let l = labeling("########\n");
        let line = shape_features(&l.components[0]);
        assert!((line.aspect_ratio - 8.0).abs() < 1e-12);
    }

    #[test]
    fn sorting_and_filtering() {
        let l = labeling("#....###\n.....###\n........\n##......\n");
        let sorted = by_area_desc(&l);
        assert_eq!(sorted[0].area, 6);
        assert_eq!(sorted.last().unwrap().area, 1);
        assert_eq!(filter_by_area(&l, 2).len(), 2);
        assert_eq!(filter_by_area(&l, 7).len(), 0);
    }

    #[test]
    fn nearest_component() {
        let l = labeling("#......#\n");
        let near_left = nearest_to(&l, 1.0, 0.0).unwrap();
        assert_eq!(near_left.cx, 0.0);
        let near_right = nearest_to(&l, 6.0, 0.0).unwrap();
        assert_eq!(near_right.cx, 7.0);
        assert!(nearest_to(&labeling("...\n"), 0.0, 0.0).is_none());
    }

    #[test]
    fn defect_taxonomy() {
        let speck = labeling("#.\n..\n");
        assert_eq!(classify_defect(&speck.components[0]), DefectClass::Speck);

        let blob = labeling("####\n####\n####\n");
        assert_eq!(classify_defect(&blob.components[0]), DefectClass::Blob);

        let mut line_art = String::from(".");
        line_art.push_str(&"#".repeat(30));
        line_art.push('\n');
        let linear = labeling(&line_art);
        assert_eq!(classify_defect(&linear.components[0]), DefectClass::Linear);

        let mut gross_art = String::new();
        for _ in 0..25 {
            gross_art.push_str(&"#".repeat(25));
            gross_art.push('\n');
        }
        let gross = labeling(&gross_art);
        assert_eq!(classify_defect(&gross.components[0]), DefectClass::Gross);
    }
}
