//! Word-wise boolean operations on dense rows and bitmaps.
//!
//! These are the uncompressed-domain counterparts of `rle::ops` and serve as
//! the ground-truth reference when verifying the compressed-domain
//! algorithms: XOR over packed words cannot get the geometry wrong.

use crate::bitmap::Bitmap;
use crate::bitrow::BitRow;

/// XOR of two rows.
///
/// # Panics
///
/// Panics if widths differ.
#[must_use]
pub fn xor_row(a: &BitRow, b: &BitRow) -> BitRow {
    zip_row(a, b, |x, y| x ^ y)
}

/// AND of two rows.
#[must_use]
pub fn and_row(a: &BitRow, b: &BitRow) -> BitRow {
    zip_row(a, b, |x, y| x & y)
}

/// OR of two rows.
#[must_use]
pub fn or_row(a: &BitRow, b: &BitRow) -> BitRow {
    zip_row(a, b, |x, y| x | y)
}

/// Set difference `a AND NOT b` of two rows.
#[must_use]
pub fn sub_row(a: &BitRow, b: &BitRow) -> BitRow {
    zip_row(a, b, |x, y| x & !y)
}

/// Complement of a row (within its width).
#[must_use]
pub fn not_row(a: &BitRow) -> BitRow {
    let mut out = BitRow::from_words(a.width(), a.words().iter().map(|w| !w).collect());
    out.mask_tail();
    out
}

/// In-place XOR: `a ^= b`.
///
/// # Panics
///
/// Panics if widths differ.
pub fn xor_row_assign(a: &mut BitRow, b: &BitRow) {
    assert_eq!(a.width(), b.width(), "row width mismatch");
    for (x, y) in a.words_mut().iter_mut().zip(b.words()) {
        *x ^= y;
    }
}

/// Number of differing pixels between two rows, without materialising the
/// difference.
#[must_use]
pub fn hamming_row(a: &BitRow, b: &BitRow) -> u64 {
    assert_eq!(a.width(), b.width(), "row width mismatch");
    a.words()
        .iter()
        .zip(b.words())
        .map(|(x, y)| u64::from((x ^ y).count_ones()))
        .sum()
}

fn zip_row(a: &BitRow, b: &BitRow, f: impl Fn(u64, u64) -> u64) -> BitRow {
    assert_eq!(a.width(), b.width(), "row width mismatch");
    let words = a
        .words()
        .iter()
        .zip(b.words())
        .map(|(&x, &y)| f(x, y))
        .collect();
    // Inputs keep tail bits clear; all four f's preserve 0 op 0 == 0 except
    // complement, which is handled separately — still mask defensively.
    let mut out = BitRow::from_words(a.width(), words);
    out.mask_tail();
    out
}

/// XOR of two bitmaps.
///
/// # Panics
///
/// Panics if dimensions differ.
#[must_use]
pub fn xor(a: &Bitmap, b: &Bitmap) -> Bitmap {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "bitmap dimension mismatch"
    );
    let mut out = Bitmap::new(a.width(), a.height());
    for ((o, x), y) in out.words_mut().iter_mut().zip(a.words()).zip(b.words()) {
        *o = x ^ y;
    }
    out
}

/// In-place bitmap XOR: `a ^= b`.
pub fn xor_assign(a: &mut Bitmap, b: &Bitmap) {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "bitmap dimension mismatch"
    );
    for (x, y) in a.words_mut().iter_mut().zip(b.words()) {
        *x ^= y;
    }
}

/// Number of differing pixels between two bitmaps.
#[must_use]
pub fn hamming(a: &Bitmap, b: &Bitmap) -> u64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "bitmap dimension mismatch"
    );
    a.words()
        .iter()
        .zip(b.words())
        .map(|(x, y)| u64::from((x ^ y).count_ones()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(width: u32, ones: &[u32]) -> BitRow {
        let mut r = BitRow::new(width);
        for &p in ones {
            r.set(p, true);
        }
        r
    }

    #[test]
    fn row_ops_match_per_pixel() {
        let a = row(70, &[0, 5, 63, 64, 69]);
        let b = row(70, &[5, 6, 64]);
        let (ba, bb) = (a.to_bits(), b.to_bits());
        let check = |got: BitRow, f: fn(bool, bool) -> bool| {
            let want: Vec<bool> = ba.iter().zip(&bb).map(|(&x, &y)| f(x, y)).collect();
            assert_eq!(got.to_bits(), want);
        };
        check(xor_row(&a, &b), |x, y| x ^ y);
        check(and_row(&a, &b), |x, y| x && y);
        check(or_row(&a, &b), |x, y| x || y);
        check(sub_row(&a, &b), |x, y| x && !y);
    }

    #[test]
    fn not_row_masks_tail() {
        let a = row(70, &[0]);
        let n = not_row(&a);
        assert_eq!(n.count_ones(), 69);
        assert!(!n.get(0) && n.get(1) && n.get(69));
        assert_eq!(not_row(&n), a);
    }

    #[test]
    fn xor_assign_row() {
        let mut a = row(70, &[0, 5]);
        let b = row(70, &[5, 6]);
        xor_row_assign(&mut a, &b);
        assert_eq!(a, row(70, &[0, 6]));
    }

    #[test]
    fn hamming_row_counts() {
        let a = row(70, &[0, 5, 64]);
        let b = row(70, &[5, 6]);
        assert_eq!(hamming_row(&a, &b), 3);
        assert_eq!(hamming_row(&a, &a.clone()), 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let _ = xor_row(&BitRow::new(10), &BitRow::new(11));
    }

    #[test]
    fn bitmap_xor_and_hamming() {
        let mut a = Bitmap::new(70, 2);
        let mut b = Bitmap::new(70, 2);
        a.fill_rect(0, 0, 10, 2, true);
        b.fill_rect(5, 0, 10, 2, true);
        let d = xor(&a, &b);
        assert_eq!(d.count_ones(), 20); // pixels 0..5 and 10..15 per row
        assert_eq!(hamming(&a, &b), 20);
        let mut c = a.clone();
        xor_assign(&mut c, &b);
        assert_eq!(c, d);
        // XOR twice restores.
        xor_assign(&mut c, &b);
        assert_eq!(c, a);
    }

    #[test]
    #[should_panic(expected = "bitmap dimension mismatch")]
    fn bitmap_dimension_mismatch_panics() {
        let _ = xor(&Bitmap::new(10, 2), &Bitmap::new(10, 3));
    }
}
