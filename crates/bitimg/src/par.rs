//! Multi-threaded dense operations — the uncompressed parallel baseline.
//!
//! The paper's conclusions note that "a parallel solution of the image
//! difference problem can easily be performed on uncompressed data in
//! constant time if the number of processors available is proportional to
//! the number of pixels". On a real machine we have a fixed thread count, so
//! this module provides the practical version: the flat word array is split
//! into equal chunks, one per worker, and XORed with no synchronisation
//! beyond the final join (crossbeam scoped threads; the disjoint `&mut`
//! chunks make this data-race-free by construction).

use crate::bitmap::Bitmap;

/// Smallest number of words a worker is worth spawning for. Below this the
/// per-thread cost dominates and we fall back to fewer workers.
const MIN_WORDS_PER_THREAD: usize = 4096;

/// Parallel bitmap XOR using up to `threads` workers.
///
/// Equivalent to [`crate::ops::xor`]; the output is bit-identical.
///
/// # Panics
///
/// Panics if dimensions differ or `threads == 0`.
#[must_use]
pub fn xor(a: &Bitmap, b: &Bitmap, threads: usize) -> Bitmap {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "bitmap dimension mismatch"
    );
    let mut out = Bitmap::new(a.width(), a.height());
    xor_into(a, b, &mut out, threads);
    out
}

/// Parallel XOR writing into a preallocated output bitmap of the same
/// dimensions. Exposed separately so benchmarks can exclude allocation.
///
/// # Panics
///
/// Panics if dimensions differ or `threads == 0`.
pub fn xor_into(a: &Bitmap, b: &Bitmap, out: &mut Bitmap, threads: usize) {
    assert!(threads > 0, "need at least one thread");
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "bitmap dimension mismatch"
    );
    assert_eq!(
        (a.width(), a.height()),
        (out.width(), out.height()),
        "output dimension mismatch"
    );

    let total = out.words().len();
    let workers = effective_workers(total, threads);
    if workers <= 1 {
        for ((o, x), y) in out.words_mut().iter_mut().zip(a.words()).zip(b.words()) {
            *o = x ^ y;
        }
        return;
    }

    let chunk = total.div_ceil(workers);
    let (aw, bw) = (a.words(), b.words());
    crossbeam::thread::scope(|scope| {
        for (i, out_chunk) in out.words_mut().chunks_mut(chunk).enumerate() {
            let start = i * chunk;
            let a_chunk = &aw[start..start + out_chunk.len()];
            let b_chunk = &bw[start..start + out_chunk.len()];
            scope.spawn(move |_| {
                for ((o, x), y) in out_chunk.iter_mut().zip(a_chunk).zip(b_chunk) {
                    *o = x ^ y;
                }
            });
        }
    })
    .expect("xor worker panicked");
}

/// Parallel Hamming distance (differing-pixel count) between two bitmaps.
///
/// # Panics
///
/// Panics if dimensions differ or `threads == 0`.
#[must_use]
pub fn hamming(a: &Bitmap, b: &Bitmap, threads: usize) -> u64 {
    assert!(threads > 0, "need at least one thread");
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "bitmap dimension mismatch"
    );

    let total = a.words().len();
    let workers = effective_workers(total, threads);
    if workers <= 1 {
        return crate::ops::hamming(a, b);
    }

    let chunk = total.div_ceil(workers);
    let (aw, bw) = (a.words(), b.words());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let lo = i * chunk;
                let hi = (lo + chunk).min(total);
                let (ac, bc) = (&aw[lo..hi], &bw[lo..hi]);
                scope.spawn(move |_| {
                    ac.iter()
                        .zip(bc)
                        .map(|(x, y)| u64::from((x ^ y).count_ones()))
                        .sum::<u64>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("hamming worker panicked"))
            .sum()
    })
    .expect("hamming scope panicked")
}

fn effective_workers(total_words: usize, threads: usize) -> usize {
    threads
        .min(total_words.div_ceil(MIN_WORDS_PER_THREAD))
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn checkerboards(width: u32, height: usize) -> (Bitmap, Bitmap) {
        let mut a = Bitmap::new(width, height);
        let mut b = Bitmap::new(width, height);
        for y in 0..height {
            for x in 0..width {
                if (x as usize + y).is_multiple_of(2) {
                    a.set(x, y, true);
                }
                if (x as usize + y).is_multiple_of(3) {
                    b.set(x, y, true);
                }
            }
        }
        (a, b)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (a, b) = checkerboards(1000, 50);
        let want = ops::xor(&a, &b);
        for threads in [1, 2, 3, 8] {
            assert_eq!(xor(&a, &b, threads), want, "threads={threads}");
        }
    }

    #[test]
    fn xor_into_reuses_buffer() {
        let (a, b) = checkerboards(300, 10);
        let mut out = Bitmap::new(300, 10);
        xor_into(&a, &b, &mut out, 4);
        assert_eq!(out, ops::xor(&a, &b));
    }

    #[test]
    fn parallel_hamming_matches_sequential() {
        let (a, b) = checkerboards(1000, 50);
        let want = ops::hamming(&a, &b);
        for threads in [1, 2, 5] {
            assert_eq!(hamming(&a, &b, threads), want, "threads={threads}");
        }
    }

    #[test]
    fn small_inputs_fall_back_to_single_worker() {
        // 10 words < MIN_WORDS_PER_THREAD; must still be correct.
        let (a, b) = checkerboards(64, 10);
        assert_eq!(xor(&a, &b, 16), ops::xor(&a, &b));
        assert_eq!(hamming(&a, &b, 16), ops::hamming(&a, &b));
    }

    #[test]
    fn large_input_uses_many_chunks_correctly() {
        // Force multiple real chunks: 64 * 20000 words.
        let mut a = Bitmap::new(6400, 2000);
        let mut b = Bitmap::new(6400, 2000);
        a.fill_rect(0, 0, 6400, 1000, true);
        b.fill_rect(3200, 500, 3200, 1500, true);
        assert_eq!(xor(&a, &b, 8), ops::xor(&a, &b));
        assert_eq!(hamming(&a, &b, 8), ops::hamming(&a, &b));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = xor(&Bitmap::new(10, 1), &Bitmap::new(10, 1), 0);
    }

    #[test]
    fn empty_bitmap_ok() {
        let a = Bitmap::new(0, 0);
        assert_eq!(xor(&a, &a.clone(), 4).count_ones(), 0);
        assert_eq!(hamming(&a, &a.clone(), 4), 0);
    }
}
