//! Dense (uncompressed) binary image substrate.
//!
//! The paper contrasts its compressed-domain systolic algorithm with
//! operating on raw bitmaps — both the sequential bitwise XOR and the
//! "constant time if the number of processors is proportional to the number
//! of pixels" parallel solution mentioned in its conclusions. This crate
//! provides that uncompressed world:
//!
//! * [`BitRow`] / [`Bitmap`] — `u64`-word-packed binary rows and images,
//! * [`ops`] — word-wise boolean operations and popcounts,
//! * [`par`] — multi-threaded dense XOR (the uncompressed parallel baseline),
//! * [`pbm`] — portable bitmap (P1/P4) reading and writing,
//! * [`convert`] — lossless conversion to and from the RLE representation.
//!
//! The dense XOR also serves as the *reference implementation* against which
//! both the sequential RLE merge and the systolic array are verified.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitmap;
pub mod bitrow;
pub mod convert;
pub mod ops;
pub mod par;
pub mod pbm;

pub use bitmap::Bitmap;
pub use bitrow::BitRow;
