//! Lossless conversion between the dense and RLE representations.
//!
//! Encoding scans packed words with trailing-zero arithmetic rather than
//! per-pixel loops, so converting sparse scan lines costs time proportional
//! to the number of *words plus runs*, not pixels.

use crate::bitmap::Bitmap;
use crate::bitrow::{BitRow, WORD_BITS};
use rle::{RleImage, RleRow, Run};

/// Run-length encodes a dense row. The result is canonical by construction.
#[must_use]
pub fn encode_row(row: &BitRow) -> RleRow {
    let mut out = RleRow::new(row.width());
    encode_row_into(row, &mut out);
    out
}

/// [`encode_row`] into a reusable output row (reset to the dense row's
/// width first), so repeated encodes reuse one run allocation.
pub fn encode_row_into(row: &BitRow, out: &mut RleRow) {
    out.reset(row.width());
    let words = row.words();
    let mut run_start: Option<u32> = None;
    for (wi, &word) in words.iter().enumerate() {
        let base = wi as u32 * WORD_BITS;
        let mut w = word;
        if let Some(start) = run_start {
            // A run is open across the word boundary: find where it ends.
            let ones = (!w).trailing_zeros().min(WORD_BITS);
            if ones == WORD_BITS {
                continue; // run spans this entire word
            }
            out.push_run(Run::new(start, base + ones - start))
                .expect("encoder emits in order");
            run_start = None;
            w &= !((1u64 << ones) - 1);
        }
        while w != 0 {
            let start_bit = w.trailing_zeros();
            let after_start = w >> start_bit;
            let len = (!after_start).trailing_zeros().min(WORD_BITS - start_bit);
            if start_bit + len == WORD_BITS {
                run_start = Some(base + start_bit);
                break;
            }
            out.push_run(Run::new(base + start_bit, len))
                .expect("encoder emits in order");
            // Clear the bits of the emitted run.
            w &= !(((1u64 << len) - 1) << start_bit);
        }
    }
    if let Some(start) = run_start {
        out.push_run(Run::new(start, row.width() - start))
            .expect("encoder emits in order");
    }
}

/// Decodes an RLE row into a dense row.
#[must_use]
pub fn decode_row(row: &RleRow) -> BitRow {
    let mut out = BitRow::new(row.width());
    fill_dense(row, &mut out);
    out
}

/// [`decode_row`] into a reusable dense row (reset to the RLE row's width
/// first), so repeated decodes reuse one word buffer.
pub fn decode_row_into(row: &RleRow, out: &mut BitRow) {
    out.reset(row.width());
    fill_dense(row, out);
}

fn fill_dense(row: &RleRow, out: &mut BitRow) {
    for run in row.runs() {
        out.set_range(run.start(), run.end(), true);
    }
}

/// Run-length encodes a whole bitmap, row by row.
#[must_use]
pub fn encode(bm: &Bitmap) -> RleImage {
    let rows = (0..bm.height())
        .map(|y| encode_row(&bm.extract_row(y)))
        .collect();
    RleImage::from_rows(bm.width(), rows).expect("encoder preserves widths")
}

/// Decodes an RLE image into a bitmap.
#[must_use]
pub fn decode(img: &RleImage) -> Bitmap {
    let mut bm = Bitmap::new(img.width(), img.height());
    for (y, row) in img.rows().iter().enumerate() {
        bm.set_row(y, &decode_row(row));
    }
    bm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_row(width: u32, ones: &[u32]) {
        let mut dense = BitRow::new(width);
        for &p in ones {
            dense.set(p, true);
        }
        let encoded = encode_row(&dense);
        assert!(encoded.is_canonical(), "{encoded:?}");
        assert_eq!(decode_row(&encoded), dense, "width={width}, ones={ones:?}");
    }

    #[test]
    fn encode_empty_and_full() {
        round_trip_row(100, &[]);
        let full: Vec<u32> = (0..100).collect();
        round_trip_row(100, &full);
        let r = {
            let mut d = BitRow::new(100);
            d.set_range(0, 99, true);
            encode_row(&d)
        };
        assert_eq!(r.runs(), &[Run::new(0, 100)]);
    }

    #[test]
    fn encode_runs_at_word_boundaries() {
        round_trip_row(200, &[63]);
        round_trip_row(200, &[64]);
        round_trip_row(200, &[63, 64]);
        round_trip_row(200, &[62, 63, 64, 65]);
        round_trip_row(200, &[0, 199]);
    }

    #[test]
    fn encode_run_spanning_multiple_words() {
        let mut d = BitRow::new(300);
        d.set_range(10, 250, true);
        let e = encode_row(&d);
        assert_eq!(e.runs(), &[Run::new(10, 241)]);
        assert_eq!(decode_row(&e), d);
    }

    #[test]
    fn encode_run_to_row_end() {
        let mut d = BitRow::new(130);
        d.set_range(120, 129, true);
        let e = encode_row(&d);
        assert_eq!(e.runs(), &[Run::new(120, 10)]);
    }

    #[test]
    fn encode_alternating_pattern() {
        let width = 130;
        let ones: Vec<u32> = (0..width).filter(|p| p % 2 == 0).collect();
        let mut d = BitRow::new(width);
        for &p in &ones {
            d.set(p, true);
        }
        let e = encode_row(&d);
        assert_eq!(e.run_count(), ones.len());
        assert_eq!(decode_row(&e), d);
    }

    #[test]
    fn encode_matches_naive_bit_encoder() {
        // Pseudo-random rows vs the rle crate's naive from_bits.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for width in [1u32, 17, 64, 65, 127, 128, 129, 1000] {
            let mut d = BitRow::new(width);
            for p in 0..width {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> 40 & 1 == 1 {
                    d.set(p, true);
                }
            }
            let fast = encode_row(&d);
            let naive = RleRow::from_bits(&d.to_bits());
            assert_eq!(fast, naive, "width={width}");
        }
    }

    #[test]
    fn into_variants_reuse_buffers_across_widths() {
        let mut dense = BitRow::new(0);
        let mut rle_out = RleRow::new(0);
        for width in [1u32, 64, 65, 127, 300, 40] {
            let mut d = BitRow::new(width);
            for p in (0..width).step_by(3) {
                d.set(p, true);
            }
            let reference = encode_row(&d);
            encode_row_into(&d, &mut rle_out);
            assert_eq!(rle_out, reference, "width={width}");
            decode_row_into(&reference, &mut dense);
            assert_eq!(dense, d, "width={width}");
        }
    }

    #[test]
    fn image_round_trip() {
        let mut bm = Bitmap::new(100, 20);
        bm.fill_rect(5, 2, 30, 10, true);
        bm.fill_rect(60, 0, 40, 20, true);
        bm.set(0, 19, true);
        let img = encode(&bm);
        assert_eq!(img.width(), 100);
        assert_eq!(img.height(), 20);
        assert_eq!(decode(&img), bm);
        assert_eq!(img.ones(), bm.count_ones());
    }

    #[test]
    fn zero_width_round_trip() {
        let bm = Bitmap::new(0, 3);
        assert_eq!(decode(&encode(&bm)), bm);
    }
}
