//! Portable bitmap (PBM) I/O: ASCII `P1` and binary `P4`.
//!
//! PBM is the simplest interchange format for binary images and is what a
//! real inspection pipeline would ingest before run-length encoding. In PBM,
//! `1` means black; we map black to *foreground* (`true`).

use crate::bitmap::Bitmap;
use std::io::{self, BufRead, Read, Write};

/// Errors arising while parsing PBM data.
#[derive(Debug)]
pub enum PbmError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic number was not `P1` or `P4`.
    BadMagic(String),
    /// Header was truncated or dimensions malformed.
    BadHeader,
    /// Fewer pixels/bytes than the header promised.
    Truncated,
    /// A `P1` body contained a character other than `0`, `1`, whitespace or
    /// comments.
    BadDigit(char),
}

impl std::fmt::Display for PbmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PbmError::Io(e) => write!(f, "i/o error: {e}"),
            PbmError::BadMagic(m) => write!(f, "not a PBM file (magic {m:?})"),
            PbmError::BadHeader => write!(f, "malformed PBM header"),
            PbmError::Truncated => write!(f, "PBM data shorter than header promised"),
            PbmError::BadDigit(c) => write!(f, "unexpected character {c:?} in P1 body"),
        }
    }
}

impl std::error::Error for PbmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PbmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PbmError {
    fn from(e: io::Error) -> Self {
        PbmError::Io(e)
    }
}

/// Writes a bitmap as ASCII `P1`, 70-column wrapped per the spec.
pub fn write_p1(bm: &Bitmap, out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "P1")?;
    writeln!(out, "{} {}", bm.width(), bm.height())?;
    let mut col = 0;
    for y in 0..bm.height() {
        for x in 0..bm.width() {
            if col >= 35 {
                writeln!(out)?;
                col = 0;
            }
            write!(out, "{} ", u8::from(bm.get(x, y)))?;
            col += 1;
        }
    }
    writeln!(out)?;
    Ok(())
}

/// Writes a bitmap as binary `P4` (rows padded to whole bytes, MSB-first).
pub fn write_p4(bm: &Bitmap, out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "P4")?;
    writeln!(out, "{} {}", bm.width(), bm.height())?;
    let bytes_per_row = (bm.width() as usize).div_ceil(8);
    let mut row = vec![0u8; bytes_per_row];
    for y in 0..bm.height() {
        row.fill(0);
        for x in 0..bm.width() {
            if bm.get(x, y) {
                row[(x / 8) as usize] |= 0x80 >> (x % 8);
            }
        }
        out.write_all(&row)?;
    }
    Ok(())
}

/// Reads a PBM image (auto-detecting `P1` vs `P4`).
pub fn read(input: &mut impl Read) -> Result<Bitmap, PbmError> {
    let mut data = Vec::new();
    input.read_to_end(&mut data)?;
    let mut pos = 0usize;

    let magic = read_token(&data, &mut pos).ok_or(PbmError::BadHeader)?;
    if magic != b"P1" && magic != b"P4" {
        return Err(PbmError::BadMagic(
            String::from_utf8_lossy(&magic).into_owned(),
        ));
    }
    let width: u32 = parse_dim(&data, &mut pos)?;
    let height: usize = parse_dim(&data, &mut pos)? as usize;
    let mut bm = Bitmap::new(width, height);

    if magic == b"P1" {
        let mut x = 0u32;
        let mut y = 0usize;
        let total = u64::from(width) * height as u64;
        let mut seen = 0u64;
        while pos < data.len() && seen < total {
            let c = data[pos];
            pos += 1;
            match c {
                b'0' | b'1' => {
                    if c == b'1' {
                        bm.set(x, y, true);
                    }
                    seen += 1;
                    x += 1;
                    if x == width {
                        x = 0;
                        y += 1;
                    }
                }
                b'#' => skip_comment(&data, &mut pos),
                c if c.is_ascii_whitespace() => {}
                c => return Err(PbmError::BadDigit(c as char)),
            }
        }
        if seen < total {
            return Err(PbmError::Truncated);
        }
    } else {
        // P4: exactly one whitespace byte after the header, then raw rows.
        let bytes_per_row = (width as usize).div_ceil(8);
        let needed = bytes_per_row * height;
        if data.len() < pos + needed {
            return Err(PbmError::Truncated);
        }
        for y in 0..height {
            let row = &data[pos + y * bytes_per_row..pos + (y + 1) * bytes_per_row];
            for x in 0..width {
                if row[(x / 8) as usize] & (0x80 >> (x % 8)) != 0 {
                    bm.set(x, y, true);
                }
            }
        }
    }
    Ok(bm)
}

/// Convenience: read a PBM from any `BufRead` source (e.g. a file).
pub fn read_buf(input: &mut impl BufRead) -> Result<Bitmap, PbmError> {
    read(input)
}

fn skip_comment(data: &[u8], pos: &mut usize) {
    while *pos < data.len() && data[*pos] != b'\n' {
        *pos += 1;
    }
}

fn read_token(data: &[u8], pos: &mut usize) -> Option<Vec<u8>> {
    // Skip whitespace and comments.
    loop {
        while *pos < data.len() && data[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if *pos < data.len() && data[*pos] == b'#' {
            skip_comment(data, pos);
        } else {
            break;
        }
    }
    if *pos >= data.len() {
        return None;
    }
    let start = *pos;
    while *pos < data.len() && !data[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
    let token = data[start..*pos].to_vec();
    // Consume the single whitespace that terminates the token (significant
    // before a P4 body).
    if *pos < data.len() {
        *pos += 1;
    }
    Some(token)
}

fn parse_dim(data: &[u8], pos: &mut usize) -> Result<u32, PbmError> {
    let token = read_token(data, pos).ok_or(PbmError::BadHeader)?;
    std::str::from_utf8(&token)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(PbmError::BadHeader)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bitmap {
        let mut bm = Bitmap::new(11, 3);
        bm.fill_rect(1, 0, 3, 2, true);
        bm.set(10, 2, true);
        bm
    }

    #[test]
    fn p1_round_trip() {
        let bm = sample();
        let mut buf = Vec::new();
        write_p1(&bm, &mut buf).unwrap();
        let back = read(&mut &buf[..]).unwrap();
        assert_eq!(back, bm);
    }

    #[test]
    fn p4_round_trip() {
        let bm = sample();
        let mut buf = Vec::new();
        write_p4(&bm, &mut buf).unwrap();
        let back = read(&mut &buf[..]).unwrap();
        assert_eq!(back, bm);
    }

    #[test]
    fn p4_round_trip_byte_aligned_width() {
        let mut bm = Bitmap::new(16, 2);
        bm.fill_rect(7, 0, 2, 2, true);
        let mut buf = Vec::new();
        write_p4(&bm, &mut buf).unwrap();
        assert_eq!(read(&mut &buf[..]).unwrap(), bm);
    }

    #[test]
    fn p1_with_comments_and_loose_whitespace() {
        let text = "P1\n# a comment\n 3 2 \n1 0 1\n# trailing comment\n0 1 0\n";
        let bm = read(&mut text.as_bytes()).unwrap();
        assert_eq!(bm.to_ascii(), "#.#\n.#.\n");
    }

    #[test]
    fn p1_compact_digits() {
        let text = "P1\n3 2\n101010";
        let bm = read(&mut text.as_bytes()).unwrap();
        assert_eq!(bm.to_ascii(), "#.#\n.#.\n");
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            read(&mut "P5\n1 1\n0".as_bytes()),
            Err(PbmError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_truncated_p1() {
        assert!(matches!(
            read(&mut "P1\n3 2\n1 0".as_bytes()),
            Err(PbmError::Truncated)
        ));
    }

    #[test]
    fn rejects_truncated_p4() {
        let text = b"P4\n16 2\n\x00";
        assert!(matches!(read(&mut &text[..]), Err(PbmError::Truncated)));
    }

    #[test]
    fn rejects_bad_digit() {
        assert!(matches!(
            read(&mut "P1\n2 1\n1 2".as_bytes()),
            Err(PbmError::BadDigit('2'))
        ));
    }

    #[test]
    fn rejects_malformed_header() {
        assert!(matches!(
            read(&mut "P1\nxyz 2\n".as_bytes()),
            Err(PbmError::BadHeader)
        ));
        assert!(matches!(
            read(&mut "P1".as_bytes()),
            Err(PbmError::BadHeader)
        ));
    }

    #[test]
    fn error_display() {
        assert!(PbmError::BadMagic("P9".into()).to_string().contains("P9"));
        assert!(PbmError::Truncated.to_string().contains("shorter"));
    }
}
