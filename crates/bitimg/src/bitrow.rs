//! A word-packed binary image row.

use std::fmt;

/// Bits per storage word.
pub const WORD_BITS: u32 = u64::BITS;

/// A binary row of `width` pixels packed into `u64` words, least-significant
/// bit first (pixel `p` lives in word `p / 64`, bit `p % 64`).
///
/// Bits at positions `>= width` in the last word are always zero — every
/// mutator maintains this so popcounts and word-wise comparisons never need
/// masking.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitRow {
    width: u32,
    words: Vec<u64>,
}

/// Number of words needed for `width` bits.
#[must_use]
pub fn words_for(width: u32) -> usize {
    (width as usize).div_ceil(WORD_BITS as usize)
}

impl BitRow {
    /// All-background row of the given width.
    #[must_use]
    pub fn new(width: u32) -> Self {
        Self {
            width,
            words: vec![0; words_for(width)],
        }
    }

    /// Builds a row from a bit slice.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Self {
        let width = u32::try_from(bits.len()).expect("row too wide");
        let mut row = Self::new(width);
        for (p, &b) in bits.iter().enumerate() {
            if b {
                row.set(p as u32, true);
            }
        }
        row
    }

    /// Decodes into a bit vector of length `width`.
    #[must_use]
    pub fn to_bits(&self) -> Vec<bool> {
        (0..self.width).map(|p| self.get(p)).collect()
    }

    /// Builds a row directly from packed words. Excess high bits in the last
    /// word are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != words_for(width)`.
    #[must_use]
    pub fn from_words(width: u32, mut words: Vec<u64>) -> Self {
        assert_eq!(words.len(), words_for(width), "word count must match width");
        let tail = width % WORD_BITS;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        Self { width, words }
    }

    /// Reconfigures this row to an all-background row of `width`, reusing
    /// the word buffer (no allocation when the new width needs no more
    /// words than the row has ever held).
    pub fn reset(&mut self, width: u32) {
        self.width = width;
        self.words.clear();
        self.words.resize(words_for(width), 0);
    }

    /// Row width in pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The packed words (LSB-first within each word).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable packed words. The caller must keep the tail bits clear;
    /// [`BitRow::mask_tail`] restores the invariant.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Clears any bits at positions `>= width` in the last word.
    pub fn mask_tail(&mut self) {
        let tail = self.width % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Pixel accessor.
    #[must_use]
    pub fn get(&self, p: u32) -> bool {
        debug_assert!(p < self.width);
        (self.words[(p / WORD_BITS) as usize] >> (p % WORD_BITS)) & 1 == 1
    }

    /// Pixel mutator.
    pub fn set(&mut self, p: u32, value: bool) {
        debug_assert!(p < self.width);
        let w = (p / WORD_BITS) as usize;
        let bit = 1u64 << (p % WORD_BITS);
        if value {
            self.words[w] |= bit;
        } else {
            self.words[w] &= !bit;
        }
    }

    /// Sets the inclusive pixel range `[start, end]` to `value`.
    pub fn set_range(&mut self, start: u32, end: u32, value: bool) {
        debug_assert!(start <= end && end < self.width);
        let (ws, we) = ((start / WORD_BITS) as usize, (end / WORD_BITS) as usize);
        for w in ws..=we {
            let lo = if w == ws { start % WORD_BITS } else { 0 };
            let hi = if w == we {
                end % WORD_BITS
            } else {
                WORD_BITS - 1
            };
            // Mask covering bits lo..=hi of the word.
            let mask = (u64::MAX >> (WORD_BITS - 1 - hi)) & (u64::MAX << lo);
            if value {
                self.words[w] |= mask;
            } else {
                self.words[w] &= !mask;
            }
        }
    }

    /// Toggles every pixel in the inclusive range `[start, end]`. Two
    /// toggles of the same range cancel, so XOR-accumulating disjoint run
    /// sets into a zeroed row is equivalent to setting them; the run-
    /// cancellation diff kernel relies on exactly that.
    pub fn toggle_range(&mut self, start: u32, end: u32) {
        debug_assert!(start <= end && end < self.width);
        let (ws, we) = ((start / WORD_BITS) as usize, (end / WORD_BITS) as usize);
        for w in ws..=we {
            let lo = if w == ws { start % WORD_BITS } else { 0 };
            let hi = if w == we {
                end % WORD_BITS
            } else {
                WORD_BITS - 1
            };
            let mask = (u64::MAX >> (WORD_BITS - 1 - hi)) & (u64::MAX << lo);
            self.words[w] ^= mask;
        }
    }

    /// Number of foreground pixels.
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Whether the row is all background.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterator over set-bit positions, in increasing order. Uses
    /// trailing-zero scanning so sparse rows are cheap.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1; // clear lowest set bit
                Some(wi as u32 * WORD_BITS + bit)
            })
        })
    }
}

impl fmt::Debug for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitRow[w={}, ones={}]", self.width, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let r = BitRow::new(100);
        assert_eq!(r.width(), 100);
        assert_eq!(r.words().len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.count_ones(), 0);
    }

    #[test]
    fn toggle_range_flips_and_cancels() {
        let mut r = BitRow::new(130);
        r.toggle_range(3, 70);
        let mut expected = BitRow::new(130);
        expected.set_range(3, 70, true);
        assert_eq!(r.words(), expected.words());
        // An overlapping toggle flips the intersection back off.
        r.toggle_range(60, 129);
        for p in 0..130u32 {
            let want = (3..=59).contains(&p) || (71..=129).contains(&p);
            assert_eq!(r.get(p), want, "pixel {p}");
        }
        // Toggling the same range again restores the previous state.
        r.toggle_range(60, 129);
        assert_eq!(r.words(), expected.words());
    }

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
    }

    #[test]
    fn get_set_round_trip() {
        let mut r = BitRow::new(130);
        for p in [0u32, 1, 63, 64, 65, 127, 128, 129] {
            r.set(p, true);
            assert!(r.get(p), "pixel {p}");
        }
        assert_eq!(r.count_ones(), 8);
        r.set(64, false);
        assert!(!r.get(64));
        assert_eq!(r.count_ones(), 7);
    }

    #[test]
    fn bits_round_trip() {
        let mut bits = vec![false; 70];
        for p in [0usize, 5, 63, 64, 69] {
            bits[p] = true;
        }
        let r = BitRow::from_bits(&bits);
        assert_eq!(r.to_bits(), bits);
    }

    #[test]
    fn reset_clears_and_resizes() {
        let mut r = BitRow::new(130);
        r.set_range(0, 129, true);
        r.reset(65);
        assert_eq!(r.width(), 65);
        assert_eq!(r.words().len(), 2);
        assert!(r.is_empty(), "reset must clear old bits");
        r.set(64, true);
        r.reset(200);
        assert_eq!(r.words().len(), 4);
        assert!(r.is_empty());
    }

    #[test]
    fn from_words_masks_tail() {
        let r = BitRow::from_words(65, vec![u64::MAX, u64::MAX]);
        assert_eq!(r.count_ones(), 65);
        assert_eq!(r.words()[1], 1);
    }

    #[test]
    #[should_panic(expected = "word count must match width")]
    fn from_words_checks_length() {
        let _ = BitRow::from_words(65, vec![0]);
    }

    #[test]
    fn set_range_within_one_word() {
        let mut r = BitRow::new(64);
        r.set_range(3, 10, true);
        assert_eq!(r.count_ones(), 8);
        assert!(!r.get(2) && r.get(3) && r.get(10) && !r.get(11));
        r.set_range(5, 6, false);
        assert_eq!(r.count_ones(), 6);
    }

    #[test]
    fn set_range_spanning_words() {
        let mut r = BitRow::new(200);
        r.set_range(60, 140, true);
        assert_eq!(r.count_ones(), 81);
        for p in 60..=140 {
            assert!(r.get(p), "pixel {p}");
        }
        assert!(!r.get(59) && !r.get(141));
    }

    #[test]
    fn set_range_single_pixel_and_word_edges() {
        let mut r = BitRow::new(128);
        r.set_range(63, 63, true);
        r.set_range(64, 64, true);
        assert_eq!(r.count_ones(), 2);
        r.set_range(0, 127, true);
        assert_eq!(r.count_ones(), 128);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut r = BitRow::new(130);
        let expected = vec![0u32, 5, 63, 64, 100, 129];
        for &p in &expected {
            r.set(p, true);
        }
        assert_eq!(r.iter_ones().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn zero_width_row() {
        let r = BitRow::new(0);
        assert!(r.is_empty());
        assert_eq!(r.iter_ones().count(), 0);
        assert_eq!(r.to_bits().len(), 0);
    }

    #[test]
    fn mask_tail_restores_invariant() {
        let mut r = BitRow::new(65);
        r.words_mut()[1] = u64::MAX;
        r.mask_tail();
        assert_eq!(r.count_ones(), 1);
    }
}
