//! A dense binary image: flat word storage with a fixed row stride.

use crate::bitrow::{words_for, BitRow, WORD_BITS};
use std::fmt;

/// A dense binary image of `width × height` pixels.
///
/// Storage is a single flat `Vec<u64>` with `words_per_row` stride so that
/// whole-image operations are cache-friendly straight-line word loops and can
/// be chunked across threads (see [`crate::par`]). Tail bits of each row are
/// kept zero, mirroring the [`BitRow`] invariant.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    width: u32,
    height: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// All-background image.
    #[must_use]
    pub fn new(width: u32, height: usize) -> Self {
        let words_per_row = words_for(width);
        Self {
            width,
            height,
            words_per_row,
            words: vec![0; words_per_row * height],
        }
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in rows.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Words per row (the stride).
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The flat word storage.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable flat word storage. Callers must preserve the tail-bit
    /// invariant per row.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// The words of row `y`.
    #[must_use]
    pub fn row_words(&self, y: usize) -> &[u64] {
        let s = y * self.words_per_row;
        &self.words[s..s + self.words_per_row]
    }

    /// Mutable words of row `y`.
    pub fn row_words_mut(&mut self, y: usize) -> &mut [u64] {
        let s = y * self.words_per_row;
        &mut self.words[s..s + self.words_per_row]
    }

    /// Pixel accessor.
    #[must_use]
    pub fn get(&self, x: u32, y: usize) -> bool {
        debug_assert!(x < self.width && y < self.height);
        let w = y * self.words_per_row + (x / WORD_BITS) as usize;
        (self.words[w] >> (x % WORD_BITS)) & 1 == 1
    }

    /// Pixel mutator.
    pub fn set(&mut self, x: u32, y: usize, value: bool) {
        debug_assert!(x < self.width && y < self.height);
        let w = y * self.words_per_row + (x / WORD_BITS) as usize;
        let bit = 1u64 << (x % WORD_BITS);
        if value {
            self.words[w] |= bit;
        } else {
            self.words[w] &= !bit;
        }
    }

    /// Copies a [`BitRow`] into row `y`.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the image width.
    pub fn set_row(&mut self, y: usize, row: &BitRow) {
        assert_eq!(row.width(), self.width, "row width mismatch");
        self.row_words_mut(y).copy_from_slice(row.words());
    }

    /// Extracts row `y` as an owned [`BitRow`].
    #[must_use]
    pub fn extract_row(&self, y: usize) -> BitRow {
        BitRow::from_words(self.width, self.row_words(y).to_vec())
    }

    /// Draws an axis-aligned filled rectangle; coordinates are clamped to
    /// the image, so partially off-image rectangles are fine.
    pub fn fill_rect(&mut self, x0: u32, y0: usize, w: u32, h: usize, value: bool) {
        if w == 0 || h == 0 || x0 >= self.width || y0 >= self.height {
            return;
        }
        let x1 = (x0 + w - 1).min(self.width - 1);
        let y1 = (y0 + h - 1).min(self.height - 1);
        for y in y0..=y1 {
            let mut row = self.extract_row(y);
            row.set_range(x0, x1, value);
            self.set_row(y, &row);
        }
    }

    /// The transposed image (rows become columns). Enables vertical
    /// processing — e.g. column-wise RLE operations or 2-D separable
    /// morphology — through the row-oriented machinery.
    #[must_use]
    pub fn transpose(&self) -> Bitmap {
        let mut out = Bitmap::new(
            u32::try_from(self.height).expect("height fits in u32"),
            self.width as usize,
        );
        // Word-blocked loop: walk source words and scatter set bits, so
        // sparse images cost ~ones, not width × height.
        for y in 0..self.height {
            for (wi, &word) in self.row_words(y).iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let bit = w.trailing_zeros();
                    w &= w - 1;
                    let x = wi as u32 * WORD_BITS + bit;
                    out.set(y as u32, x as usize, true);
                }
            }
        }
        out
    }

    /// Total foreground pixels.
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Foreground fraction.
    #[must_use]
    pub fn density(&self) -> f64 {
        let total = u64::from(self.width) * self.height as u64;
        if total == 0 {
            0.0
        } else {
            self.count_ones() as f64 / total as f64
        }
    }

    /// Renders as `.`/`#` ASCII art (same format as `rle::RleImage`).
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut s = String::with_capacity((self.width as usize + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                s.push(if self.get(x, y) { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Bitmap[{}x{}, ones={}, density {:.3}]",
            self.width,
            self.height,
            self.count_ones(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let bm = Bitmap::new(100, 3);
        assert_eq!(bm.width(), 100);
        assert_eq!(bm.height(), 3);
        assert_eq!(bm.words_per_row(), 2);
        assert_eq!(bm.words().len(), 6);
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn get_set_pixels() {
        let mut bm = Bitmap::new(70, 2);
        bm.set(0, 0, true);
        bm.set(69, 1, true);
        bm.set(64, 0, true);
        assert!(bm.get(0, 0) && bm.get(69, 1) && bm.get(64, 0));
        assert!(!bm.get(1, 0) && !bm.get(69, 0));
        assert_eq!(bm.count_ones(), 3);
        bm.set(0, 0, false);
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn row_round_trip() {
        let mut bm = Bitmap::new(70, 2);
        let mut row = BitRow::new(70);
        row.set_range(10, 20, true);
        bm.set_row(1, &row);
        assert_eq!(bm.extract_row(1), row);
        assert_eq!(bm.extract_row(0), BitRow::new(70));
        assert_eq!(bm.count_ones(), 11);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn set_row_checks_width() {
        let mut bm = Bitmap::new(70, 1);
        bm.set_row(0, &BitRow::new(64));
    }

    #[test]
    fn fill_rect_basic() {
        let mut bm = Bitmap::new(10, 5);
        bm.fill_rect(2, 1, 3, 2, true);
        assert_eq!(bm.count_ones(), 6);
        assert!(bm.get(2, 1) && bm.get(4, 2));
        assert!(!bm.get(5, 1) && !bm.get(2, 3));
        bm.fill_rect(3, 1, 1, 1, false);
        assert_eq!(bm.count_ones(), 5);
    }

    #[test]
    fn fill_rect_clamps() {
        let mut bm = Bitmap::new(10, 5);
        bm.fill_rect(8, 4, 100, 100, true);
        assert_eq!(bm.count_ones(), 2); // pixels (8,4), (9,4)
        bm.fill_rect(20, 0, 5, 5, true); // fully off-image
        assert_eq!(bm.count_ones(), 2);
        bm.fill_rect(0, 0, 0, 3, true); // zero-sized
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn transpose_swaps_axes() {
        let mut bm = Bitmap::new(5, 3);
        bm.set(0, 0, true);
        bm.set(4, 0, true);
        bm.set(2, 2, true);
        let t = bm.transpose();
        assert_eq!((t.width(), t.height()), (3, 5));
        assert!(t.get(0, 0) && t.get(0, 4) && t.get(2, 2));
        assert_eq!(t.count_ones(), bm.count_ones());
    }

    #[test]
    fn transpose_is_involutive() {
        let mut bm = Bitmap::new(130, 70); // spans word boundaries
        bm.fill_rect(60, 10, 10, 30, true);
        bm.set(129, 69, true);
        bm.set(0, 0, true);
        assert_eq!(bm.transpose().transpose(), bm);
    }

    #[test]
    fn transpose_exhaustive_small() {
        let mut bm = Bitmap::new(3, 2);
        bm.set(1, 0, true);
        bm.set(2, 1, true);
        let t = bm.transpose();
        for x in 0..3u32 {
            for y in 0..2usize {
                assert_eq!(bm.get(x, y), t.get(y as u32, x as usize), "({x},{y})");
            }
        }
    }

    #[test]
    fn transpose_empty_and_degenerate() {
        assert_eq!(Bitmap::new(0, 5).transpose(), Bitmap::new(5, 0));
        assert_eq!(Bitmap::new(7, 0).transpose(), Bitmap::new(0, 7));
    }

    #[test]
    fn ascii_rendering() {
        let mut bm = Bitmap::new(4, 2);
        bm.set(0, 0, true);
        bm.set(3, 1, true);
        assert_eq!(bm.to_ascii(), "#...\n...#\n");
    }

    #[test]
    fn density() {
        let mut bm = Bitmap::new(10, 1);
        bm.fill_rect(0, 0, 5, 1, true);
        assert!((bm.density() - 0.5).abs() < 1e-12);
        assert_eq!(Bitmap::new(0, 0).density(), 0.0);
    }
}
