//! Shared workload construction for the Criterion benches (the targets live
//! in `benches/`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rle::RleRow;
use workload::{ErrorModel, GenParams, RowGenerator};

/// A deterministic paper-style row pair: `width` pixels at 30 % density,
/// with `error_fraction` of the pixels flipped in 2–6 px runs.
pub fn paper_pair(width: u32, error_fraction: f64, seed: u64) -> (RleRow, RleRow) {
    let params = GenParams::for_density(width, 0.3);
    let mut rng = StdRng::seed_from_u64(seed);
    let a = RowGenerator::new(params, rng.gen()).next_row();
    let b = workload::errors::apply_errors_rng(&a, &ErrorModel::fraction(error_fraction), &mut rng);
    (a, b)
}

/// A paper-style pair in the *fixed error* regime: `count` error runs of
/// `len` pixels each, regardless of image size (Table 1's second block).
pub fn fixed_error_pair(width: u32, count: usize, len: u32, seed: u64) -> (RleRow, RleRow) {
    let params = GenParams::for_density(width, 0.3);
    let mut rng = StdRng::seed_from_u64(seed);
    let a = RowGenerator::new(params, rng.gen()).next_row();
    let b = workload::errors::apply_errors_rng(&a, &ErrorModel::fixed(count, len), &mut rng);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_are_deterministic_and_similar() {
        let (a1, b1) = paper_pair(4096, 0.02, 5);
        let (a2, b2) = paper_pair(4096, 0.02, 5);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert!(rle::metrics::hamming(&a1, &b1) > 0);
    }

    #[test]
    fn fixed_pair_has_exact_error_budget() {
        let (a, b) = fixed_error_pair(4096, 6, 4, 9);
        assert_eq!(rle::metrics::hamming(&a, &b), 24);
    }
}
