//! Experiment E12: scaling of the barrier-synchronised parallel engine
//! with worker threads on a large cell array (our simulator substrate;
//! real hardware is parallel by construction).

use bench::paper_pair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use systolic_core::engine::parallel::run_parallel;

fn scaling(c: &mut Criterion) {
    // ~50k runs per side → ~100k cells; each iteration scans all of them,
    // so one run costs ~100M cell-updates — big enough to expose scaling,
    // small enough for criterion.
    let (a, b) = paper_pair(2_000_000, 0.001, 0x5CA1E);

    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, &t| {
                bench.iter(|| {
                    let mut m = systolic_core::SystolicArray::load(&a, &b).unwrap();
                    m.enable_invariant_checks(false);
                    run_parallel(&mut m, t).unwrap();
                    black_box(m.stats().iterations)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_millis(1600));
    targets = scaling
}
criterion_main!(benches);
