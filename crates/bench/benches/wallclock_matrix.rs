//! The conclusions' trade-off, measured (experiment E11): compressed-domain
//! algorithms vs. the uncompressed baselines on the same 1 M-pixel rows.
//!
//! * sequential RLE merge — `O(k1 + k2)`, no decompression;
//! * systolic simulation — what the hardware would execute;
//! * dense word XOR — the "constant time with enough processors" world,
//!   flattened onto one core's word loop;
//! * dense XOR + re-encode — the honest uncompressed pipeline when the
//!   result must go back to RLE storage;
//! * multi-threaded dense XOR — the parallel uncompressed baseline.

use bench::paper_pair;
use bitimg::convert::{decode_row, encode_row};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn matrix(c: &mut Criterion) {
    let width: u32 = 1_000_000;
    let (a, b) = paper_pair(width, 0.01, 0xCAFE);
    let (da, db) = (decode_row(&a), decode_row(&b));

    let mut bma = bitimg::Bitmap::new(width, 1);
    let mut bmb = bitimg::Bitmap::new(width, 1);
    bma.set_row(0, &da);
    bmb.set_row(0, &db);

    let mut group = c.benchmark_group("wallclock_1Mpx");
    group.bench_function("rle_sequential_merge", |bench| {
        bench.iter(|| black_box(rle::ops::xor_raw_with_stats(&a, &b)));
    });
    group.bench_function("systolic_simulation", |bench| {
        bench.iter(|| {
            let mut m = systolic_core::SystolicArray::load(&a, &b).unwrap();
            m.enable_invariant_checks(false);
            m.run().unwrap();
            black_box(m.stats().iterations)
        });
    });
    group.bench_function("dense_word_xor", |bench| {
        bench.iter(|| black_box(bitimg::ops::xor_row(&da, &db)));
    });
    group.bench_function("dense_xor_plus_reencode", |bench| {
        bench.iter(|| {
            let x = bitimg::ops::xor_row(&da, &db);
            black_box(encode_row(&x))
        });
    });
    for threads in [2usize, 4, 8] {
        group.bench_function(format!("dense_parallel_xor_{threads}t"), |bench| {
            bench.iter(|| black_box(bitimg::par::xor(&bma, &bmb, threads)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12).warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_millis(1600));
    targets = matrix
}
criterion_main!(benches);
