//! Experiment E16: incremental differencing of frame sequences via the
//! signature prefilter, plus the delta archive's storage/replay costs.
//!
//! A frame sequence with bounded row churn is the workload the rolling
//! row signatures were built for: when only `c·height` rows change per
//! frame, diffing consecutive frames through the prefilter pipeline
//! (`DiffPipelineConfig::signature_prefilter`) short-circuits the other
//! `(1−c)·height` rows host-side — no chunk, no checkout, no kernel. This
//! bench sweeps churn from 1 % to 50 % and compares the prefilter
//! pipeline against the plain pipeline on the identical frame stream,
//! asserting bit-identical outputs. It then times `archive::DeltaArchive`
//! append/extract over the same stream and reports the storage ratio
//! against encoding every frame in full.
//!
//! Results go to `BENCH_delta.json` at the workspace root. Hand-rolled
//! timing loop (not criterion): the comparison needs raw sample access
//! for the JSON report.
//!
//! Set `BENCH_SMOKE=1` for a seconds-scale smoke run (small frames, one
//! sample) — used by the CI delta-smoke job. The smoke run keeps the
//! speedup guard (prefilter must win at 10 % churn) when the host has
//! enough cores to show it, and leaves `BENCH_delta.json` untouched.

use rle::RleImage;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use systolic_core::DiffPipelineConfig;
use workload::{FrameSequence, GenParams, SequenceParams};

/// Full-run geometry: matches the E13 pipeline bench so the absolute
/// milliseconds are comparable across BENCH_pipeline.json and this file.
const WIDTH: u32 = 16_384;
const HEIGHT: usize = 1024;
const FRAMES: usize = 100;
const SAMPLES: usize = 3;
const CHURNS: [f64; 5] = [0.01, 0.05, 0.10, 0.25, 0.50];

/// Wall-clock of `f`, best (min) and mean over `samples` runs after one
/// warm-up run.
fn time<R>(samples: usize, mut f: impl FnMut() -> R) -> (Duration, Duration) {
    let _ = f(); // warm-up
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        let _ = std::hint::black_box(f());
        let took = start.elapsed();
        total += took;
        best = best.min(took);
    }
    (best, total / samples as u32)
}

fn build_frames(width: u32, height: usize, frames: usize, churn: f64) -> Vec<Arc<RleImage>> {
    let params = SequenceParams {
        gen: GenParams::with_runs(width, (2, 4), 0.3),
        height,
        churn,
    };
    FrameSequence::new(params, 0xE16)
        .take_frames(frames)
        .into_iter()
        .map(Arc::new)
        .collect()
}

/// Diffs every consecutive pair through one pool; returns total skipped
/// rows as a cheap checksum that the prefilter actually engaged.
fn diff_stream(pipeline: &mut systolic_core::DiffPipeline, frames: &[Arc<RleImage>]) -> usize {
    let mut skipped = 0;
    for pair in frames.windows(2) {
        let (_, stats) = pipeline
            .diff_images_shared(&pair[0], &pair[1])
            .expect("frame diff");
        skipped += stats.rows_sig_skipped;
    }
    skipped
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0");
    let (width, height, frames, samples, thread_counts): (u32, usize, usize, usize, &[usize]) =
        if smoke {
            (4_096, 128, 12, 1, &[2])
        } else {
            (WIDTH, HEIGHT, FRAMES, SAMPLES, &[1, 2, 4, 8])
        };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "frame_sequence{}: {width}x{height}, {frames} frames, churn sweep {CHURNS:?} ({cores} cores)",
        if smoke { " (smoke)" } else { "" },
    );

    let mut churn_json = String::new();
    for &churn in &CHURNS {
        let stream = build_frames(width, height, frames, churn);
        println!(
            "  churn {:.0}%: {} runs in frame 0",
            churn * 100.0,
            stream[0].total_runs()
        );

        // Bit-identity first: the prefilter must change nothing but the
        // cost. One pass, every consecutive pair, full comparison. The
        // adaptive bypass is pinned off (threshold 0.0) throughout this
        // bench: the sweep measures the *raw* prefilter cost across the
        // churn range — these numbers are what the default
        // `sig_prefilter_min_skip_rate` break-even was derived from, so
        // letting the bypass engage would measure the cure instead of
        // the disease.
        {
            let mut plain = DiffPipelineConfig::new(2).build();
            let mut filtered = DiffPipelineConfig::new(2)
                .signature_prefilter()
                .sig_prefilter_min_skip_rate(0.0)
                .build();
            for pair in stream.windows(2) {
                let (d1, _) = plain.diff_images_shared(&pair[0], &pair[1]).unwrap();
                let (d2, s2) = filtered.diff_images_shared(&pair[0], &pair[1]).unwrap();
                assert_eq!(d1, d2, "prefilter changed a diff at churn {churn}");
                assert!(
                    s2.rows_sig_skipped > 0 || churn >= 1.0,
                    "prefilter never engaged at churn {churn}"
                );
            }
        }

        let mut thread_json = String::new();
        let speedup_at = |threads: usize| -> (f64, f64, f64, usize) {
            let mut plain = DiffPipelineConfig::new(threads).build();
            let (full_best, _) = time(samples, || diff_stream(&mut plain, &stream));
            let mut filtered = DiffPipelineConfig::new(threads)
                .signature_prefilter()
                .sig_prefilter_min_skip_rate(0.0)
                .build();
            let (inc_best, _) = time(samples, || diff_stream(&mut filtered, &stream));
            let mut verified = DiffPipelineConfig::new(threads)
                .signature_prefilter()
                .sig_prefilter_min_skip_rate(0.0)
                .verify_signatures()
                .build();
            let (ver_best, _) = time(samples, || diff_stream(&mut verified, &stream));
            let skipped = diff_stream(&mut filtered, &stream);
            (
                full_best.as_secs_f64() * 1e3,
                inc_best.as_secs_f64() * 1e3,
                ver_best.as_secs_f64() * 1e3,
                skipped,
            )
        };
        for &threads in thread_counts {
            let (full_ms, inc_ms, ver_ms, skipped) = speedup_at(threads);
            let speedup = full_ms / inc_ms.max(1e-9);
            println!(
                "    threads={threads}: full {full_ms:.1} ms, incremental {inc_ms:.1} ms \
                 ({speedup:.2}x, paranoid {ver_ms:.1} ms, {skipped} rows skipped)"
            );
            let _ = write!(
                thread_json,
                "{}      {{\"threads\": {threads}, \"full_best_ms\": {full_ms:.3}, \
                 \"incremental_best_ms\": {inc_ms:.3}, \"paranoid_best_ms\": {ver_ms:.3}, \
                 \"speedup\": {speedup:.3}, \"rows_sig_skipped\": {skipped}}}",
                if thread_json.is_empty() { "" } else { ",\n" },
            );
            // The acceptance guard: at <= 10% churn on a host that can
            // demonstrate it, skipping ~90% of the rows must actually pay.
            if smoke && (churn - 0.10).abs() < 1e-9 && threads >= 2 && cores >= 4 {
                assert!(
                    speedup > 1.0,
                    "prefilter lost at 10% churn: full {full_ms:.1} ms vs \
                     incremental {inc_ms:.1} ms"
                );
            }
        }

        // Archive costs over the same stream: append every frame, then
        // extract every frame and verify bit-identity against the source.
        let mut store = archive::DeltaArchive::new(archive::DEFAULT_KEYFRAME_INTERVAL);
        let append_started = Instant::now();
        for f in &stream {
            store.append(f).expect("append");
        }
        let append_ms = append_started.elapsed().as_secs_f64() * 1e3;
        let extract_started = Instant::now();
        for (i, f) in stream.iter().enumerate() {
            let got = store.extract(i).expect("extract");
            assert_eq!(&got, f.as_ref(), "archive replay must be bit-identical");
        }
        let extract_ms = extract_started.elapsed().as_secs_f64() * 1e3;
        let bytes = store.to_bytes().len();
        let full_bytes: usize = stream
            .iter()
            .map(|f| rle::serialize::encode_image(f).len())
            .sum();
        let ratio = full_bytes as f64 / bytes.max(1) as f64;
        println!(
            "    archive: append {append_ms:.1} ms, extract-all {extract_ms:.1} ms, \
             {bytes} bytes vs {full_bytes} full ({ratio:.2}x smaller)"
        );

        let _ = write!(
            churn_json,
            "{}    {{\"churn\": {churn}, \"threads\": [\n{thread_json}\n    ], \
             \"archive\": {{\"append_ms\": {append_ms:.3}, \"extract_all_ms\": {extract_ms:.3}, \
             \"bytes\": {bytes}, \"full_bytes\": {full_bytes}, \
             \"compression_vs_full\": {ratio:.3}}}}}",
            if churn_json.is_empty() { "" } else { ",\n" },
        );
    }

    if smoke {
        println!("smoke run: guards passed; BENCH_delta.json left untouched");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"frame_sequence\",\n  \"image\": {{\"width\": {width}, \
         \"height\": {height}}},\n  \"frames\": {frames},\n  \"samples\": {samples},\n  \
         \"keyframe_interval\": {},\n  \"churn_sweep\": [\n{churn_json}\n  ]\n}}\n",
        archive::DEFAULT_KEYFRAME_INTERVAL,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_delta.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
