//! Bench counterpart of Figure 5: systolic run time over the error-rate
//! sweep on the paper's 10 000-px / ~250-run workload. Wall-clock rises
//! with the error percentage exactly as the iteration counts do in the
//! figure; the sequential baseline stays flat (its cost is `k1 + k2`,
//! independent of similarity).

use bench::paper_pair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn fig5(c: &mut Criterion) {
    let percents: [u32; 6] = [1, 5, 10, 20, 40, 60];

    let mut group = c.benchmark_group("fig5");
    for &pct in &percents {
        let (a, b) = paper_pair(10_000, f64::from(pct) / 100.0, u64::from(pct));
        group.bench_with_input(BenchmarkId::new("systolic", pct), &pct, |bench, _| {
            bench.iter(|| {
                let mut m = systolic_core::SystolicArray::load(&a, &b).unwrap();
                m.enable_invariant_checks(false);
                m.run().unwrap();
                black_box(m.stats().iterations)
            });
        });
        group.bench_with_input(BenchmarkId::new("sequential", pct), &pct, |bench, _| {
            bench.iter(|| black_box(rle::ops::xor_raw_with_stats(&a, &b).1.iterations));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_millis(1600));
    targets = fig5
}
criterion_main!(benches);
