//! Bench counterpart of Table 1: systolic vs. sequential across image
//! sizes, in both error regimes. Wall-clock of the simulator tracks the
//! iteration counts the paper reports (each iteration is an `O(cells)`
//! scan), so the *shape* — linear growth at 3.5 % errors, flat systolic
//! cost at 6 fixed error runs — shows up directly in the timings.

use bench::{fixed_error_pair, paper_pair};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn table1(c: &mut Criterion) {
    let sizes: [u32; 5] = [128, 256, 512, 1024, 2048];

    let mut group = c.benchmark_group("table1/errors_3.5pct");
    for &size in &sizes {
        let (a, b) = paper_pair(size, 0.035, u64::from(size));
        group.bench_with_input(BenchmarkId::new("systolic", size), &size, |bench, _| {
            bench.iter(|| {
                let mut m = systolic_core::SystolicArray::load(&a, &b).unwrap();
                m.enable_invariant_checks(false);
                m.run().unwrap();
                black_box(m.stats().iterations)
            });
        });
        group.bench_with_input(BenchmarkId::new("sequential", size), &size, |bench, _| {
            bench.iter(|| black_box(rle::ops::xor_raw_with_stats(&a, &b).1.iterations));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table1/errors_6_runs");
    for &size in &sizes {
        let (a, b) = fixed_error_pair(size, 6, 4, u64::from(size));
        group.bench_with_input(BenchmarkId::new("systolic", size), &size, |bench, _| {
            bench.iter(|| {
                let mut m = systolic_core::SystolicArray::load(&a, &b).unwrap();
                m.enable_invariant_checks(false);
                m.run().unwrap();
                black_box(m.stats().iterations)
            });
        });
        group.bench_with_input(BenchmarkId::new("sequential", size), &size, |bench, _| {
            bench.iter(|| black_box(rle::ops::xor_raw_with_stats(&a, &b).1.iterations));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_millis(1600));
    targets = table1
}
criterion_main!(benches);
