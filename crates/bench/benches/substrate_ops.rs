//! Throughput benches for the supporting substrates: the coalescing pass
//! (E13's wall-clock counterpart), the storage codec, the analysis stages
//! and RLE morphology — the costs a whole inspection pipeline is built
//! from.

use bench::paper_pair;
use criterion::{criterion_group, criterion_main, Criterion};
use rle::RleImage;
use std::hint::black_box;
use std::time::Duration;
use systolic_core::coalesce::{bus_coalesce, CoalescePass};

fn substrate(c: &mut Criterion) {
    // A halted XOR machine's RegSmall chain, as coalescing input.
    let (a, b) = paper_pair(10_000, 0.05, 0x50B5);
    let mut machine = systolic_core::SystolicArray::load(&a, &b).unwrap();
    machine.enable_invariant_checks(false);
    machine.run().unwrap();
    let chain: Vec<_> = machine.views().map(|c| c.small).collect();

    let mut group = c.benchmark_group("coalesce");
    group.bench_function("pure_systolic", |bench| {
        bench.iter(|| {
            let mut pass = CoalescePass::from_cells(10_000, chain.clone());
            pass.run().unwrap();
            black_box(pass.stats().iterations)
        });
    });
    group.bench_function("broadcast_bus", |bench| {
        bench.iter(|| black_box(bus_coalesce(10_000, &chain)));
    });
    group.finish();

    // Storage codec throughput.
    let img = {
        let rows = (0..64).map(|i| paper_pair(10_000, 0.0, i).0).collect();
        RleImage::from_rows(10_000, rows).unwrap()
    };
    let encoded = rle::serialize::encode_image(&img);
    let mut group = c.benchmark_group("serialize");
    group.throughput(criterion::Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_image", |bench| {
        bench.iter(|| black_box(rle::serialize::encode_image(&img)));
    });
    group.bench_function("decode_image", |bench| {
        bench.iter(|| black_box(rle::serialize::decode_image(&encoded).unwrap()));
    });
    group.finish();

    // Analysis stages on an inspection-scale difference mask.
    let (reference, scan) = {
        let params = workload::pcb::PcbParams {
            width: 2048,
            height: 512,
            ..Default::default()
        };
        workload::pcb::inspection_pair(&params, &workload::pcb::typical_defects(), 0xB0A2D)
    };
    let (mask, _) = systolic_core::image::xor_image(&reference, &scan).unwrap();
    let mut group = c.benchmark_group("analysis");
    group.bench_function("label_components_mask", |bench| {
        bench.iter(|| {
            black_box(rle_analysis::label_components(
                &mask,
                rle_analysis::Connectivity::Eight,
            ))
        });
    });
    group.bench_function("label_components_full_board", |bench| {
        bench.iter(|| {
            black_box(rle_analysis::label_components(
                &reference,
                rle_analysis::Connectivity::Eight,
            ))
        });
    });
    group.finish();

    // Row morphology on the paper workload.
    let mut group = c.benchmark_group("morph");
    group.bench_function("dilate_r2", |bench| {
        bench.iter(|| black_box(rle::morph::dilate(&a, 2)));
    });
    group.bench_function("open_r2", |bench| {
        bench.iter(|| black_box(rle::morph::open(&a, 2)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_millis(1600));
    targets = substrate
}
criterion_main!(benches);
