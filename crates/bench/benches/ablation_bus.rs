//! Bench counterpart of the §6 ablation (experiment E10): pure systolic
//! vs. broadcast bus vs. reconfigurable mesh on the Figure-5 workload.
//! The mesh's near-constant iteration count shows up as near-constant run
//! time across error rates, while the pure machine's time grows.

use bench::paper_pair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use systolic_core::bus::{BusArray, BusMode};

fn ablation(c: &mut Criterion) {
    let percents: [u32; 3] = [2, 20, 50];

    let mut group = c.benchmark_group("ablation_bus");
    for &pct in &percents {
        let (a, b) = paper_pair(10_000, f64::from(pct) / 100.0, 0xB005 + u64::from(pct));
        group.bench_with_input(BenchmarkId::new("pure", pct), &pct, |bench, _| {
            bench.iter(|| {
                let mut m = systolic_core::SystolicArray::load(&a, &b).unwrap();
                m.enable_invariant_checks(false);
                m.run().unwrap();
                black_box(m.stats().iterations)
            });
        });
        group.bench_with_input(BenchmarkId::new("broadcast1", pct), &pct, |bench, _| {
            bench.iter(|| {
                let mut m = BusArray::load(&a, &b).unwrap();
                m.run().unwrap();
                black_box(m.stats().iterations)
            });
        });
        group.bench_with_input(BenchmarkId::new("mesh", pct), &pct, |bench, _| {
            bench.iter(|| {
                let mut m = BusArray::load(&a, &b).unwrap().with_mode(BusMode::Mesh);
                m.run().unwrap();
                black_box(m.stats().iterations)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(400)).measurement_time(Duration::from_millis(1600));
    targets = ablation
}
criterion_main!(benches);
