//! Experiment E14: request latency and saturation throughput of the
//! `diffd` network front end.
//!
//! An in-process `DiffServer` is bound on a loopback port and driven by
//! N ∈ {1, 2, 4, 8} concurrent synthetic clients, each looping
//! request/response over its own connection for a fixed wall window.
//! Every reply is verified against the local `RleImage::xor` reference,
//! so the load run doubles as a correctness soak. Reported per client
//! count: p50/p99 request latency and aggregate requests/s; the maximum
//! across client counts is the saturation throughput.
//!
//! Results are written to `BENCH_diffd.json` at the workspace root.
//! Hand-rolled timing loop (not criterion): concurrent open-loop clients
//! need raw per-request samples for the percentile report.
//!
//! Set `BENCH_SMOKE=1` for a seconds-scale smoke run (one client count,
//! short window, no JSON rewrite) — used by the CI diffd-smoke job.

use diffd::{DiffClient, DiffServer, DiffServerConfig};
use rle::RleImage;
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use workload::{errors, ErrorModel, GenParams, RowGenerator};

const WIDTH: u32 = 2_048;
const HEIGHT: usize = 128;
const DENSITY: f64 = 0.3;

fn build_pair(seed: u64) -> (RleImage, RleImage) {
    let params = GenParams::for_density(WIDTH, DENSITY);
    let a = RowGenerator::new(params, seed).next_image(HEIGHT);
    let b = errors::apply_errors_image(&a, &ErrorModel::fraction(0.02), seed ^ 0xE14);
    (a, b)
}

/// One client: request/response against `addr` until `window` elapses.
/// Returns per-request latencies in milliseconds.
fn drive_client(addr: std::net::SocketAddr, seed: u64, window: Duration) -> Vec<f64> {
    let (a, b) = build_pair(seed);
    let expected = a.xor(&b).expect("reference xor");
    let mut client = DiffClient::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut latencies = Vec::new();
    let until = Instant::now() + window;
    while Instant::now() < until {
        let t0 = Instant::now();
        let reply = client.diff(&a, &b, 0).expect("diff request");
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(reply.image, expected, "server diff must match reference");
    }
    latencies
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0");
    let (window, client_counts): (Duration, &[usize]) = if smoke {
        (Duration::from_millis(300), &[2])
    } else {
        (Duration::from_millis(1_500), &[1, 2, 4, 8])
    };

    let server =
        DiffServer::bind("127.0.0.1:0", DiffServerConfig::default()).expect("bind loopback server");
    let addr = server.local_addr();
    let (handle, join) = server.spawn();
    println!(
        "diffd_load{}: {WIDTH}x{HEIGHT} images at density {DENSITY}, \
         {:.1} s window per point, server {addr}",
        if smoke { " (smoke)" } else { "" },
        window.as_secs_f64(),
    );

    let mut json_rows = String::new();
    let mut saturation_rps = 0.0f64;
    for &clients in client_counts {
        let t0 = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|c| std::thread::spawn(move || drive_client(addr, 0xBE9C + c as u64, window)))
            .collect();
        let mut latencies: Vec<f64> = Vec::new();
        for w in workers {
            latencies.extend(w.join().expect("client thread"));
        }
        let wall = t0.elapsed().as_secs_f64();
        latencies.sort_by(|x, y| x.partial_cmp(y).expect("finite latencies"));
        let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
        let rps = latencies.len() as f64 / wall;
        saturation_rps = saturation_rps.max(rps);
        println!(
            "  clients={clients}: {} requests, p50 {p50:.3} ms, p99 {p99:.3} ms, {rps:.1} req/s",
            latencies.len(),
        );
        let _ = write!(
            json_rows,
            "{}    {{\"clients\": {clients}, \"requests\": {}, \
             \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \"throughput_rps\": {rps:.1}}}",
            if json_rows.is_empty() { "" } else { ",\n" },
            latencies.len(),
        );
    }

    handle.shutdown();
    join.join().expect("server drain");
    let m = handle.server_metrics();
    assert_eq!(
        m.requests.get(),
        m.responses_total(),
        "request ledger closes"
    );
    assert_eq!(
        handle.pipeline_in_flight(),
        0,
        "no leaked tickets after the soak"
    );
    println!(
        "  server ledger: {} requests, {} ok, saturation {saturation_rps:.1} req/s",
        m.requests.get(),
        m.responses_ok.get(),
    );

    if smoke {
        println!("smoke run: ledger guards passed; BENCH_diffd.json left untouched");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"diffd_load\",\n  \"image\": {{\"width\": {WIDTH}, \
         \"height\": {HEIGHT}, \"density\": {DENSITY}}},\n  \
         \"window_s\": {:.3},\n  \"saturation_rps\": {saturation_rps:.1},\n  \
         \"results\": [\n{json_rows}\n  ]\n}}\n",
        window.as_secs_f64(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_diffd.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
