//! Experiment E14: request latency and saturation throughput of the
//! `diffd` network front end.
//!
//! An in-process `DiffServer` is bound on a loopback port and driven by
//! N ∈ {1, 2, 4, 8} concurrent synthetic clients, each looping
//! request/response over its own connection for a fixed wall window.
//! Every reply is verified against the local `RleImage::xor` reference,
//! so the load run doubles as a correctness soak. Reported per client
//! count: p50/p99 request latency and aggregate requests/s; the maximum
//! across client counts is the saturation throughput.
//!
//! Results are written to `BENCH_diffd.json` at the workspace root.
//! Hand-rolled timing loop (not criterion): concurrent open-loop clients
//! need raw per-request samples for the percentile report.
//!
//! Set `BENCH_SMOKE=1` for a seconds-scale smoke run (one client count,
//! short window, no JSON rewrite) — used by the CI diffd-smoke job.

use diffd::{DiffClient, DiffServer, DiffServerConfig};
use rle::RleImage;
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use workload::{errors, ErrorModel, GenParams, RowGenerator};

const WIDTH: u32 = 2_048;
const HEIGHT: usize = 128;
const DENSITY: f64 = 0.3;

/// The committed 8-client p99 from the pipeline-mutex era (PR 8's
/// BENCH_diffd.json, this same workload): every session serialized on one
/// `Mutex<DiffPipeline>`. The smoke guard asserts the executor keeps the
/// 8-client p99 below this — a regression back to session serialization
/// roughly doubles it and fails loudly.
const MUTEX_ERA_P99_MS: f64 = 16.854;

fn build_pair(seed: u64) -> (RleImage, RleImage) {
    let params = GenParams::for_density(WIDTH, DENSITY);
    let a = RowGenerator::new(params, seed).next_image(HEIGHT);
    let b = errors::apply_errors_image(&a, &ErrorModel::fraction(0.02), seed ^ 0xE14);
    (a, b)
}

/// One client: request/response against `addr` until `window` elapses.
/// Returns per-request samples in milliseconds:
/// `[total, queue_wait, compute]`, the latter two server-reported off
/// each reply (executor scheduling delay vs. time actually diffing).
fn drive_client(addr: std::net::SocketAddr, seed: u64, window: Duration) -> Vec<[f64; 3]> {
    let (a, b) = build_pair(seed);
    let expected = a.xor(&b).expect("reference xor");
    let mut client = DiffClient::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut samples = Vec::new();
    let until = Instant::now() + window;
    while Instant::now() < until {
        let t0 = Instant::now();
        let reply = client.diff(&a, &b, 0).expect("diff request");
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(reply.image, expected, "server diff must match reference");
        samples.push([
            total_ms,
            reply.queue_wait_ns as f64 / 1e6,
            reply.compute_ns as f64 / 1e6,
        ]);
    }
    samples
}

/// p50/p99 of one sample column.
fn column_percentiles(samples: &[[f64; 3]], column: usize) -> (f64, f64) {
    let mut values: Vec<f64> = samples.iter().map(|s| s[column]).collect();
    values.sort_by(|x, y| x.partial_cmp(y).expect("finite latencies"));
    (percentile(&values, 0.50), percentile(&values, 0.99))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0");
    let (window, client_counts): (Duration, &[usize]) = if smoke {
        // One quick sanity point plus the 8-client regression-guard point.
        (Duration::from_millis(300), &[2, 8])
    } else {
        (Duration::from_millis(1_500), &[1, 2, 4, 8])
    };

    let server =
        DiffServer::bind("127.0.0.1:0", DiffServerConfig::default()).expect("bind loopback server");
    let addr = server.local_addr();
    let (handle, join) = server.spawn();
    println!(
        "diffd_load{}: {WIDTH}x{HEIGHT} images at density {DENSITY}, \
         {:.1} s window per point, server {addr}",
        if smoke { " (smoke)" } else { "" },
        window.as_secs_f64(),
    );

    let mut json_rows = String::new();
    let mut saturation_rps = 0.0f64;
    let mut p99_at_8 = None;
    for &clients in client_counts {
        let t0 = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|c| std::thread::spawn(move || drive_client(addr, 0xBE9C + c as u64, window)))
            .collect();
        let mut samples: Vec<[f64; 3]> = Vec::new();
        for w in workers {
            samples.extend(w.join().expect("client thread"));
        }
        let wall = t0.elapsed().as_secs_f64();
        let (p50, p99) = column_percentiles(&samples, 0);
        let (queue_p50, queue_p99) = column_percentiles(&samples, 1);
        let (compute_p50, compute_p99) = column_percentiles(&samples, 2);
        let rps = samples.len() as f64 / wall;
        saturation_rps = saturation_rps.max(rps);
        if clients == 8 {
            p99_at_8 = Some(p99);
        }
        println!(
            "  clients={clients}: {} requests, p50 {p50:.3} ms, p99 {p99:.3} ms \
             (queue wait p50 {queue_p50:.3} / p99 {queue_p99:.3} ms, \
             compute p50 {compute_p50:.3} / p99 {compute_p99:.3} ms), {rps:.1} req/s",
            samples.len(),
        );
        let _ = write!(
            json_rows,
            "{}    {{\"clients\": {clients}, \"requests\": {}, \
             \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \
             \"queue_wait_p50_ms\": {queue_p50:.3}, \"queue_wait_p99_ms\": {queue_p99:.3}, \
             \"compute_p50_ms\": {compute_p50:.3}, \"compute_p99_ms\": {compute_p99:.3}, \
             \"throughput_rps\": {rps:.1}}}",
            if json_rows.is_empty() { "" } else { ",\n" },
            samples.len(),
        );
    }

    handle.shutdown();
    join.join().expect("server drain");
    let m = handle.server_metrics();
    assert_eq!(
        m.requests.get(),
        m.responses_total(),
        "request ledger closes"
    );
    assert_eq!(
        handle.pipeline_in_flight(),
        0,
        "no leaked tickets after the soak"
    );
    println!(
        "  server ledger: {} requests, {} ok, saturation {saturation_rps:.1} req/s",
        m.requests.get(),
        m.responses_ok.get(),
    );

    if smoke {
        // 8-client p99 regression guard: concurrent sessions must not
        // re-serialize. Wall-clock percentiles are only meaningful with
        // real parallelism, so starved runners report a skip instead of
        // flaking (same convention as the pipeline scaling guard).
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let p99 = p99_at_8.expect("smoke run includes the 8-client point");
        if cores >= 4 {
            assert!(
                p99 < MUTEX_ERA_P99_MS,
                "8-client p99 regressed to the mutex era: {p99:.3} ms \
                 (guard: < {MUTEX_ERA_P99_MS} ms)"
            );
            println!(
                "  8-client p99 guard: {p99:.3} ms < {MUTEX_ERA_P99_MS} ms (mutex-era baseline)"
            );
        } else {
            println!(
                "  8-client p99 guard skipped: {cores} core(s) available, \
                 need >= 4 for meaningful wall-clock percentiles \
                 (measured {p99:.3} ms)"
            );
        }
        println!("smoke run: ledger guards passed; BENCH_diffd.json left untouched");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"diffd_load\",\n  \"image\": {{\"width\": {WIDTH}, \
         \"height\": {HEIGHT}, \"density\": {DENSITY}}},\n  \
         \"window_s\": {:.3},\n  \"saturation_rps\": {saturation_rps:.1},\n  \
         \"results\": [\n{json_rows}\n  ]\n}}\n",
        window.as_secs_f64(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_diffd.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
