//! Experiment E13: image throughput of the persistent worker-pool pipeline
//! vs. per-row `run_parallel` spawning, across thread counts and kernel
//! policies.
//!
//! The baseline diffs a tall image by calling the barrier-synchronised
//! parallel engine once per row — paying thread-spawn and three barriers
//! per iteration for every single row, exactly the pattern the pipeline
//! was built to eliminate. The pipeline spawns its workers once, schedules
//! cost-weighted row chunks through the shared `Arc` zero-copy path, and
//! diffs each row with the adaptive hybrid kernel.
//!
//! Two workloads: the standard E13 image (2–4 px runs at 30 % density —
//! run-dense enough that the adaptive policy picks the packed kernel) and
//! a denser variant (1–2 px runs at 45 %) that stresses the packed path
//! harder. Forced-kernel rows at the widest thread count quantify what the
//! adaptive choice is worth.
//!
//! Results are written to `BENCH_pipeline.json` at the workspace root so
//! CI history can track the speedup; the JSON embeds the pipeline numbers
//! committed by the pre-kernel revision for regression comparison.
//! Hand-rolled timing loop (not criterion): the comparison needs raw
//! sample access for the JSON report.
//!
//! Set `BENCH_SMOKE=1` for a seconds-scale smoke run (small image, one
//! sample, no JSON rewrite) — used by the CI bench-smoke job.

use rle::RleImage;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use systolic_core::engine::parallel::systolic_xor_parallel;
use systolic_core::{DiffPipelineConfig, Kernel};
use workload::{errors, ErrorModel, GenParams, RowGenerator};

/// Rows in the benchmark image; the acceptance floor is 1024.
const HEIGHT: usize = 1024;
/// Row width; with 2–4 px runs at 30 % density this yields ~1600 runs per
/// side per row, enough cells for `run_parallel` to engage multiple
/// workers (and well past the packed-kernel crossover of 512).
const WIDTH: u32 = 16_384;
const SAMPLES: usize = 3;

/// `pipeline_best_ms` committed by the pre-kernel revision (PR 1) on this
/// exact workload, per thread count — the regression baseline the JSON
/// report compares against.
const PR1_PIPELINE_BEST_MS: [(usize, f64); 2] = [(4, 172.687), (8, 183.182)];

fn build_pair(height: usize) -> (RleImage, RleImage) {
    let params = GenParams::with_runs(WIDTH, (2, 4), 0.3);
    let a = RowGenerator::new(params, 0xE13).next_image(height);
    let b = errors::apply_errors_image(&a, &ErrorModel::fraction(0.01), 0xE13 + 1);
    (a, b)
}

fn build_dense_pair(height: usize) -> (RleImage, RleImage) {
    let params = GenParams::with_runs(WIDTH, (1, 2), 0.45);
    let a = RowGenerator::new(params, 0xDE45).next_image(height);
    let b = errors::apply_errors_image(&a, &ErrorModel::fraction(0.01), 0xDE45 + 1);
    (a, b)
}

/// Wall-clock of `f`, best (min) and mean over `samples` runs after one
/// warm-up run.
fn time<R>(samples: usize, mut f: impl FnMut() -> R) -> (Duration, Duration) {
    let _ = f(); // warm-up
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        let _ = std::hint::black_box(f());
        let took = start.elapsed();
        total += took;
        best = best.min(took);
    }
    (best, total / samples as u32)
}

fn per_row_spawning(a: &RleImage, b: &RleImage, threads: usize) -> u64 {
    let mut iterations = 0;
    for (ra, rb) in a.rows().iter().zip(b.rows()) {
        let (_, stats) = systolic_xor_parallel(ra, rb, threads).expect("row diff");
        iterations += stats.iterations;
    }
    iterations
}

/// Times one zero-copy batch through a fresh pool with the given kernel.
fn time_pipeline(
    a: &Arc<RleImage>,
    b: &Arc<RleImage>,
    threads: usize,
    kernel: Kernel,
    samples: usize,
) -> (Duration, Duration) {
    let mut pipeline = DiffPipelineConfig::new(threads).kernel(kernel).build();
    time(samples, || {
        let (diff, stats) = pipeline.diff_images_shared(a, b).expect("image diff");
        (diff.total_runs(), stats.totals.iterations)
    })
}

/// Observed-mode overhead: the same zero-copy batch through a plain and an
/// observed pool, best-of-`samples` each. Returns the relative overhead in
/// percent plus the absolute overhead in ns per row. Under `BENCH_SMOKE=1`
/// this is a hard CI guard: the observability budget is < 5 % (ISSUE 5
/// acceptance criterion) — but the vectorized kernel shrank the smoke batch
/// to sub-millisecond wall-clock, where a min-of-N *relative* comparison
/// flakes on scheduler noise, so the guard also accepts any run whose
/// absolute cost stays under 2 µs/row (far below what 5 % meant on the
/// pre-SIMD pipeline).
fn observed_overhead(
    a: &Arc<RleImage>,
    b: &Arc<RleImage>,
    threads: usize,
    samples: usize,
) -> (f64, f64) {
    let mut plain = DiffPipelineConfig::new(threads).build();
    let (plain_best, _) = time(samples, || {
        plain.diff_images_shared(a, b).expect("image diff").1.rows
    });
    let mut observed = DiffPipelineConfig::new(threads).observe().build();
    let (observed_best, _) = time(samples, || {
        observed
            .diff_images_shared(a, b)
            .expect("image diff")
            .1
            .rows
    });
    let percent = (observed_best.as_secs_f64() / plain_best.as_secs_f64() - 1.0) * 100.0;
    let per_row_ns =
        observed_best.saturating_sub(plain_best).as_nanos() as f64 / a.rows().len() as f64;
    (percent, per_row_ns)
}

/// Smoke-mode thread-scaling guard: on a host with enough cores to show
/// it, the sharded pipeline must actually scale — the dense workload at
/// 8 threads has to beat the same workload at 1 thread. Single-core and
/// dual-core runners cannot demonstrate scaling (workers just time-slice
/// one package), so the guard skips honestly there instead of flaking.
fn scaling_guard(da: &Arc<RleImage>, db: &Arc<RleImage>) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        println!(
            "  scaling guard skipped: {cores} core(s) available, need >= 4 \
             to demonstrate thread scaling"
        );
        return;
    }
    // Best-of-3 per point stabilises the comparison on noisy CI runners.
    let (one_best, _) = time_pipeline(da, db, 1, Kernel::Auto, 3);
    let (eight_best, _) = time_pipeline(da, db, 8, Kernel::Auto, 3);
    println!(
        "  scaling guard ({cores} cores): dense 1t {:.1} ms vs 8t {:.1} ms",
        one_best.as_secs_f64() * 1e3,
        eight_best.as_secs_f64() * 1e3,
    );
    assert!(
        eight_best < one_best,
        "8-thread dense pipeline ({:.1} ms) must beat 1 thread ({:.1} ms) \
         on a {cores}-core host — the thread-scaling wall is back",
        eight_best.as_secs_f64() * 1e3,
        one_best.as_secs_f64() * 1e3,
    );
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0");
    let (height, samples, thread_counts): (usize, usize, &[usize]) = if smoke {
        (128, 1, &[2])
    } else {
        (HEIGHT, SAMPLES, &[1, 2, 4, 8])
    };

    let (a, b) = build_pair(height);
    let a = Arc::new(a);
    let b = Arc::new(b);
    println!(
        "pipeline_throughput{}: {}x{} image, {} runs total per side",
        if smoke { " (smoke)" } else { "" },
        WIDTH,
        height,
        a.total_runs()
    );

    let mut json_rows = String::new();
    for &threads in thread_counts {
        let (base_best, base_mean) = if smoke {
            // The smoke job only needs the pipeline exercised end-to-end;
            // the spawning baseline is minutes-scale and skipped.
            (Duration::ZERO, Duration::ZERO)
        } else {
            time(samples, || per_row_spawning(&a, &b, threads))
        };

        let (pipe_best, pipe_mean) = time_pipeline(&a, &b, threads, Kernel::Auto, samples);

        // Same pool with the supervision knobs exercised (a generous batch
        // deadline forces the deadline-arithmetic path on every collect):
        // quantifies what fault tolerance costs on the happy path.
        let mut supervised = DiffPipelineConfig::new(threads)
            .row_deadline(Duration::from_secs(60))
            .build();
        let (sup_best, sup_mean) = time(samples, || {
            let (diff, stats) = supervised.diff_images_shared(&a, &b).expect("image diff");
            (diff.total_runs(), stats.totals.iterations)
        });
        drop(supervised);

        let speedup = if pipe_best.is_zero() {
            0.0
        } else {
            base_best.as_secs_f64() / pipe_best.as_secs_f64()
        };
        let beats = smoke || pipe_best < base_best;
        println!(
            "  threads={threads}: per-row spawning {:.1} ms, pipeline {:.1} ms  ({speedup:.2}x, {})",
            base_best.as_secs_f64() * 1e3,
            pipe_best.as_secs_f64() * 1e3,
            if beats { "pipeline wins" } else { "pipeline LOSES" },
        );
        println!(
            "    with deadline supervision: {:.1} ms  ({:+.1}% vs plain pipeline)",
            sup_best.as_secs_f64() * 1e3,
            (sup_best.as_secs_f64() / pipe_best.as_secs_f64() - 1.0) * 100.0,
        );
        if let Some((_, pr1_ms)) = PR1_PIPELINE_BEST_MS.iter().find(|(t, _)| *t == threads) {
            println!(
                "    vs pre-kernel pipeline ({pr1_ms:.1} ms): {:.2}x",
                pr1_ms / (pipe_best.as_secs_f64() * 1e3),
            );
        }

        let pr1 = PR1_PIPELINE_BEST_MS
            .iter()
            .find(|(t, _)| *t == threads)
            .map(|(_, ms)| *ms);
        let _ = write!(
            json_rows,
            "{}    {{\"threads\": {threads}, \
             \"per_row_spawn_best_ms\": {:.3}, \"per_row_spawn_mean_ms\": {:.3}, \
             \"pipeline_best_ms\": {:.3}, \"pipeline_mean_ms\": {:.3}, \
             \"supervised_best_ms\": {:.3}, \"supervised_mean_ms\": {:.3}, \
             \"speedup\": {speedup:.3}, \"pipeline_beats_per_row_spawning\": {beats}{}}}",
            if json_rows.is_empty() { "" } else { ",\n" },
            base_best.as_secs_f64() * 1e3,
            base_mean.as_secs_f64() * 1e3,
            pipe_best.as_secs_f64() * 1e3,
            pipe_mean.as_secs_f64() * 1e3,
            sup_best.as_secs_f64() * 1e3,
            sup_mean.as_secs_f64() * 1e3,
            pr1.map_or(String::new(), |ms| format!(
                ", \"pr1_pipeline_best_ms\": {ms:.3}, \"speedup_vs_pr1\": {:.3}",
                ms / (pipe_best.as_secs_f64() * 1e3)
            )),
        );
    }

    // Forced-kernel comparison at the widest thread count: what the
    // adaptive policy is worth against always-merge and always-packed.
    let kernel_threads = *thread_counts.last().expect("non-empty");
    let mut kernel_json = String::new();
    println!("  kernels at threads={kernel_threads}:");
    for kernel in [Kernel::Auto, Kernel::Rle, Kernel::Packed] {
        let (best, mean) = time_pipeline(&a, &b, kernel_threads, kernel, samples);
        println!(
            "    {kernel:?}: best {:.1} ms, mean {:.1} ms",
            best.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3
        );
        let _ = write!(
            kernel_json,
            "{}    {{\"kernel\": \"{kernel:?}\", \"best_ms\": {:.3}, \"mean_ms\": {:.3}}}",
            if kernel_json.is_empty() { "" } else { ",\n" },
            best.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
        );
    }

    // Dense-image variant (shorter, denser runs — deep packed territory).
    let (da, db) = build_dense_pair(height);
    let da = Arc::new(da);
    let db = Arc::new(db);
    let mut dense_json = String::new();
    println!("  dense variant: {} runs total per side", da.total_runs());
    for &threads in thread_counts {
        let (best, mean) = time_pipeline(&da, &db, threads, Kernel::Auto, samples);
        println!(
            "    threads={threads}: pipeline {:.1} ms",
            best.as_secs_f64() * 1e3
        );
        let _ = write!(
            dense_json,
            "{}    {{\"threads\": {threads}, \"pipeline_best_ms\": {:.3}, \
             \"pipeline_mean_ms\": {:.3}}}",
            if dense_json.is_empty() { "" } else { ",\n" },
            best.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
        );
    }

    // Observability budget: metrics + tracing must stay cheap enough to
    // leave on in production pools. Best-of-5 stabilises the min-timing
    // comparison even on the one-sample smoke configuration.
    let guard_threads = *thread_counts.last().expect("non-empty");
    let (overhead, per_row_ns) = observed_overhead(&a, &b, guard_threads, samples.max(9));
    println!(
        "  observed-mode overhead at threads={guard_threads}: {overhead:+.2}% / \
         {per_row_ns:.0} ns per row (budget < 5% or < 2 us/row)"
    );
    if smoke {
        assert!(
            overhead < 5.0 || per_row_ns < 2_000.0,
            "observed-mode overhead {overhead:+.2}% ({per_row_ns:.0} ns/row) \
             blew both the < 5% and the < 2 us/row budget"
        );
        scaling_guard(&da, &db);
        println!("smoke run: guards passed; BENCH_pipeline.json left untouched");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"pipeline_throughput\",\n  \"image\": {{\"width\": {WIDTH}, \
         \"height\": {HEIGHT}, \"runs_per_side\": {}}},\n  \"samples\": {SAMPLES},\n  \
         \"results\": [\n{json_rows}\n  ],\n  \
         \"kernels\": {{\"threads\": {kernel_threads}, \"results\": [\n{kernel_json}\n  ]}},\n  \
         \"dense_image\": {{\"width\": {WIDTH}, \"height\": {HEIGHT}, \"runs_per_side\": {}, \
         \"results\": [\n{dense_json}\n  ]}}\n}}\n",
        a.total_runs(),
        da.total_runs(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
