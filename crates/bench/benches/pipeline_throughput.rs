//! Experiment E13: image throughput of the persistent worker-pool pipeline
//! vs. per-row `run_parallel` spawning.
//!
//! The baseline diffs a tall image by calling the barrier-synchronised
//! parallel engine once per row — paying thread-spawn and three barriers
//! per iteration for every single row, exactly the pattern the pipeline
//! was built to eliminate. The pipeline spawns its workers once and
//! streams rows through them.
//!
//! Results are appended to `BENCH_pipeline.json` at the workspace root so
//! CI history can track the speedup. Hand-rolled timing loop (not
//! criterion): the comparison needs raw sample access for the JSON report.

use rle::RleImage;
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use systolic_core::engine::parallel::systolic_xor_parallel;
use systolic_core::{DiffPipeline, DiffPipelineConfig};
use workload::{errors, ErrorModel, GenParams, RowGenerator};

/// Rows in the benchmark image; the acceptance floor is 1024.
const HEIGHT: usize = 1024;
/// Row width; with 2–4 px runs at 30 % density this yields ~1600 runs per
/// side, enough cells for `run_parallel` to engage multiple workers.
const WIDTH: u32 = 16_384;
const SAMPLES: usize = 3;

fn build_pair() -> (RleImage, RleImage) {
    let params = GenParams::with_runs(WIDTH, (2, 4), 0.3);
    let a = RowGenerator::new(params, 0xE13).next_image(HEIGHT);
    let b = errors::apply_errors_image(&a, &ErrorModel::fraction(0.01), 0xE13 + 1);
    (a, b)
}

/// Wall-clock of `f`, best (min) and mean over `SAMPLES` runs after one
/// warm-up run.
fn time<R>(mut f: impl FnMut() -> R) -> (Duration, Duration) {
    let _ = f(); // warm-up
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let _ = std::hint::black_box(f());
        let took = start.elapsed();
        total += took;
        best = best.min(took);
    }
    (best, total / SAMPLES as u32)
}

fn per_row_spawning(a: &RleImage, b: &RleImage, threads: usize) -> u64 {
    let mut iterations = 0;
    for (ra, rb) in a.rows().iter().zip(b.rows()) {
        let (_, stats) = systolic_xor_parallel(ra, rb, threads).expect("row diff");
        iterations += stats.iterations;
    }
    iterations
}

fn main() {
    let (a, b) = build_pair();
    println!(
        "pipeline_throughput: {}x{} image, {} runs total per side",
        WIDTH,
        HEIGHT,
        a.total_runs()
    );

    let mut json_rows = String::new();
    for threads in [4usize, 8] {
        let (base_best, base_mean) = time(|| per_row_spawning(&a, &b, threads));

        let mut pipeline = DiffPipeline::new(threads);
        let (pipe_best, pipe_mean) = time(|| {
            let (diff, stats) = pipeline.diff_images(&a, &b).expect("image diff");
            (diff.total_runs(), stats.totals.iterations)
        });
        drop(pipeline);

        // Same pool with the supervision knobs exercised (a generous batch
        // deadline forces the deadline-arithmetic path on every collect):
        // quantifies what fault tolerance costs on the happy path.
        let mut supervised = DiffPipelineConfig::new(threads)
            .row_deadline(Duration::from_secs(60))
            .build();
        let (sup_best, sup_mean) = time(|| {
            let (diff, stats) = supervised.diff_images(&a, &b).expect("image diff");
            (diff.total_runs(), stats.totals.iterations)
        });
        drop(supervised);

        let speedup = base_best.as_secs_f64() / pipe_best.as_secs_f64();
        let beats = pipe_best < base_best;
        println!(
            "  threads={threads}: per-row spawning {:.1} ms, pipeline {:.1} ms  ({speedup:.2}x, {})",
            base_best.as_secs_f64() * 1e3,
            pipe_best.as_secs_f64() * 1e3,
            if beats { "pipeline wins" } else { "pipeline LOSES" },
        );
        println!(
            "    with deadline supervision: {:.1} ms  ({:+.1}% vs plain pipeline)",
            sup_best.as_secs_f64() * 1e3,
            (sup_best.as_secs_f64() / pipe_best.as_secs_f64() - 1.0) * 100.0,
        );

        let _ = write!(
            json_rows,
            "{}    {{\"threads\": {threads}, \
             \"per_row_spawn_best_ms\": {:.3}, \"per_row_spawn_mean_ms\": {:.3}, \
             \"pipeline_best_ms\": {:.3}, \"pipeline_mean_ms\": {:.3}, \
             \"supervised_best_ms\": {:.3}, \"supervised_mean_ms\": {:.3}, \
             \"speedup\": {speedup:.3}, \"pipeline_beats_per_row_spawning\": {beats}}}",
            if json_rows.is_empty() { "" } else { ",\n" },
            base_best.as_secs_f64() * 1e3,
            base_mean.as_secs_f64() * 1e3,
            pipe_best.as_secs_f64() * 1e3,
            pipe_mean.as_secs_f64() * 1e3,
            sup_best.as_secs_f64() * 1e3,
            sup_mean.as_secs_f64() * 1e3,
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"pipeline_throughput\",\n  \"image\": {{\"width\": {WIDTH}, \
         \"height\": {HEIGHT}, \"runs_per_side\": {}}},\n  \"samples\": {SAMPLES},\n  \
         \"results\": [\n{json_rows}\n  ]\n}}\n",
        a.total_runs()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
