//! Experiment E17: append cost of the RDA2 archive journal.
//!
//! The journal's contract is that `append` performs O(frame) I/O — one
//! frame record plus a 9-byte commit, regardless of how many frames the
//! archive already holds. The legacy RDA1 path (`to_bytes` + whole-file
//! rewrite, what `rlediff archive append` did before the journal) pays
//! O(archive) per append instead. This bench demonstrates both claims
//! with *byte counters*, not wall-clock: counters are exact and
//! deterministic, so the result is meaningful even on a noisy or
//! single-core host.
//!
//! For a churn-controlled frame stream it appends every frame to an
//! in-memory journal, recording `last_append_bytes` per append, and in
//! parallel accumulates what the whole-blob rewrite would have written
//! for the same stream. The guards assert the journal's per-append bytes
//! are bounded by the frame size (flat across the archive's growth) while
//! the rewrite bytes grow with the archive.
//!
//! Results merge into `BENCH_delta.json` under a `"journal"` key — the
//! rest of that file (E16's timing sweep) is left untouched. Set
//! `BENCH_SMOKE=1` for a seconds-scale guard-only run.

use std::fmt::Write as _;

use archive::{ArchiveFile, ArchiveOptions, DeltaArchive, FsyncPolicy, MemStorage};
use workload::{FrameSequence, GenParams, SequenceParams};

const WIDTH: u32 = 8_192;
const HEIGHT: usize = 512;
const FRAMES: usize = 200;
const CHURN: f64 = 0.10;
const KEYFRAME_INTERVAL: usize = 16;

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0");
    let (width, height, frames) = if smoke {
        (2_048, 128, 48)
    } else {
        (WIDTH, HEIGHT, FRAMES)
    };
    println!(
        "journal_io{}: {width}x{height}, {frames} frames, churn {CHURN}, keyframe every {KEYFRAME_INTERVAL}",
        if smoke { " (smoke)" } else { "" },
    );

    let params = SequenceParams {
        gen: GenParams::with_runs(width, (2, 4), 0.3),
        height,
        churn: CHURN,
    };
    let stream = FrameSequence::new(params, 0xE17).take_frames(frames);
    let max_frame_bytes = stream
        .iter()
        .map(|f| rle::serialize::encode_image(f).len())
        .max()
        .unwrap_or(0);

    let opts = ArchiveOptions {
        keyframe_interval: KEYFRAME_INTERVAL,
        fsync: FsyncPolicy::OnClose,
    };
    let mut journal = ArchiveFile::create_on(MemStorage::new(), opts).expect("create");
    let mut legacy = DeltaArchive::new(KEYFRAME_INTERVAL);

    // Per-append bytes for both strategies. `legacy_bytes[i]` is what the
    // pre-journal CLI wrote back to disk after append i: the entire blob.
    let mut journal_bytes = Vec::with_capacity(frames);
    let mut legacy_bytes = Vec::with_capacity(frames);
    for f in &stream {
        journal.append(f).expect("journal append");
        journal_bytes.push(journal.stat().last_append_bytes);
        legacy.append(f).expect("legacy append");
        legacy_bytes.push(legacy.to_bytes().len() as u64);
    }

    // The O(frame) guard: no append — first or last, keyframe or delta —
    // writes more than one frame record. (2x covers record framing plus
    // the sequence's churn variance; the point is it does not scale with
    // the archive.)
    let max_append = *journal_bytes.iter().max().unwrap();
    let bound = 2 * max_frame_bytes as u64 + 64;
    assert!(
        max_append <= bound,
        "journal append wrote {max_append} bytes, over the O(frame) bound {bound}"
    );
    // And it is flat: the most expensive append in the last quarter of the
    // stream costs no more than the most expensive in the first quarter
    // (both quarters contain keyframes, the worst case).
    let q = frames / 4;
    let first_max = *journal_bytes[..q].iter().max().unwrap();
    let last_max = *journal_bytes[frames - q..].iter().max().unwrap();
    assert!(
        last_max <= first_max.saturating_mul(2),
        "append cost grew with archive length: first-quarter max {first_max}, \
         last-quarter max {last_max}"
    );
    // The rewrite strategy, by contrast, grows with the archive.
    let legacy_first = legacy_bytes[q - 1];
    let legacy_last = *legacy_bytes.last().unwrap();
    assert!(
        legacy_last > legacy_first.saturating_mul(2),
        "whole-blob rewrite should scale with the archive: {legacy_first} -> {legacy_last}"
    );

    let journal_total: u64 = journal_bytes.iter().sum();
    let legacy_total: u64 = legacy_bytes.iter().sum();
    let ratio = legacy_total as f64 / journal_total.max(1) as f64;
    let stats = journal.stat();
    println!(
        "  journal : {journal_total} bytes written over {frames} appends \
         (max single append {max_append}, file ends at {} bytes)",
        stats.journal_bytes
    );
    println!("  rewrite : {legacy_total} bytes for the same stream ({ratio:.1}x more I/O)");

    // Bit-identity backstop: the counters only matter if the journal holds
    // the same frames.
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(&journal.extract(i).expect("extract"), f, "frame {i}");
    }

    if smoke {
        println!("smoke run: guards passed; BENCH_delta.json left untouched");
        return;
    }

    let mut entry = String::new();
    let _ = write!(
        entry,
        ",\n  \"journal\": {{\"width\": {width}, \"height\": {height}, \"frames\": {frames}, \
         \"churn\": {CHURN}, \"keyframe_interval\": {KEYFRAME_INTERVAL}, \
         \"bytes_per_append_max\": {max_append}, \"bytes_per_append_first_quarter_max\": {first_max}, \
         \"bytes_per_append_last_quarter_max\": {last_max}, \"journal_total_bytes\": {journal_total}, \
         \"rewrite_total_bytes\": {legacy_total}, \"rewrite_vs_journal\": {ratio:.3}}}\n}}\n"
    );

    // Merge into BENCH_delta.json: drop any previous "journal" key (and
    // the closing brace), then append ours. E16's churn sweep is the
    // expensive part of that file; never regenerate it from here.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_delta.json");
    match std::fs::read_to_string(path) {
        Ok(mut text) => {
            let cut = text
                .find(",\n  \"journal\"")
                .or_else(|| text.rfind('}'))
                .unwrap_or(text.len());
            text.truncate(cut);
            text.push_str(&entry);
            match std::fs::write(path, &text) {
                Ok(()) => println!("merged \"journal\" into {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        Err(e) => eprintln!("could not read {path} (run the frame_sequence bench first): {e}"),
    }
}
