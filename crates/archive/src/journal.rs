//! The on-disk journal (`RDA2`): crash-consistent, append-only delta
//! archive storage.
//!
//! PR 8's [`DeltaArchive`] is an in-memory structure; persisting it means
//! rewriting the whole file, so a crash mid-write loses every committed
//! frame. [`ArchiveFile`] instead appends each frame as a self-describing,
//! checksummed journal record followed by an explicit **commit record**;
//! a frame exists if and only if its commit record is fully on disk. That
//! makes append O(frame) I/O and turns every crash into a *torn tail*:
//! open-time recovery scans forward, keeps the longest valid committed
//! prefix, truncates the rest, and reports what was salvaged.
//!
//! # Wire format
//!
//! ```text
//! journal := header record*
//! header  := "RDA2" version:u8 interval:u32le crc:u32le      -- crc over version+interval
//! record  := frame commit
//! frame   := 0xF1 body_len:u32le body_crc:u32le body          -- crc over body
//! body    := seq:u32le flags:u8 (bit0 = keyframe)
//!            width:u32le height:varint changed:varint runs:varint
//!            sig[height]:u64le
//!            payload_len:varint payload:RLI1                  -- full frame or XOR delta
//! commit  := 0xC7 seq:u32le crc:u32le                         -- crc over seq
//! ```
//!
//! Every multi-byte field a reader trusts is covered by a CRC32: the
//! header CRC covers the interval, the body CRC covers everything in the
//! record (including the signature index), and the commit CRC covers its
//! sequence number. Records carry their own geometry (`width`/`height`),
//! so recovery never needs archive-level state to parse a record.
//!
//! # Recovery
//!
//! [`ArchiveFile::open_on`] scans records from the header forward. The
//! scan stops at the first record that is truncated, fails its CRC, has a
//! malformed body, or lacks a valid commit — everything before that point
//! is the committed prefix, everything after is torn and gets truncated
//! (reported in [`RecoveryReport`]). A file shorter than a full header is
//! a torn `create` and is reset to an empty journal. [`ArchiveFile::fsck`]
//! runs the same scan without mutating, then deep-verifies every frame by
//! replaying it and checking the stored signature index, and can repair
//! (truncate the torn tail, or cut back to the last verifiable frame if a
//! committed record is corrupt).
//!
//! # Durability knobs
//!
//! [`FsyncPolicy`] picks the fsync cadence: `Always` (sync every commit;
//! a crash loses at most the in-flight frame), `EveryN(n)` (bound the loss
//! window to `n` frames), `OnClose` (fastest; rely on the OS until close).
//! Whatever the policy, the *format* guarantees recovery keeps only whole
//! committed frames — the policy only bounds how many of the most recent
//! commits might not have reached the platter.

use std::io::SeekFrom;
use std::path::{Path, PathBuf};

use rle::serialize::{self, get_varint, put_varint};
use rle::{Pixel, RleImage, RleRow};

use crate::crc::crc32;
use crate::storage::Storage;
use crate::{AppendOutcome, ArchiveError, ArchiveStats, DeltaArchive};

/// Magic prefix of a journaled archive.
pub const JOURNAL_MAGIC: &[u8; 4] = b"RDA2";

const VERSION: u8 = 1;
/// magic(4) + version(1) + interval(4) + crc(4).
const HEADER_LEN: u64 = 13;
const FRAME_TAG: u8 = 0xF1;
const COMMIT_TAG: u8 = 0xC7;
/// tag(1) + body_len(4) + body_crc(4).
const FRAME_PREFIX_LEN: u64 = 9;
/// tag(1) + seq(4) + crc(4).
const COMMIT_LEN: u64 = 9;

/// When the journal calls `fsync` on its backing store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every commit record: a crash loses at most the frame
    /// being appended. The safe default.
    Always,
    /// Sync every `n` appends: bounds the loss window to `n` frames while
    /// amortising the sync cost (clamped to ≥ 1).
    EveryN(u64),
    /// Sync only at [`ArchiveFile::close`] (and explicit
    /// [`ArchiveFile::sync`]): fastest, loss window bounded by the OS.
    OnClose,
}

/// Create/open parameters for an [`ArchiveFile`].
#[derive(Clone, Copy, Debug)]
pub struct ArchiveOptions {
    /// Keyframe cadence for newly written frames (clamped to ≥ 1). An
    /// existing journal keeps the interval in its header; this value is
    /// used when creating (or resetting a torn) journal.
    pub keyframe_interval: usize,
    /// Fsync cadence.
    pub fsync: FsyncPolicy,
}

impl Default for ArchiveOptions {
    fn default() -> Self {
        Self {
            keyframe_interval: crate::DEFAULT_KEYFRAME_INTERVAL,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// Why a recovery scan stopped before the end of the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TornReason {
    /// The file ended mid-record.
    Truncated,
    /// A byte where a record tag belongs held neither a frame nor a
    /// commit tag.
    BadTag,
    /// A record's body CRC32 disagreed with its bytes.
    CrcMismatch,
    /// A record body parsed but violated an invariant (wrong sequence
    /// number, geometry change, implausible count…).
    Malformed,
    /// The frame record was intact but its commit record was missing,
    /// torn, or failed its CRC — the append never committed.
    Uncommitted,
    /// The file was shorter than a full header (a torn `create`).
    TornHeader,
}

impl std::fmt::Display for TornReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TornReason::Truncated => "record truncated mid-write",
            TornReason::BadTag => "unrecognised record tag",
            TornReason::CrcMismatch => "record checksum mismatch",
            TornReason::Malformed => "record body malformed",
            TornReason::Uncommitted => "frame never committed",
            TornReason::TornHeader => "torn header (crash during create)",
        };
        f.write_str(s)
    }
}

/// What [`ArchiveFile::open_on`] salvaged and discarded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed frames recovered.
    pub frames: usize,
    /// Torn/uncommitted bytes truncated from the tail.
    pub truncated_bytes: u64,
    /// Why the committed prefix ended before the file did (`None` when
    /// the file was clean).
    pub reason: Option<TornReason>,
    /// The header itself was torn and the journal was reset to empty.
    pub header_reset: bool,
}

impl RecoveryReport {
    /// Whether the journal was already fully consistent.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.truncated_bytes == 0 && !self.header_reset
    }
}

/// Outcome of [`ArchiveFile::fsck`]: the structural scan plus a deep
/// replay-and-verify of every committed frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Committed frames found by the structural scan.
    pub frames: usize,
    /// Frames that replayed and matched their stored signature index.
    pub verified: usize,
    /// Torn/uncommitted bytes after the committed prefix.
    pub torn_bytes: u64,
    /// Why the committed prefix ended early, if it did.
    pub torn_reason: Option<TornReason>,
    /// First committed frame that failed deep verification (payload CRC,
    /// geometry, or signature mismatch) — mid-file corruption, not a torn
    /// tail.
    pub first_corrupt: Option<usize>,
    /// Frames dropped by a repair (only corruption repairs lose frames;
    /// torn tails were never committed).
    pub frames_lost: usize,
    /// Whether repairs were applied.
    pub repaired: bool,
    /// Journal size in bytes after fsck.
    pub bytes: u64,
}

impl FsckReport {
    /// Whether the journal was fully consistent as found (nothing torn,
    /// nothing corrupt).
    #[must_use]
    pub fn clean(&self) -> bool {
        self.torn_bytes == 0 && self.first_corrupt.is_none()
    }
}

/// In-memory index entry for one committed record.
#[derive(Clone, Debug)]
struct Entry {
    /// Byte offset of the frame record's tag.
    offset: u64,
    /// Length of the record body (between prefix and commit).
    body_len: u32,
    keyframe: bool,
    changed: usize,
    runs: usize,
    /// Row signatures of the reconstructed frame (the integrity index).
    sigs: Vec<u64>,
}

impl Entry {
    /// Total on-disk footprint: prefix + body + commit.
    fn footprint(&self) -> u64 {
        FRAME_PREFIX_LEN + u64::from(self.body_len) + COMMIT_LEN
    }
}

/// Journal I/O counters, surfaced through [`ArchiveStats`].
#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    bytes_appended: u64,
    last_append_bytes: u64,
    syncs: u64,
    records_replayed: u64,
    crc_errors: u64,
}

/// Fields parsed out of a record body.
struct ParsedBody {
    seq: u32,
    keyframe: bool,
    width: Pixel,
    height: usize,
    changed: usize,
    runs: usize,
    sigs: Vec<u64>,
    /// Byte range of the RLI1 payload within the body.
    payload: std::ops::Range<usize>,
}

/// Result of the non-mutating structural scan.
struct Scan {
    /// `None` means the header was torn (file shorter than a header that
    /// still looks like one) — the journal must be reset.
    interval: Option<usize>,
    width: Pixel,
    height: usize,
    entries: Vec<Entry>,
    /// End of the committed prefix (header end when no frames).
    committed_end: u64,
    file_len: u64,
    /// Why the scan stopped before `file_len`, if it did.
    torn: Option<TornReason>,
}

/// A crash-consistent, append-only delta archive on a [`Storage`]
/// backend. See the module docs for the format and guarantees.
#[derive(Debug)]
pub struct ArchiveFile<S: Storage> {
    storage: S,
    /// Set for file-backed archives; enables [`ArchiveFile::compact`].
    path: Option<PathBuf>,
    opts: ArchiveOptions,
    interval: usize,
    width: Pixel,
    height: usize,
    entries: Vec<Entry>,
    /// Reconstruction of the newest frame, kept so append is incremental.
    last: Option<RleImage>,
    /// End of the committed region; appends write here.
    end: u64,
    unsynced: u64,
    recovery: RecoveryReport,
    counters: Counters,
}

/// Reads exactly `buf.len()` bytes at `pos`, or reports a clean EOF.
fn try_read_exact<S: Storage>(
    storage: &mut S,
    pos: u64,
    buf: &mut [u8],
) -> Result<bool, ArchiveError> {
    storage.seek(SeekFrom::Start(pos))?;
    let mut filled = 0;
    while filled < buf.len() {
        let n = storage.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(false);
        }
        filled += n;
    }
    Ok(true)
}

fn u32_at(buf: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes"))
}

/// Parses and validates a record body. `expect_seq` is the sequence number
/// the record must carry; `dims` is the archive geometry so far (`None`
/// before the first frame).
fn parse_body(
    body: &[u8],
    expect_seq: u32,
    dims: Option<(Pixel, usize)>,
) -> Result<ParsedBody, TornReason> {
    if body.len() < 9 {
        return Err(TornReason::Malformed);
    }
    let seq = u32_at(body, 0);
    if seq != expect_seq {
        return Err(TornReason::Malformed);
    }
    let flags = body[4];
    if flags & !1 != 0 {
        return Err(TornReason::Malformed);
    }
    let keyframe = flags & 1 != 0;
    if expect_seq == 0 && !keyframe {
        return Err(TornReason::Malformed);
    }
    let width = u32_at(body, 5);
    let mut pos = 9usize;
    let height = get_varint(body, &mut pos).map_err(|_| TornReason::Malformed)? as usize;
    if let Some((w, h)) = dims {
        if width != w || height != h {
            return Err(TornReason::Malformed);
        }
    }
    let changed = get_varint(body, &mut pos).map_err(|_| TornReason::Malformed)? as usize;
    if changed > height {
        return Err(TornReason::Malformed);
    }
    let runs = get_varint(body, &mut pos).map_err(|_| TornReason::Malformed)? as usize;
    // Plausibility before allocation: the signature index must fit in the
    // bytes that are actually present.
    if (body.len() - pos) < height.saturating_mul(8) {
        return Err(TornReason::Malformed);
    }
    let mut sigs = Vec::with_capacity(height);
    for _ in 0..height {
        sigs.push(u64::from_le_bytes(
            body[pos..pos + 8].try_into().expect("8 bytes"),
        ));
        pos += 8;
    }
    let payload_len = get_varint(body, &mut pos).map_err(|_| TornReason::Malformed)? as usize;
    if body.len() - pos != payload_len {
        // The payload must account for every remaining byte — trailing
        // slack would let garbage hide inside a CRC-valid record.
        return Err(TornReason::Malformed);
    }
    Ok(ParsedBody {
        seq,
        keyframe,
        width,
        height,
        changed,
        runs,
        sigs,
        payload: pos..body.len(),
    })
}

/// Structural scan: find the longest valid committed prefix. Never
/// mutates `storage`; hard-errors only on I/O failures and files that are
/// not (torn) `RDA2` journals.
fn scan<S: Storage>(storage: &mut S) -> Result<Scan, ArchiveError> {
    let file_len = storage.byte_len()?;
    let mut header = [0u8; HEADER_LEN as usize];
    let whole_header = try_read_exact(storage, 0, &mut header)?;
    if !whole_header {
        let got = file_len.min(4) as usize;
        if header[..got] != JOURNAL_MAGIC[..got] {
            return Err(ArchiveError::BadMagic);
        }
        // A prefix of a valid header: a crash during create.
        return Ok(Scan {
            interval: None,
            width: 0,
            height: 0,
            entries: Vec::new(),
            committed_end: 0,
            file_len,
            torn: Some(TornReason::TornHeader),
        });
    }
    if &header[..4] != JOURNAL_MAGIC {
        return Err(ArchiveError::BadMagic);
    }
    if crc32(&header[4..9]) != u32_at(&header, 9) {
        return Err(ArchiveError::HeaderCorrupt);
    }
    if header[4] != VERSION {
        return Err(ArchiveError::UnsupportedVersion { version: header[4] });
    }
    let interval = u32_at(&header, 5) as usize;
    if interval == 0 {
        return Err(ArchiveError::ZeroInterval);
    }

    let mut entries: Vec<Entry> = Vec::new();
    let mut committed_end = HEADER_LEN;
    let mut width: Pixel = 0;
    let mut height: usize = 0;
    let mut torn = None;
    let mut pos = HEADER_LEN;
    'scan: while pos < file_len {
        let mut prefix = [0u8; FRAME_PREFIX_LEN as usize];
        if !try_read_exact(storage, pos, &mut prefix)? {
            torn = Some(TornReason::Truncated);
            break;
        }
        if prefix[0] != FRAME_TAG {
            torn = Some(TornReason::BadTag);
            break;
        }
        let body_len = u32_at(&prefix, 1);
        let body_crc = u32_at(&prefix, 5);
        let after_prefix = pos + FRAME_PREFIX_LEN;
        // Plausibility cap before allocation: the body must fit in the
        // bytes that remain (a missing commit is classified separately).
        if u64::from(body_len) > file_len - after_prefix {
            torn = Some(TornReason::Truncated);
            break;
        }
        let mut body = vec![0u8; body_len as usize];
        if !try_read_exact(storage, after_prefix, &mut body)? {
            torn = Some(TornReason::Truncated);
            break;
        }
        if crc32(&body) != body_crc {
            torn = Some(TornReason::CrcMismatch);
            break;
        }
        let dims = (!entries.is_empty()).then_some((width, height));
        let parsed = match parse_body(&body, entries.len() as u32, dims) {
            Ok(p) => p,
            Err(reason) => {
                torn = Some(reason);
                break 'scan;
            }
        };
        let mut commit = [0u8; COMMIT_LEN as usize];
        if !try_read_exact(storage, after_prefix + u64::from(body_len), &mut commit)? {
            torn = Some(TornReason::Uncommitted);
            break;
        }
        if commit[0] != COMMIT_TAG
            || u32_at(&commit, 1) != parsed.seq
            || crc32(&commit[1..5]) != u32_at(&commit, 5)
        {
            torn = Some(TornReason::Uncommitted);
            break;
        }
        width = parsed.width;
        height = parsed.height;
        entries.push(Entry {
            offset: pos,
            body_len,
            keyframe: parsed.keyframe,
            changed: parsed.changed,
            runs: parsed.runs,
            sigs: parsed.sigs,
        });
        pos = after_prefix + u64::from(body_len) + COMMIT_LEN;
        committed_end = pos;
    }
    if entries.is_empty() {
        width = 0;
        height = 0;
    }
    Ok(Scan {
        interval: Some(interval),
        width,
        height,
        entries,
        committed_end,
        file_len,
        torn,
    })
}

fn encode_header(interval: usize) -> [u8; HEADER_LEN as usize] {
    let mut header = [0u8; HEADER_LEN as usize];
    header[..4].copy_from_slice(JOURNAL_MAGIC);
    header[4] = VERSION;
    header[5..9].copy_from_slice(&(interval as u32).to_le_bytes());
    let crc = crc32(&header[4..9]);
    header[9..13].copy_from_slice(&crc.to_le_bytes());
    header
}

impl<S: Storage> ArchiveFile<S> {
    /// Initialises a fresh journal on an **empty** `storage` with the
    /// options' keyframe interval. Syncs the header under
    /// [`FsyncPolicy::Always`].
    pub fn create_on(storage: S, opts: ArchiveOptions) -> Result<Self, ArchiveError> {
        let interval = opts.keyframe_interval.max(1);
        let mut archive = Self {
            storage,
            path: None,
            opts,
            interval,
            width: 0,
            height: 0,
            entries: Vec::new(),
            last: None,
            end: HEADER_LEN,
            unsynced: 0,
            recovery: RecoveryReport::default(),
            counters: Counters::default(),
        };
        archive.storage.set_len(0)?;
        archive.storage.seek(SeekFrom::Start(0))?;
        archive.storage.write_all(&encode_header(interval))?;
        if matches!(opts.fsync, FsyncPolicy::Always) {
            archive.sync()?;
        }
        Ok(archive)
    }

    /// Opens a journal, running torn-tail recovery: the longest valid
    /// committed prefix is kept, everything after it is truncated, and
    /// [`ArchiveFile::recovery`] reports what happened. An empty storage
    /// is initialised as a fresh journal; a storage holding only a prefix
    /// of a header (a crash during create) is reset to one. Requires
    /// write access (recovery truncates).
    pub fn open_on(storage: S, opts: ArchiveOptions) -> Result<Self, ArchiveError> {
        let mut storage = storage;
        if storage.byte_len()? == 0 {
            return Self::create_on(storage, opts);
        }
        let scan = scan(&mut storage)?;
        let Some(interval) = scan.interval else {
            // Torn header: nothing was ever committed. Reset to empty.
            let torn = scan.file_len;
            let mut archive = Self::create_on(storage, opts)?;
            archive.recovery = RecoveryReport {
                frames: 0,
                truncated_bytes: torn,
                reason: Some(TornReason::TornHeader),
                header_reset: true,
            };
            return Ok(archive);
        };
        let mut recovery = RecoveryReport {
            frames: scan.entries.len(),
            truncated_bytes: scan.file_len - scan.committed_end,
            reason: scan.torn,
            header_reset: false,
        };
        if scan.committed_end < scan.file_len {
            storage.set_len(scan.committed_end)?;
            if matches!(opts.fsync, FsyncPolicy::Always) {
                storage.sync_data()?;
            }
        } else {
            recovery.reason = None;
        }
        let mut archive = Self {
            storage,
            path: None,
            opts,
            interval,
            width: scan.width,
            height: scan.height,
            entries: scan.entries,
            last: None,
            end: scan.committed_end,
            unsynced: 0,
            recovery,
            counters: Counters::default(),
        };
        if !archive.entries.is_empty() {
            // Reconstruct (and signature-verify) the newest frame so
            // append stays incremental and committed-region corruption in
            // the live tail fails at open, like `DeltaArchive::from_bytes`.
            archive.last = Some(archive.extract(archive.entries.len() - 1)?);
        }
        Ok(archive)
    }

    /// Frames committed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal holds no frames.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Image width (0 until the first frame is appended).
    #[must_use]
    pub fn width(&self) -> Pixel {
        self.width
    }

    /// Image height (0 until the first frame is appended).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Keyframe cadence (from the journal header).
    #[must_use]
    pub fn keyframe_interval(&self) -> usize {
        self.interval
    }

    /// What open-time recovery found and did.
    #[must_use]
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Cumulative end offset (the byte after the commit record) of each
    /// committed frame — the exact boundaries where a crash flips a frame
    /// between committed and torn. Feeds crash-sweep plans
    /// (`workload::crash::CrashSweep::sampled`) and recovery assertions.
    #[must_use]
    pub fn frame_ends(&self) -> Vec<u64> {
        self.entries
            .iter()
            .map(|e| e.offset + e.footprint())
            .collect()
    }

    /// The stored signature index of frame `index`.
    pub fn signatures(&self, index: usize) -> Result<&[u64], ArchiveError> {
        self.entries
            .get(index)
            .map(|e| e.sigs.as_slice())
            .ok_or(ArchiveError::FrameOutOfRange {
                index,
                frames: self.entries.len(),
            })
    }

    /// Appends the next version of the image as one journal record plus a
    /// commit record — O(frame) I/O, no rewrite of earlier frames. The
    /// frame is durable per the [`FsyncPolicy`]. On an I/O error the
    /// in-memory state is unchanged and the torn bytes are cut back on a
    /// best-effort basis; the next append (or open) overwrites them.
    pub fn append(&mut self, frame: &RleImage) -> Result<AppendOutcome, ArchiveError> {
        if self.entries.is_empty() {
            self.width = frame.width();
            self.height = frame.height();
        } else if frame.width() != self.width || frame.height() != self.height {
            return Err(ArchiveError::DimensionMismatch {
                expected: (self.width, self.height),
                got: (frame.width(), frame.height()),
            });
        }
        let index = self.entries.len();
        let sigs = frame.row_signatures();
        let keyframe = index.is_multiple_of(self.interval);
        let (payload, changed) = if keyframe {
            (frame.clone(), self.height)
        } else {
            let prev = self
                .last
                .as_ref()
                .expect("non-empty journal has a last frame");
            let mut changed = 0usize;
            let mut rows = Vec::with_capacity(self.height);
            for (i, (pr, fr)) in prev.rows().iter().zip(frame.rows()).enumerate() {
                if pr.signature() == sigs[i] {
                    rows.push(RleRow::new(self.width));
                } else {
                    changed += 1;
                    rows.push(rle::ops::xor(pr, fr));
                }
            }
            (RleImage::from_rows(self.width, rows)?, changed)
        };
        let runs = payload.total_runs();

        let mut body = Vec::with_capacity(32 + 8 * self.height);
        body.extend_from_slice(&(index as u32).to_le_bytes());
        body.push(u8::from(keyframe));
        body.extend_from_slice(&self.width.to_le_bytes());
        put_varint(&mut body, self.height as u32);
        put_varint(&mut body, changed as u32);
        put_varint(&mut body, runs as u32);
        for sig in &sigs {
            body.extend_from_slice(&sig.to_le_bytes());
        }
        let rli = serialize::encode_image(&payload);
        put_varint(&mut body, rli.len() as u32);
        body.extend_from_slice(&rli);

        let mut record = Vec::with_capacity(body.len() + 18);
        record.push(FRAME_TAG);
        record.extend_from_slice(&(body.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&body).to_le_bytes());
        record.extend_from_slice(&body);
        record.push(COMMIT_TAG);
        record.extend_from_slice(&(index as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&(index as u32).to_le_bytes()).to_le_bytes());

        let offset = self.end;
        self.storage.seek(SeekFrom::Start(offset))?;
        if let Err(e) = self.storage.write_all(&record) {
            // Cut the torn bytes back so a later append starts clean; if
            // even that fails, open-time recovery handles it.
            let _ = self.storage.set_len(offset);
            if index == 0 {
                self.width = 0;
                self.height = 0;
            }
            return Err(e.into());
        }
        self.end = offset + record.len() as u64;
        self.counters.bytes_appended += record.len() as u64;
        self.counters.last_append_bytes = record.len() as u64;
        self.entries.push(Entry {
            offset,
            body_len: body.len() as u32,
            keyframe,
            changed,
            runs,
            sigs,
        });
        self.last = Some(frame.clone());
        match self.opts.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::OnClose => self.unsynced += 1,
        }
        Ok(AppendOutcome {
            frame: index,
            keyframe,
            changed_rows: changed,
        })
    }

    /// Reads and CRC-checks frame `index`'s payload from disk.
    fn read_payload(&mut self, index: usize) -> Result<RleImage, ArchiveError> {
        let (offset, body_len) = {
            let e = &self.entries[index];
            (e.offset, e.body_len)
        };
        let mut prefix = [0u8; FRAME_PREFIX_LEN as usize];
        let mut body = vec![0u8; body_len as usize];
        if !try_read_exact(&mut self.storage, offset, &mut prefix)?
            || prefix[0] != FRAME_TAG
            || u32_at(&prefix, 1) != body_len
            || !try_read_exact(&mut self.storage, offset + FRAME_PREFIX_LEN, &mut body)?
        {
            self.counters.crc_errors += 1;
            return Err(ArchiveError::CrcMismatch {
                frame: index,
                offset,
            });
        }
        if crc32(&body) != u32_at(&prefix, 5) {
            self.counters.crc_errors += 1;
            return Err(ArchiveError::CrcMismatch {
                frame: index,
                offset,
            });
        }
        let parsed = parse_body(&body, index as u32, Some((self.width, self.height)))
            .map_err(|_| ArchiveError::PayloadGeometry { frame: index })?;
        self.counters.records_replayed += 1;
        let payload = serialize::decode_image(&body[parsed.payload])?;
        if payload.width() != self.width || payload.height() != self.height {
            return Err(ArchiveError::PayloadGeometry { frame: index });
        }
        Ok(payload)
    }

    /// Reconstructs frame `index` bit-identically. The in-memory index
    /// holds each frame's byte offset, so extraction seeks straight to
    /// the governing keyframe and replays at most `keyframe_interval − 1`
    /// deltas — never a scan from frame 0. The reconstruction is verified
    /// against the stored signature index.
    pub fn extract(&mut self, index: usize) -> Result<RleImage, ArchiveError> {
        if index >= self.entries.len() {
            return Err(ArchiveError::FrameOutOfRange {
                index,
                frames: self.entries.len(),
            });
        }
        let key = (0..=index)
            .rev()
            .find(|&i| self.entries[i].keyframe)
            .expect("frame 0 is always a keyframe");
        let mut img = self.read_payload(key)?;
        for j in key + 1..=index {
            let delta = self.read_payload(j)?;
            for (i, d) in delta.rows().iter().enumerate() {
                if !d.is_empty() {
                    let replayed = rle::ops::xor(&img.rows()[i], d);
                    img.set_row(i, replayed)?;
                }
            }
        }
        let want = &self.entries[index].sigs;
        for (i, row) in img.rows().iter().enumerate() {
            if row.signature() != want[i] {
                return Err(ArchiveError::SignatureMismatch {
                    frame: index,
                    row: i,
                });
            }
        }
        Ok(img)
    }

    /// Imports every frame of an in-memory [`DeltaArchive`] (the `RDA1`
    /// format), re-delta-ing on this journal's cadence. Returns the
    /// number of frames imported.
    pub fn import(&mut self, src: &DeltaArchive) -> Result<usize, ArchiveError> {
        for i in 0..src.len() {
            let frame = src.extract(i)?;
            self.append(&frame)?;
        }
        Ok(src.len())
    }

    /// Rewrites the archive onto `target` with a new keyframe cadence,
    /// replaying and verifying every frame. The new journal is synced
    /// before this returns; `self` is not modified — the caller decides
    /// when (and whether) the compacted copy replaces the original. This
    /// is the storage-agnostic core of [`ArchiveFile::compact`].
    pub fn compact_into<T: Storage>(
        &mut self,
        target: T,
        keyframe_interval: usize,
    ) -> Result<ArchiveFile<T>, ArchiveError> {
        let mut out = ArchiveFile::create_on(
            target,
            ArchiveOptions {
                keyframe_interval,
                fsync: FsyncPolicy::OnClose,
            },
        )?;
        for i in 0..self.len() {
            let frame = self.extract(i)?;
            out.append(&frame)?;
        }
        out.sync()?;
        Ok(out)
    }

    /// Full filesystem-check: structural scan, then deep verification of
    /// every committed frame (payload CRC + geometry + replay + signature
    /// index). With `repair`, truncates the torn tail and — if a
    /// *committed* record is corrupt — cuts back to the last verifiable
    /// frame so the journal is consistent again (lost frames are
    /// reported, never silently dropped). An associated function rather
    /// than a method: fsck is what you run *before* trusting a file
    /// enough to open it.
    pub fn fsck(storage: &mut S, repair: bool) -> Result<FsckReport, ArchiveError> {
        let scan = scan(storage)?;
        let Some(_interval) = scan.interval else {
            // Torn create: no header, no frames. Repair = reset to empty.
            let mut report = FsckReport {
                frames: 0,
                verified: 0,
                torn_bytes: scan.file_len,
                torn_reason: Some(TornReason::TornHeader),
                first_corrupt: None,
                frames_lost: 0,
                repaired: repair,
                bytes: scan.file_len,
            };
            if repair {
                storage.set_len(0)?;
                storage.seek(SeekFrom::Start(0))?;
                storage.write_all(&encode_header(crate::DEFAULT_KEYFRAME_INTERVAL))?;
                storage.sync_data()?;
                report.bytes = HEADER_LEN;
            }
            return Ok(report);
        };
        let mut report = FsckReport {
            frames: scan.entries.len(),
            verified: 0,
            torn_bytes: scan.file_len - scan.committed_end,
            torn_reason: scan.torn,
            first_corrupt: None,
            frames_lost: 0,
            repaired: false,
            bytes: scan.file_len,
        };
        // Deep verify: one forward replay over all frames, checking each
        // reconstruction against its stored signature index.
        let mut current: Option<RleImage> = None;
        'verify: for (index, entry) in scan.entries.iter().enumerate() {
            let mut prefix = [0u8; FRAME_PREFIX_LEN as usize];
            let mut body = vec![0u8; entry.body_len as usize];
            let intact = try_read_exact(storage, entry.offset, &mut prefix)?
                && try_read_exact(storage, entry.offset + FRAME_PREFIX_LEN, &mut body)?
                && crc32(&body) == u32_at(&prefix, 5);
            if !intact {
                report.first_corrupt = Some(index);
                break;
            }
            let Ok(parsed) = parse_body(&body, index as u32, None) else {
                report.first_corrupt = Some(index);
                break;
            };
            let Ok(payload) = serialize::decode_image(&body[parsed.payload]) else {
                report.first_corrupt = Some(index);
                break;
            };
            let frame = if entry.keyframe {
                payload
            } else {
                let Some(mut img) = current.take() else {
                    report.first_corrupt = Some(index);
                    break;
                };
                if payload.width() != img.width() || payload.height() != img.height() {
                    report.first_corrupt = Some(index);
                    break;
                }
                for (i, d) in payload.rows().iter().enumerate() {
                    if !d.is_empty() {
                        let replayed = rle::ops::xor(&img.rows()[i], d);
                        if img.set_row(i, replayed).is_err() {
                            report.first_corrupt = Some(index);
                            break 'verify;
                        }
                    }
                }
                img
            };
            for (i, row) in frame.rows().iter().enumerate() {
                if row.signature() != entry.sigs[i] {
                    report.first_corrupt = Some(index);
                    break 'verify;
                }
            }
            report.verified += 1;
            current = Some(frame);
        }
        if repair && !report.clean() {
            let keep_end = match report.first_corrupt {
                // Corruption inside the committed region: cut back to the
                // last frame that verified.
                Some(frame) => scan.entries[frame].offset,
                None => scan.committed_end,
            };
            report.frames_lost = scan.entries.len() - report.verified.min(scan.entries.len());
            storage.set_len(keep_end)?;
            storage.sync_data()?;
            report.repaired = true;
            report.bytes = keep_end;
        }
        Ok(report)
    }

    /// Flushes and fsyncs the journal now, regardless of policy.
    pub fn sync(&mut self) -> Result<(), ArchiveError> {
        self.storage.flush()?;
        self.storage.sync_data()?;
        self.counters.syncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    /// Syncs (per `EveryN`/`OnClose` policies) and consumes the archive.
    /// Dropping without `close` is safe for committed data under
    /// `Always`; under the lazier policies it leaves durability to the
    /// OS.
    pub fn close(mut self) -> Result<(), ArchiveError> {
        if self.unsynced > 0 || matches!(self.opts.fsync, FsyncPolicy::OnClose) {
            self.sync()?;
        }
        Ok(())
    }

    /// Shape summary plus journal I/O counters.
    #[must_use]
    pub fn stat(&self) -> ArchiveStats {
        ArchiveStats {
            frames: self.entries.len(),
            keyframes: self.entries.iter().filter(|e| e.keyframe).count(),
            width: self.width,
            height: self.height,
            keyframe_interval: self.interval,
            delta_rows: self
                .entries
                .iter()
                .filter(|e| !e.keyframe)
                .map(|e| e.changed)
                .sum(),
            stored_runs: self.entries.iter().map(|e| e.runs).sum(),
            journal_bytes: self.end,
            recovered_tail_bytes: self.recovery.truncated_bytes,
            crc_errors: self.counters.crc_errors,
            records_replayed: self.counters.records_replayed,
            bytes_appended: self.counters.bytes_appended,
            last_append_bytes: self.counters.last_append_bytes,
            syncs: self.counters.syncs,
        }
    }

    /// Consumes the archive, returning its backing storage (no implicit
    /// sync — use [`ArchiveFile::close`] for that).
    #[must_use]
    pub fn into_storage(self) -> S {
        self.storage
    }
}

impl ArchiveFile<std::fs::File> {
    /// Opens (or creates) a journal at `path`, with recovery as in
    /// [`ArchiveFile::open_on`].
    pub fn open(path: impl AsRef<Path>, opts: ArchiveOptions) -> Result<Self, ArchiveError> {
        let path = path.as_ref();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut archive = Self::open_on(file, opts)?;
        archive.path = Some(path.to_path_buf());
        Ok(archive)
    }

    /// Re-keyframes the journal in place, crash-safely: the compacted
    /// copy is written to a temporary sibling file, synced, and atomically
    /// renamed over the original — a crash at any point leaves either the
    /// old journal or the new one, never a mix.
    pub fn compact(&mut self, keyframe_interval: usize) -> Result<(), ArchiveError> {
        let path = self
            .path
            .clone()
            .expect("compact is only reachable on path-opened archives");
        let mut tmp = path.clone().into_os_string();
        tmp.push(".compact");
        let tmp = PathBuf::from(tmp);
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        let result = self.compact_into(file, keyframe_interval);
        let compacted = match result {
            Ok(c) => c,
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        };
        drop(compacted); // already synced by compact_into
        std::fs::rename(&tmp, &path)?;
        let opts = self.opts;
        *self = Self::open(&path, opts)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn sequence(frames: usize, width: Pixel, height: usize) -> Vec<RleImage> {
        (0..frames)
            .map(|t| {
                let rows = (0..height)
                    .map(|y| {
                        if y == t % height {
                            RleRow::from_pairs(width, &[(2, 5), (10, 3)]).unwrap()
                        } else if y % 3 == 0 {
                            RleRow::from_pairs(width, &[(0, 2)]).unwrap()
                        } else {
                            RleRow::new(width)
                        }
                    })
                    .collect();
                RleImage::from_rows(width, rows).unwrap()
            })
            .collect()
    }

    fn opts(interval: usize) -> ArchiveOptions {
        ArchiveOptions {
            keyframe_interval: interval,
            fsync: FsyncPolicy::Always,
        }
    }

    #[test]
    fn append_reopen_round_trips_every_frame() {
        let frames = sequence(21, 32, 7);
        let mut journal = ArchiveFile::create_on(MemStorage::new(), opts(5)).unwrap();
        for (i, f) in frames.iter().enumerate() {
            let outcome = journal.append(f).unwrap();
            assert_eq!(outcome.frame, i);
            assert_eq!(outcome.keyframe, i % 5 == 0);
        }
        let bytes = journal.into_storage().into_bytes();
        let mut back = ArchiveFile::open_on(MemStorage::from_bytes(bytes), opts(999)).unwrap();
        assert!(back.recovery().clean());
        assert_eq!(back.len(), frames.len());
        assert_eq!(
            back.keyframe_interval(),
            5,
            "interval comes from the header"
        );
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(&back.extract(i).unwrap(), f, "frame {i}");
        }
    }

    #[test]
    fn append_io_is_o_frame_not_o_archive() {
        let frames = sequence(40, 64, 16);
        let mut journal = ArchiveFile::create_on(MemStorage::new(), opts(8)).unwrap();
        let mut delta_costs = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            journal.append(f).unwrap();
            let stat = journal.stat();
            if !i.is_multiple_of(8) {
                delta_costs.push(stat.last_append_bytes);
            }
            // Every append's I/O is exactly one record, never a rewrite.
            assert!(stat.last_append_bytes < stat.journal_bytes || i == 0);
        }
        // Delta appends cost the same no matter how long the archive is.
        let (first, last) = (delta_costs[0], *delta_costs.last().unwrap());
        assert_eq!(first, last, "append cost must not grow with archive length");
    }

    #[test]
    fn extract_replays_at_most_one_interval() {
        let frames = sequence(50, 32, 8);
        let mut journal = ArchiveFile::create_on(MemStorage::new(), opts(8)).unwrap();
        for f in &frames {
            journal.append(f).unwrap();
        }
        let before = journal.stat().records_replayed;
        journal.extract(47).unwrap();
        let replayed = journal.stat().records_replayed - before;
        assert_eq!(replayed, 8, "frame 47: keyframe 40 + 7 deltas");
        assert!(replayed <= journal.keyframe_interval() as u64);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let frames = sequence(6, 16, 4);
        let mut journal = ArchiveFile::create_on(MemStorage::new(), opts(3)).unwrap();
        for f in &frames {
            journal.append(f).unwrap();
        }
        let committed_4 = journal.entries[4].offset;
        let bytes = journal.into_storage().into_bytes();
        // Cut mid-record of frame 4: frames 0–3 must survive.
        let torn = bytes[..committed_4 as usize + 5].to_vec();
        let torn_len = torn.len() as u64;
        let mut back = ArchiveFile::open_on(MemStorage::from_bytes(torn), opts(3)).unwrap();
        let report = *back.recovery();
        assert_eq!(report.frames, 4);
        assert_eq!(report.truncated_bytes, torn_len - committed_4);
        assert_eq!(report.reason, Some(TornReason::Truncated));
        for (i, f) in frames.iter().take(4).enumerate() {
            assert_eq!(&back.extract(i).unwrap(), f);
        }
        // Appends continue cleanly after recovery.
        back.append(&frames[4]).unwrap();
        assert_eq!(&back.extract(4).unwrap(), &frames[4]);
    }

    #[test]
    fn missing_commit_discards_the_frame() {
        let frames = sequence(3, 16, 4);
        let mut journal = ArchiveFile::create_on(MemStorage::new(), opts(10)).unwrap();
        for f in &frames {
            journal.append(f).unwrap();
        }
        let last_commit = journal.end - COMMIT_LEN;
        let bytes = journal.into_storage().into_bytes();
        // Frame record fully present, commit record cut: not committed.
        let torn = bytes[..last_commit as usize].to_vec();
        let mut back = ArchiveFile::open_on(MemStorage::from_bytes(torn), opts(10)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.recovery().reason, Some(TornReason::Uncommitted));
        assert_eq!(&back.extract(1).unwrap(), &frames[1]);
    }

    #[test]
    fn torn_header_resets_to_an_empty_journal() {
        for cut in 0..HEADER_LEN {
            let full = encode_header(7);
            let mut back = ArchiveFile::open_on(
                MemStorage::from_bytes(full[..cut as usize].to_vec()),
                opts(5),
            )
            .unwrap();
            assert!(back.is_empty(), "cut at {cut}");
            if cut > 0 {
                assert!(back.recovery().header_reset, "cut at {cut}");
            }
            assert_eq!(back.keyframe_interval(), 5, "reset uses the fallback");
            back.append(&sequence(1, 16, 2)[0]).unwrap();
        }
    }

    #[test]
    fn foreign_and_corrupt_headers_are_typed_errors() {
        assert!(matches!(
            ArchiveFile::open_on(MemStorage::from_bytes(b"RDA1junk".to_vec()), opts(4)),
            Err(ArchiveError::BadMagic)
        ));
        let mut header = encode_header(4).to_vec();
        header[5] ^= 0x10; // interval bit flip: caught by the header CRC
        assert!(matches!(
            ArchiveFile::open_on(MemStorage::from_bytes(header), opts(4)),
            Err(ArchiveError::HeaderCorrupt)
        ));
        let mut versioned = encode_header(4);
        versioned[4] = 9;
        let crc = crc32(&versioned[4..9]);
        versioned[9..13].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ArchiveFile::open_on(MemStorage::from_bytes(versioned.to_vec()), opts(4)),
            Err(ArchiveError::UnsupportedVersion { version: 9 })
        ));
    }

    #[test]
    fn fsync_policy_counts_syncs() {
        let frames = sequence(10, 16, 4);
        for (policy, want) in [
            (FsyncPolicy::Always, 11),   // header + every append
            (FsyncPolicy::EveryN(4), 3), // after frames 4, 8, close (2 unsynced)
            (FsyncPolicy::OnClose, 1),
        ] {
            let mut journal = ArchiveFile::create_on(
                MemStorage::new(),
                ArchiveOptions {
                    keyframe_interval: 4,
                    fsync: policy,
                },
            )
            .unwrap();
            for f in &frames {
                journal.append(f).unwrap();
            }
            let syncs_before_close = journal.stat().syncs;
            let total = match policy {
                FsyncPolicy::Always => syncs_before_close,
                _ => syncs_before_close + 1, // close adds the final sync
            };
            journal.close().unwrap();
            assert_eq!(total, want, "{policy:?}");
        }
    }

    #[test]
    fn import_migrates_an_rda1_archive() {
        let frames = sequence(9, 24, 5);
        let mut old = DeltaArchive::new(4);
        for f in &frames {
            old.append(f).unwrap();
        }
        let mut journal = ArchiveFile::create_on(MemStorage::new(), opts(3)).unwrap();
        assert_eq!(journal.import(&old).unwrap(), 9);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(&journal.extract(i).unwrap(), f, "migrated frame {i}");
        }
        // Re-delta'd on the journal's cadence, not the source's.
        assert_eq!(journal.stat().keyframes, 3);
    }

    #[test]
    fn compact_into_rekeys_without_touching_the_source() {
        let frames = sequence(17, 24, 5);
        let mut journal = ArchiveFile::create_on(MemStorage::new(), opts(100)).unwrap();
        for f in &frames {
            journal.append(f).unwrap();
        }
        assert_eq!(journal.stat().keyframes, 1);
        let mut compacted = journal.compact_into(MemStorage::new(), 4).unwrap();
        assert_eq!(compacted.stat().keyframes, 5);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(&compacted.extract(i).unwrap(), f, "compacted frame {i}");
            assert_eq!(&journal.extract(i).unwrap(), f, "source frame {i}");
        }
    }

    #[test]
    fn fsck_verifies_repairs_and_reports() {
        let frames = sequence(8, 16, 4);
        let mut journal = ArchiveFile::create_on(MemStorage::new(), opts(4)).unwrap();
        for f in &frames {
            journal.append(f).unwrap();
        }
        let entry_5 = journal.entries[5].offset;
        let mut clean = journal.into_storage();
        let report = ArchiveFile::<MemStorage>::fsck(&mut clean, false).unwrap();
        assert!(report.clean());
        assert_eq!(report.frames, 8);
        assert_eq!(report.verified, 8);

        // Torn tail: verify-only reports it, repair truncates it.
        let mut torn =
            MemStorage::from_bytes(clean.as_bytes()[..clean.as_bytes().len() - 3].to_vec());
        let report = ArchiveFile::<MemStorage>::fsck(&mut torn, false).unwrap();
        assert!(!report.clean());
        assert_eq!(report.frames, 7);
        assert!(report.torn_bytes > 0);
        let report = ArchiveFile::<MemStorage>::fsck(&mut torn, true).unwrap();
        assert!(report.repaired);
        assert_eq!(report.frames_lost, 0, "torn frames were never committed");
        let report = ArchiveFile::<MemStorage>::fsck(&mut torn, false).unwrap();
        assert!(report.clean(), "fsck after repair is clean");

        // Coherent mid-file corruption: flip a byte in frame 5's stored
        // signature index *and* recompute the body CRC, so the structural
        // scan passes and only deep replay-verify can catch it.
        let mut bytes = clean.as_bytes().to_vec();
        let body_start = (entry_5 + FRAME_PREFIX_LEN) as usize;
        let body_len = u32_at(&bytes, entry_5 as usize + 1) as usize;
        bytes[body_start + 14] ^= 0x40; // inside the sigs region
        let fixed = crc32(&bytes[body_start..body_start + body_len]);
        bytes[entry_5 as usize + 5..entry_5 as usize + 9].copy_from_slice(&fixed.to_le_bytes());
        let mut corrupt = MemStorage::from_bytes(bytes);
        let report = ArchiveFile::<MemStorage>::fsck(&mut corrupt, false).unwrap();
        assert!(!report.clean());
        assert_eq!(report.first_corrupt, Some(5));
        assert_eq!(report.frames, 8, "the scan itself saw all commits");
        let report = ArchiveFile::<MemStorage>::fsck(&mut corrupt, true).unwrap();
        assert!(report.repaired);
        assert_eq!(report.frames_lost, 3, "frames 5..8 cut back");
        let report = ArchiveFile::<MemStorage>::fsck(&mut corrupt, false).unwrap();
        assert!(report.clean());
        let mut back = ArchiveFile::open_on(corrupt, opts(4)).unwrap();
        assert_eq!(back.len(), 5);
        for (i, want) in frames.iter().enumerate().take(back.len()) {
            assert_eq!(&back.extract(i).unwrap(), want, "surviving frame {i}");
        }
    }

    #[test]
    fn out_of_range_is_typed() {
        let mut journal = ArchiveFile::create_on(MemStorage::new(), opts(4)).unwrap();
        assert!(matches!(
            journal.extract(0),
            Err(ArchiveError::FrameOutOfRange {
                index: 0,
                frames: 0
            })
        ));
        assert!(matches!(
            journal.signatures(0),
            Err(ArchiveError::FrameOutOfRange { .. })
        ));
    }
}
