//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) for journal
//! record checksums.
//!
//! The journal needs a checksum that detects torn writes and bit rot, not
//! a cryptographic MAC — CRC32 is the standard choice (ext4 journals, zlib,
//! PNG) and a 256-entry table keeps it fast without any external crate.

/// Byte-at-a-time lookup table for the reflected IEEE polynomial,
/// generated at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data`, as produced by zlib's `crc32(0, ...)`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Standard CRC32/IEEE check values (same as zlib / Python binascii).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = b"journal record payload".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at {byte}.{bit}");
            }
        }
    }
}
