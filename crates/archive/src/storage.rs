//! Byte-level storage abstraction for the journal.
//!
//! [`ArchiveFile`](crate::ArchiveFile) is generic over anything that can
//! read, write, seek, truncate, and sync. Production uses
//! [`std::fs::File`]; tests and benches use [`MemStorage`] (a seekable
//! `Vec<u8>`); the crash-injection harness wraps either in
//! [`FaultStorage`] (behind the `fault-injection` feature) to cut power at
//! an exact byte offset.

use std::io::{self, Read, Seek, SeekFrom, Write};

/// What the journal requires of its backing store: positioned reads and
/// writes plus explicit truncation and durability barriers.
pub trait Storage: Read + Write + Seek {
    /// Flush buffered data to durable storage (fsync or equivalent).
    fn sync_data(&mut self) -> io::Result<()>;

    /// Truncate (or extend with zeros) to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<u64>;

    /// Current size of the store in bytes.
    fn byte_len(&mut self) -> io::Result<u64>;
}

impl Storage for std::fs::File {
    fn sync_data(&mut self) -> io::Result<()> {
        std::fs::File::sync_data(self)
    }

    fn set_len(&mut self, len: u64) -> io::Result<u64> {
        std::fs::File::set_len(self, len)?;
        Ok(len)
    }

    fn byte_len(&mut self) -> io::Result<u64> {
        Ok(self.metadata()?.len())
    }
}

/// An in-memory [`Storage`]: a `Vec<u8>` with a seek cursor. Writes past
/// the end zero-fill the gap, matching file semantics.
#[derive(Clone, Debug, Default)]
pub struct MemStorage {
    buf: Vec<u8>,
    pos: u64,
}

impl MemStorage {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A store holding `bytes`, cursor at 0 — e.g. a crash artifact to
    /// reopen.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { buf: bytes, pos: 0 }
    }

    /// The stored bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the store, returning its bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl Read for MemStorage {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let pos = usize::try_from(self.pos).unwrap_or(usize::MAX);
        let avail = self.buf.len().saturating_sub(pos);
        let n = avail.min(out.len());
        out[..n].copy_from_slice(&self.buf[pos..pos + n]);
        self.pos += n as u64;
        Ok(n)
    }
}

impl Write for MemStorage {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let pos = usize::try_from(self.pos).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "cursor beyond addressable")
        })?;
        if pos > self.buf.len() {
            self.buf.resize(pos, 0);
        }
        let overlap = (self.buf.len() - pos).min(data.len());
        self.buf[pos..pos + overlap].copy_from_slice(&data[..overlap]);
        self.buf.extend_from_slice(&data[overlap..]);
        self.pos += data.len() as u64;
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Seek for MemStorage {
    fn seek(&mut self, from: SeekFrom) -> io::Result<u64> {
        let base = match from {
            SeekFrom::Start(off) => {
                self.pos = off;
                return Ok(self.pos);
            }
            SeekFrom::End(delta) => (self.buf.len() as i64, delta),
            SeekFrom::Current(delta) => (self.pos as i64, delta),
        };
        let target = base
            .0
            .checked_add(base.1)
            .filter(|&t| t >= 0)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "seek before start"))?;
        self.pos = target as u64;
        Ok(self.pos)
    }
}

impl Storage for MemStorage {
    fn sync_data(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<u64> {
        let len_usize = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "length beyond addressable")
        })?;
        self.buf.resize(len_usize, 0);
        Ok(len)
    }

    fn byte_len(&mut self) -> io::Result<u64> {
        Ok(self.buf.len() as u64)
    }
}

/// How an injected crash manifests at the chosen byte offset.
#[cfg(feature = "fault-injection")]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// The disk silently drops every byte from the crash offset on but
    /// keeps reporting success — a power cut with write-back caching.
    Cut,
    /// The write persists up to the crash offset, then errors — a
    /// partial write followed by `ENOSPC`/`EIO`.
    ShortWrite,
    /// Nothing at or past the offset persists and the write errors — a
    /// clean I/O failure at a byte boundary.
    Error,
}

/// A deterministic failpoint: crash with [`CrashMode`] once the
/// `at_byte`-th byte of the cumulative write stream is reached.
#[cfg(feature = "fault-injection")]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// Cumulative written-byte offset at which the crash fires. Offset 0
    /// means nothing ever persists.
    pub at_byte: u64,
    /// How the crash manifests.
    pub mode: CrashMode,
}

/// A [`Storage`] wrapper that injects a byte-exact write crash, for the
/// torn-tail recovery property suite. Reads and seeks pass through
/// untouched; once the plan trips, subsequent writes and syncs behave per
/// the mode (Cut keeps lying with success; the error modes keep erroring).
#[cfg(feature = "fault-injection")]
#[derive(Debug)]
pub struct FaultStorage<S> {
    inner: S,
    plan: CrashPlan,
    /// Bytes of the write stream accepted (or pretended accepted) so far.
    written: u64,
    tripped: bool,
}

#[cfg(feature = "fault-injection")]
impl<S: Storage> FaultStorage<S> {
    /// Wraps `inner` with the given crash plan.
    #[must_use]
    pub fn new(inner: S, plan: CrashPlan) -> Self {
        Self {
            inner,
            plan,
            written: 0,
            tripped: false,
        }
    }

    /// Whether the crash has fired.
    #[must_use]
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Unwraps the inner store — the persisted state after the "crash".
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn injected_error() -> io::Error {
        io::Error::other("injected crash: write failed")
    }
}

#[cfg(feature = "fault-injection")]
impl<S: Storage> Read for FaultStorage<S> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        self.inner.read(out)
    }
}

#[cfg(feature = "fault-injection")]
impl<S: Storage> Write for FaultStorage<S> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if self.tripped {
            return match self.plan.mode {
                // A cut disk keeps acknowledging writes it drops.
                CrashMode::Cut => {
                    self.written += data.len() as u64;
                    Ok(data.len())
                }
                CrashMode::ShortWrite | CrashMode::Error => Err(Self::injected_error()),
            };
        }
        let remaining = self.plan.at_byte.saturating_sub(self.written);
        if (data.len() as u64) <= remaining {
            let n = self.inner.write(data)?;
            self.written += n as u64;
            return Ok(n);
        }
        // The crash lands inside this write.
        self.tripped = true;
        let keep = usize::try_from(remaining).expect("remaining < data.len()");
        match self.plan.mode {
            CrashMode::Cut => {
                if keep > 0 {
                    self.inner.write_all(&data[..keep])?;
                }
                // Pretend the whole write landed; the tail is gone.
                self.written += data.len() as u64;
                Ok(data.len())
            }
            CrashMode::ShortWrite => {
                if keep > 0 {
                    self.inner.write_all(&data[..keep])?;
                    self.written += keep as u64;
                }
                Err(Self::injected_error())
            }
            CrashMode::Error => Err(Self::injected_error()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(feature = "fault-injection")]
impl<S: Storage> Seek for FaultStorage<S> {
    fn seek(&mut self, from: SeekFrom) -> io::Result<u64> {
        self.inner.seek(from)
    }
}

#[cfg(feature = "fault-injection")]
impl<S: Storage> Storage for FaultStorage<S> {
    fn sync_data(&mut self) -> io::Result<()> {
        if self.tripped && self.plan.mode != CrashMode::Cut {
            return Err(Self::injected_error());
        }
        self.inner.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<u64> {
        if self.tripped {
            return match self.plan.mode {
                CrashMode::Cut => Ok(len), // acknowledged, dropped
                _ => Err(Self::injected_error()),
            };
        }
        self.inner.set_len(len)
    }

    fn byte_len(&mut self) -> io::Result<u64> {
        self.inner.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_matches_file_semantics() {
        let mut m = MemStorage::new();
        m.write_all(b"hello").unwrap();
        m.seek(SeekFrom::Start(10)).unwrap();
        m.write_all(b"world").unwrap();
        assert_eq!(m.byte_len().unwrap(), 15);
        assert_eq!(&m.as_bytes()[5..10], &[0u8; 5], "gap zero-fills");
        m.seek(SeekFrom::Start(0)).unwrap();
        let mut out = vec![0u8; 5];
        m.read_exact(&mut out).unwrap();
        assert_eq!(&out, b"hello");
        m.set_len(3).unwrap();
        assert_eq!(m.as_bytes(), b"hel");
        // Overwrite in place, then extend.
        m.seek(SeekFrom::Start(1)).unwrap();
        m.write_all(b"ats off").unwrap();
        assert_eq!(m.as_bytes(), b"hats off");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn cut_persists_exactly_the_prefix_and_keeps_lying() {
        let mut f = FaultStorage::new(
            MemStorage::new(),
            CrashPlan {
                at_byte: 7,
                mode: CrashMode::Cut,
            },
        );
        f.write_all(b"0123").unwrap();
        f.write_all(b"456789").unwrap(); // crash lands inside this write
        assert!(f.tripped());
        f.write_all(b"after").unwrap(); // still "succeeds"
        f.sync_data().unwrap();
        assert_eq!(f.into_inner().as_bytes(), b"0123456");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn short_write_persists_prefix_then_errors() {
        let mut f = FaultStorage::new(
            MemStorage::new(),
            CrashPlan {
                at_byte: 2,
                mode: CrashMode::ShortWrite,
            },
        );
        assert!(f.write_all(b"0123").is_err());
        assert!(f.write_all(b"x").is_err());
        assert!(f.sync_data().is_err());
        assert_eq!(f.into_inner().as_bytes(), b"01");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn error_mode_persists_nothing_from_the_failing_write() {
        let mut f = FaultStorage::new(
            MemStorage::new(),
            CrashPlan {
                at_byte: 2,
                mode: CrashMode::Error,
            },
        );
        assert!(f.write_all(b"0123").is_err());
        assert_eq!(f.into_inner().as_bytes(), b"");
    }
}
