//! Versioned delta archive for RLE binary image sequences.
//!
//! Consecutive frames in the workloads this repo targets (PCB inspection,
//! motion detection) differ in a handful of rows; storing every frame in
//! full re-pays the cost of everything that *didn't* change. This crate
//! persists a sequence as **keyframes plus per-row XOR deltas**, keyed by
//! the 64-bit row signatures from [`rle::sig`]:
//!
//! * **Append** compares the new frame's row signatures against the
//!   previous frame's (both cached on the rows, so the compare is O(1) per
//!   row) and XORs only the rows whose signatures differ — append cost is
//!   proportional to what changed, the same leverage the pipeline's
//!   signature prefilter gets (see `DiffPipelineConfig::signature_prefilter`).
//! * **Extract** reconstructs any version by replaying deltas forward from
//!   the nearest keyframe, then checks the reconstruction's row signatures
//!   against the stored signature index — bit-rot anywhere in the replay
//!   chain surfaces as a typed [`ArchiveError::SignatureMismatch`], not as
//!   a silently wrong image.
//! * **Re-keyframing** ([`DeltaArchive::compact`]) bounds replay cost: a
//!   full keyframe is stored every `keyframe_interval` frames, so no
//!   extraction replays more than `interval − 1` deltas.
//!
//! The wire format (`RDA1`) embeds each payload as a standard `RLI1` blob
//! from [`rle::serialize`], inheriting its hardening wholesale: varints are
//! bounds-checked, declared counts are capped by what the remaining input
//! could plausibly hold *before* any allocation, and malformed input of any
//! kind produces a typed error, never a panic. The archive's own header
//! fields follow the same plausibility-cap discipline.
//!
//! Like the signatures themselves, delta elision is probabilistic at the
//! 2⁻⁶⁴ level: two different rows whose signatures collide would be stored
//! as "unchanged". Callers that cannot tolerate that can diff the frames
//! exactly first (the pipeline's `verify_signatures` mode); the archive's
//! own integrity check catches every *storage or replay* corruption, which
//! is the failure mode archives actually see.
//!
//! # Wire format
//!
//! ```text
//! archive := "RDA1" width:u32le height:varint interval:varint count:varint frame*
//! frame   := flags:u8 (bit0 = keyframe)
//!            changed:varint
//!            sig[height]:u64le          -- row signatures of the FRAME (not the delta)
//!            payload_len:varint
//!            payload:RLI1               -- full frame (keyframe) or XOR delta image
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rle::serialize::{self, get_varint, put_varint, DecodeError};
use rle::{Pixel, RleError, RleImage, RleRow};

mod crc;
pub mod journal;
pub mod storage;

pub use journal::{
    ArchiveFile, ArchiveOptions, FsckReport, FsyncPolicy, RecoveryReport, TornReason, JOURNAL_MAGIC,
};
#[cfg(feature = "fault-injection")]
pub use storage::{CrashMode, CrashPlan, FaultStorage};
pub use storage::{MemStorage, Storage};

const MAGIC: &[u8; 4] = b"RDA1";

/// Magic of the legacy whole-blob [`DeltaArchive::to_bytes`] format —
/// exported so front ends can sniff a file's format and route it to
/// [`DeltaArchive::from_bytes`] or the [`journal`] accordingly.
pub const LEGACY_MAGIC: &[u8; 4] = MAGIC;

/// Default re-keyframe cadence: a keyframe every 16 frames bounds any
/// extraction to at most 15 delta replays while keeping the storage
/// overhead of full frames under ~7% for low-churn sequences.
pub const DEFAULT_KEYFRAME_INTERVAL: usize = 16;

/// Errors arising from archive operations. Every malformed input path is
/// a typed error; nothing panics.
#[derive(Debug, PartialEq, Eq)]
pub enum ArchiveError {
    /// The archive magic did not match `RDA1`.
    BadMagic,
    /// The byte stream ended mid-value.
    Truncated,
    /// A declared count exceeds what the remaining input could possibly
    /// hold (the plausibility cap; checked before any allocation).
    ImplausibleCount {
        /// The count the header declared.
        declared: u64,
        /// The most the remaining input could plausibly hold.
        max_plausible: u64,
    },
    /// The keyframe interval was 0 (no keyframes could ever be written).
    ZeroInterval,
    /// An embedded `RLI1` payload failed to decode.
    Payload(DecodeError),
    /// A decoded payload violated RLE invariants when replayed.
    Rle(RleError),
    /// A frame's dimensions disagree with the archive's.
    DimensionMismatch {
        /// Width and height the archive holds.
        expected: (Pixel, usize),
        /// Width and height the frame supplied.
        got: (Pixel, usize),
    },
    /// The requested frame index does not exist.
    FrameOutOfRange {
        /// The requested index.
        index: usize,
        /// Frames in the archive.
        frames: usize,
    },
    /// A reconstructed row's signature disagrees with the stored signature
    /// index — the archive bytes or the replay chain are corrupt.
    SignatureMismatch {
        /// The frame whose reconstruction failed the check.
        frame: usize,
        /// The first row that disagreed.
        row: usize,
    },
    /// A payload decoded cleanly but described the wrong geometry (e.g. a
    /// delta image whose dimensions differ from the archive's).
    PayloadGeometry {
        /// The frame whose payload was malformed.
        frame: usize,
    },
    /// A journal record's CRC32 disagreed with its bytes — the committed
    /// region is corrupt (run `archive fsck`).
    CrcMismatch {
        /// The frame whose record failed its checksum.
        frame: usize,
        /// Byte offset of the record in the journal.
        offset: u64,
    },
    /// The journal header's CRC32 disagreed with its fields — not a torn
    /// create (those are recovered), but in-place header corruption.
    HeaderCorrupt,
    /// The journal declares a format version this build does not speak.
    UnsupportedVersion {
        /// The version byte found in the header.
        version: u8,
    },
    /// The backing storage failed.
    Io {
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// The I/O error message.
        message: String,
    },
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::BadMagic => write!(f, "bad archive magic (want RDA1)"),
            ArchiveError::Truncated => write!(f, "archive truncated"),
            ArchiveError::ImplausibleCount {
                declared,
                max_plausible,
            } => write!(
                f,
                "declared count {declared} exceeds what the input can hold (≤ {max_plausible})"
            ),
            ArchiveError::ZeroInterval => write!(f, "keyframe interval must be ≥ 1"),
            ArchiveError::Payload(e) => write!(f, "frame payload: {e}"),
            ArchiveError::Rle(e) => write!(f, "replayed rows invalid: {e}"),
            ArchiveError::DimensionMismatch { expected, got } => write!(
                f,
                "frame is {}x{}, archive is {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            ArchiveError::FrameOutOfRange { index, frames } => {
                write!(f, "frame {index} out of range (archive holds {frames})")
            }
            ArchiveError::SignatureMismatch { frame, row } => write!(
                f,
                "frame {frame}, row {row}: reconstruction disagrees with the signature index"
            ),
            ArchiveError::PayloadGeometry { frame } => {
                write!(
                    f,
                    "frame {frame}: payload geometry disagrees with the archive"
                )
            }
            ArchiveError::CrcMismatch { frame, offset } => write!(
                f,
                "frame {frame} (offset {offset}): record checksum mismatch — run fsck"
            ),
            ArchiveError::HeaderCorrupt => write!(f, "journal header corrupt (CRC mismatch)"),
            ArchiveError::UnsupportedVersion { version } => {
                write!(f, "journal format version {version} not supported")
            }
            ArchiveError::Io { kind, message } => write!(f, "journal I/O ({kind:?}): {message}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<std::io::Error> for ArchiveError {
    fn from(e: std::io::Error) -> Self {
        ArchiveError::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

impl From<DecodeError> for ArchiveError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::Truncated => ArchiveError::Truncated,
            other => ArchiveError::Payload(other),
        }
    }
}

impl From<RleError> for ArchiveError {
    fn from(e: RleError) -> Self {
        ArchiveError::Rle(e)
    }
}

/// One stored frame: either a full keyframe or an XOR delta against the
/// previous frame, plus the frame's signature index.
#[derive(Clone, Debug)]
struct FrameRecord {
    keyframe: bool,
    /// Full frame (keyframe) or delta image with empty rows where the
    /// signature matched the previous frame.
    payload: RleImage,
    /// Row signatures of the *reconstructed* frame (the integrity index).
    sigs: Vec<u64>,
    /// Rows whose signature differed from the previous frame (== height
    /// for keyframe 0; informational for [`ArchiveStats`]).
    changed_rows: usize,
}

/// Summary of an archive's shape (see [`DeltaArchive::stat`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Frames stored.
    pub frames: usize,
    /// How many of them are keyframes.
    pub keyframes: usize,
    /// Image width in pixels.
    pub width: Pixel,
    /// Image height in rows.
    pub height: usize,
    /// Re-keyframe cadence.
    pub keyframe_interval: usize,
    /// Sum of changed rows across delta frames (the work extraction
    /// replays; keyframes excluded).
    pub delta_rows: usize,
    /// Total runs stored across all payloads (keyframes + deltas) — the
    /// archive's size driver.
    pub stored_runs: usize,
    /// Committed journal size in bytes (0 for in-memory archives).
    pub journal_bytes: u64,
    /// Torn/uncommitted bytes truncated by open-time recovery.
    pub recovered_tail_bytes: u64,
    /// Record checksum failures observed since open.
    pub crc_errors: u64,
    /// Records decoded in service of `extract` since open — the replay
    /// cost the keyframe index is meant to bound.
    pub records_replayed: u64,
    /// Bytes written by appends since open (journal I/O, not file size).
    pub bytes_appended: u64,
    /// Bytes written by the most recent append — O(frame), not
    /// O(archive), which is the journal's point.
    pub last_append_bytes: u64,
    /// Fsync barriers issued since open.
    pub syncs: u64,
}

/// Outcome of one [`DeltaArchive::append`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Index the frame was stored at.
    pub frame: usize,
    /// Whether it was stored as a keyframe.
    pub keyframe: bool,
    /// Rows whose signatures differed from the previous frame (== height
    /// for the first frame).
    pub changed_rows: usize,
}

/// A versioned sequence of same-sized RLE images stored as keyframes plus
/// XOR deltas (see the crate docs for the format and guarantees).
#[derive(Clone, Debug)]
pub struct DeltaArchive {
    width: Pixel,
    height: usize,
    keyframe_interval: usize,
    frames: Vec<FrameRecord>,
    /// Reconstruction of the newest frame, kept so append is incremental.
    last: Option<RleImage>,
}

impl DeltaArchive {
    /// An empty archive; dimensions are adopted from the first appended
    /// frame. `keyframe_interval` is clamped to at least 1.
    #[must_use]
    pub fn new(keyframe_interval: usize) -> Self {
        Self {
            width: 0,
            height: 0,
            keyframe_interval: keyframe_interval.max(1),
            frames: Vec::new(),
            last: None,
        }
    }

    /// Frames stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the archive holds no frames.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Image width (0 until the first frame is appended).
    #[must_use]
    pub fn width(&self) -> Pixel {
        self.width
    }

    /// Image height (0 until the first frame is appended).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Re-keyframe cadence.
    #[must_use]
    pub fn keyframe_interval(&self) -> usize {
        self.keyframe_interval
    }

    /// The stored signature index of frame `index`.
    pub fn signatures(&self, index: usize) -> Result<&[u64], ArchiveError> {
        self.frames
            .get(index)
            .map(|f| f.sigs.as_slice())
            .ok_or(ArchiveError::FrameOutOfRange {
                index,
                frames: self.frames.len(),
            })
    }

    /// Appends the next version of the image. The first frame (and every
    /// `keyframe_interval`-th after it) is stored in full; other frames
    /// store only the XOR of rows whose signatures changed since the
    /// previous frame — cost proportional to the churn, not the image.
    pub fn append(&mut self, frame: &RleImage) -> Result<AppendOutcome, ArchiveError> {
        if self.frames.is_empty() {
            self.width = frame.width();
            self.height = frame.height();
        } else if frame.width() != self.width || frame.height() != self.height {
            return Err(ArchiveError::DimensionMismatch {
                expected: (self.width, self.height),
                got: (frame.width(), frame.height()),
            });
        }
        let index = self.frames.len();
        let sigs = frame.row_signatures();
        let keyframe = index.is_multiple_of(self.keyframe_interval);
        let (payload, changed_rows) = if keyframe {
            (frame.clone(), self.height)
        } else {
            let prev = self
                .last
                .as_ref()
                .expect("non-empty archive has a last frame");
            let mut changed = 0usize;
            let mut rows = Vec::with_capacity(self.height);
            for (i, (pr, fr)) in prev.rows().iter().zip(frame.rows()).enumerate() {
                if pr.signature() == sigs[i] {
                    rows.push(RleRow::new(self.width));
                } else {
                    changed += 1;
                    rows.push(rle::ops::xor(pr, fr));
                }
            }
            (RleImage::from_rows(self.width, rows)?, changed)
        };
        self.frames.push(FrameRecord {
            keyframe,
            payload,
            sigs,
            changed_rows,
        });
        self.last = Some(frame.clone());
        Ok(AppendOutcome {
            frame: index,
            keyframe,
            changed_rows,
        })
    }

    /// Reconstructs frame `index` bit-identically by replaying deltas from
    /// the nearest keyframe, then verifies the reconstruction against the
    /// stored signature index.
    pub fn extract(&self, index: usize) -> Result<RleImage, ArchiveError> {
        if index >= self.frames.len() {
            return Err(ArchiveError::FrameOutOfRange {
                index,
                frames: self.frames.len(),
            });
        }
        let key = (0..=index)
            .rev()
            .find(|&i| self.frames[i].keyframe)
            .expect("frame 0 is always a keyframe");
        let mut img = self.frames[key].payload.clone();
        if img.width() != self.width || img.height() != self.height {
            return Err(ArchiveError::PayloadGeometry { frame: key });
        }
        for j in key + 1..=index {
            let delta = &self.frames[j].payload;
            if delta.width() != self.width || delta.height() != self.height {
                return Err(ArchiveError::PayloadGeometry { frame: j });
            }
            for (i, d) in delta.rows().iter().enumerate() {
                if !d.is_empty() {
                    let replayed = rle::ops::xor(&img.rows()[i], d);
                    img.set_row(i, replayed)?;
                }
            }
        }
        let want = &self.frames[index].sigs;
        for (i, row) in img.rows().iter().enumerate() {
            if row.signature() != want[i] {
                return Err(ArchiveError::SignatureMismatch {
                    frame: index,
                    row: i,
                });
            }
        }
        Ok(img)
    }

    /// Rebuilds the archive with a new keyframe cadence (clamped to ≥ 1)
    /// in one forward replay — re-keyframing after the fact, so replay
    /// cost stays bounded however the archive was written. The stored
    /// sequence of frames is unchanged.
    pub fn compact(&mut self, keyframe_interval: usize) -> Result<(), ArchiveError> {
        let mut rebuilt = DeltaArchive::new(keyframe_interval);
        let mut current: Option<RleImage> = None;
        for (index, record) in self.frames.iter().enumerate() {
            let frame = if record.keyframe {
                record.payload.clone()
            } else {
                let mut img = current.take().expect("deltas always follow a frame");
                for (i, d) in record.payload.rows().iter().enumerate() {
                    if !d.is_empty() {
                        let replayed = rle::ops::xor(&img.rows()[i], d);
                        img.set_row(i, replayed)?;
                    }
                }
                img
            };
            for (i, row) in frame.rows().iter().enumerate() {
                if row.signature() != record.sigs[i] {
                    return Err(ArchiveError::SignatureMismatch {
                        frame: index,
                        row: i,
                    });
                }
            }
            rebuilt.append(&frame)?;
            current = Some(frame);
        }
        *self = rebuilt;
        Ok(())
    }

    /// Shape summary (frame counts, churn, stored size drivers).
    #[must_use]
    pub fn stat(&self) -> ArchiveStats {
        ArchiveStats {
            frames: self.frames.len(),
            keyframes: self.frames.iter().filter(|f| f.keyframe).count(),
            width: self.width,
            height: self.height,
            keyframe_interval: self.keyframe_interval,
            delta_rows: self
                .frames
                .iter()
                .filter(|f| !f.keyframe)
                .map(|f| f.changed_rows)
                .sum(),
            stored_runs: self.frames.iter().map(|f| f.payload.total_runs()).sum(),
            ..ArchiveStats::default()
        }
    }

    /// Serializes the archive (see the crate docs for the `RDA1` format).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.width.to_le_bytes());
        put_varint(&mut out, self.height as u32);
        put_varint(&mut out, self.keyframe_interval as u32);
        put_varint(&mut out, self.frames.len() as u32);
        for record in &self.frames {
            out.push(u8::from(record.keyframe));
            put_varint(&mut out, record.changed_rows as u32);
            for sig in &record.sigs {
                out.extend_from_slice(&sig.to_le_bytes());
            }
            let payload = serialize::encode_image(&record.payload);
            put_varint(&mut out, payload.len() as u32);
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Deserializes an archive, enforcing the same plausibility caps as
    /// [`rle::serialize`]: declared counts are checked against what the
    /// remaining input could hold *before* anything is allocated, and the
    /// newest frame is reconstructed (and signature-verified) so a corrupt
    /// tail fails at load instead of at first append.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ArchiveError> {
        if data.len() < MAGIC.len() {
            return Err(ArchiveError::Truncated);
        }
        if &data[..MAGIC.len()] != MAGIC {
            return Err(ArchiveError::BadMagic);
        }
        let mut pos = MAGIC.len();
        if data.len() < pos + 4 {
            return Err(ArchiveError::Truncated);
        }
        let width = Pixel::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
        pos += 4;
        let height = get_varint(data, &mut pos)? as usize;
        let keyframe_interval = get_varint(data, &mut pos)? as usize;
        if keyframe_interval == 0 {
            return Err(ArchiveError::ZeroInterval);
        }
        let count = get_varint(data, &mut pos)? as usize;
        // Every frame costs at least: 1 flag byte + 1 changed varint byte
        // + 8 bytes per row of signature index + 1 payload-length byte +
        // the RLI1 header (magic + width + height ≥ 9 bytes).
        let per_frame_floor = (8 * height as u64) + 11;
        let remaining = (data.len() - pos) as u64;
        let max_plausible = remaining / per_frame_floor;
        if count as u64 > max_plausible {
            return Err(ArchiveError::ImplausibleCount {
                declared: count as u64,
                max_plausible,
            });
        }
        let mut frames = Vec::with_capacity(count);
        for frame in 0..count {
            let &flags = data.get(pos).ok_or(ArchiveError::Truncated)?;
            pos += 1;
            let keyframe = flags & 1 != 0;
            let changed_rows = get_varint(data, &mut pos)? as usize;
            if changed_rows > height {
                return Err(ArchiveError::ImplausibleCount {
                    declared: changed_rows as u64,
                    max_plausible: height as u64,
                });
            }
            if data.len() - pos < 8 * height {
                return Err(ArchiveError::Truncated);
            }
            let mut sigs = Vec::with_capacity(height);
            for _ in 0..height {
                sigs.push(u64::from_le_bytes(
                    data[pos..pos + 8].try_into().expect("8 bytes"),
                ));
                pos += 8;
            }
            let payload_len = get_varint(data, &mut pos)? as usize;
            if data.len() - pos < payload_len {
                return Err(ArchiveError::Truncated);
            }
            let payload = serialize::decode_image(&data[pos..pos + payload_len])?;
            pos += payload_len;
            if payload.width() != width || payload.height() != height {
                return Err(ArchiveError::PayloadGeometry { frame });
            }
            if frame == 0 && !keyframe {
                return Err(ArchiveError::PayloadGeometry { frame });
            }
            frames.push(FrameRecord {
                keyframe,
                payload,
                sigs,
                changed_rows,
            });
        }
        let mut archive = Self {
            width: if frames.is_empty() { 0 } else { width },
            height: if frames.is_empty() { 0 } else { height },
            keyframe_interval,
            frames,
            last: None,
        };
        if !archive.is_empty() {
            // Reconstruct (and thereby signature-verify) the newest frame
            // so append stays incremental and a corrupt tail fails here.
            archive.last = Some(archive.extract(archive.len() - 1)?);
        }
        Ok(archive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic little sequence: a bar that marches one row down
    /// per frame over a static background.
    fn sequence(frames: usize, width: Pixel, height: usize) -> Vec<RleImage> {
        (0..frames)
            .map(|t| {
                let rows = (0..height)
                    .map(|y| {
                        if y == t % height {
                            RleRow::from_pairs(width, &[(2, 5), (10, 3)]).unwrap()
                        } else if y % 3 == 0 {
                            RleRow::from_pairs(width, &[(0, 2)]).unwrap()
                        } else {
                            RleRow::new(width)
                        }
                    })
                    .collect();
                RleImage::from_rows(width, rows).unwrap()
            })
            .collect()
    }

    #[test]
    fn round_trip_reconstructs_every_frame() {
        let frames = sequence(20, 32, 7);
        let mut archive = DeltaArchive::new(5);
        for (i, f) in frames.iter().enumerate() {
            let outcome = archive.append(f).unwrap();
            assert_eq!(outcome.frame, i);
            assert_eq!(outcome.keyframe, i % 5 == 0);
        }
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(&archive.extract(i).unwrap(), f, "frame {i}");
        }
        let bytes = archive.to_bytes();
        let back = DeltaArchive::from_bytes(&bytes).unwrap();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(&back.extract(i).unwrap(), f, "decoded frame {i}");
        }
        let stats = back.stat();
        assert_eq!(stats.frames, 20);
        assert_eq!(stats.keyframes, 4);
        assert_eq!((stats.width, stats.height), (32, 7));
        // Two rows change per delta frame (bar leaves one row, enters
        // another), so the archive stores far fewer rows than 20 full
        // frames would.
        assert_eq!(stats.delta_rows, 2 * 16);
    }

    #[test]
    fn deltas_store_only_changed_rows() {
        let frames = sequence(4, 32, 8);
        let mut archive = DeltaArchive::new(100);
        for f in &frames {
            archive.append(f).unwrap();
        }
        let stats = archive.stat();
        assert_eq!(stats.keyframes, 1);
        assert_eq!(stats.delta_rows, 2 * 3, "two rows churn per frame");
    }

    #[test]
    fn compact_rekeys_and_preserves_content() {
        let frames = sequence(17, 24, 5);
        let mut archive = DeltaArchive::new(100);
        for f in &frames {
            archive.append(f).unwrap();
        }
        assert_eq!(archive.stat().keyframes, 1);
        archive.compact(4).unwrap();
        assert_eq!(archive.keyframe_interval(), 4);
        assert_eq!(archive.stat().keyframes, 5);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(&archive.extract(i).unwrap(), f, "frame {i} after compact");
        }
        // Appending continues on the new cadence.
        archive.append(&frames[0]).unwrap();
        assert_eq!(archive.extract(17).unwrap(), frames[0]);
    }

    #[test]
    fn dimension_and_range_errors_are_typed() {
        let frames = sequence(2, 32, 4);
        let mut archive = DeltaArchive::new(4);
        archive.append(&frames[0]).unwrap();
        let tall = RleImage::new(32, 5);
        assert!(matches!(
            archive.append(&tall),
            Err(ArchiveError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            archive.extract(7),
            Err(ArchiveError::FrameOutOfRange {
                index: 7,
                frames: 1
            })
        ));
        assert!(matches!(
            archive.signatures(3),
            Err(ArchiveError::FrameOutOfRange { .. })
        ));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let frames = sequence(6, 16, 4);
        let mut archive = DeltaArchive::new(3);
        for f in &frames {
            archive.append(f).unwrap();
        }
        let bytes = archive.to_bytes();
        for cut in 0..bytes.len() {
            let err = DeltaArchive::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn adversarial_counts_are_capped_before_allocation() {
        // A tiny input declaring 2^28 frames must be rejected up front.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RDA1");
        bytes.extend_from_slice(&16u32.to_le_bytes());
        put_varint(&mut bytes, 4); // height
        put_varint(&mut bytes, 3); // interval
        put_varint(&mut bytes, 1 << 28); // frames — absurd
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            DeltaArchive::from_bytes(&bytes),
            Err(ArchiveError::ImplausibleCount { .. })
        ));
        // Zero keyframe interval is rejected too.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RDA1");
        bytes.extend_from_slice(&16u32.to_le_bytes());
        put_varint(&mut bytes, 4);
        put_varint(&mut bytes, 0);
        put_varint(&mut bytes, 0);
        assert!(matches!(
            DeltaArchive::from_bytes(&bytes),
            Err(ArchiveError::ZeroInterval)
        ));
        assert!(matches!(
            DeltaArchive::from_bytes(b"NOPE"),
            Err(ArchiveError::BadMagic)
        ));
    }

    #[test]
    fn tampered_signature_index_is_caught() {
        let frames = sequence(5, 16, 4);
        let mut archive = DeltaArchive::new(10);
        for f in &frames {
            archive.append(f).unwrap();
        }
        let mut bytes = archive.to_bytes();
        // Flip one bit in the LAST frame's signature index: load-time
        // verification of the newest frame catches it immediately.
        let len = bytes.len();
        let sig_region = len - 40; // inside the final frame's sigs
        bytes[sig_region] ^= 0x01;
        assert!(matches!(
            DeltaArchive::from_bytes(&bytes),
            Err(ArchiveError::SignatureMismatch { .. })
        ));
    }

    #[test]
    fn empty_archive_round_trips() {
        let archive = DeltaArchive::new(8);
        let back = DeltaArchive::from_bytes(&archive.to_bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.keyframe_interval(), 8);
    }
}
