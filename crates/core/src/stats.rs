//! Instrumentation counters for systolic runs.

/// Counters accumulated over a full systolic run. `iterations` is the
/// quantity the paper reports in Figure 5 and Table 1; the rest quantify
/// data movement and cell activity for the ablation studies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArrayStats {
    /// Synchronous iterations until every cell raised its complete signal.
    pub iterations: u64,
    /// Step-1 register swaps.
    pub swaps: u64,
    /// Step-1 moves of a lone `RegBig` run into `RegSmall`.
    pub moves: u64,
    /// Step-2 executions where both runs were present and disjoint.
    pub disjoint_xors: u64,
    /// Step-2 executions that combined overlapping runs.
    pub combines: u64,
    /// Step-2 executions where identical runs annihilated.
    pub annihilations: u64,
    /// Occupied `RegBig` registers moved during step-3 shifts (total data
    /// movement on the shift chain).
    pub run_shifts: u64,
    /// Runs placed directly by the broadcast bus (always 0 on the pure
    /// systolic machine; see [`crate::bus`]).
    pub bus_placements: u64,
    /// Sum over all iterations of the number of cells holding at least one
    /// run when step 2 completed — the hardware-utilization numerator.
    pub busy_cell_iterations: u64,
    /// Number of cells in the array.
    pub cells: usize,
    /// Runs in the first input (`k1`).
    pub k1: usize,
    /// Runs in the second input (`k2`).
    pub k2: usize,
    /// Runs extracted from `RegSmall` when the machine halted (the raw,
    /// uncoalesced output size).
    pub output_runs: usize,
}

impl ArrayStats {
    /// Theorem 1's bound for this input: `k1 + k2`.
    #[must_use]
    pub fn theorem1_bound(&self) -> u64 {
        (self.k1 + self.k2) as u64
    }

    /// Whether the run respected Theorem 1.
    #[must_use]
    pub fn within_theorem1(&self) -> bool {
        self.iterations <= self.theorem1_bound()
    }

    /// Mean fraction of cells that held at least one run per iteration —
    /// how much of the silicon the workload keeps busy. `None` when no
    /// iterations ran.
    #[must_use]
    pub fn utilization(&self) -> Option<f64> {
        if self.iterations == 0 || self.cells == 0 {
            return None;
        }
        Some(self.busy_cell_iterations as f64 / (self.iterations as f64 * self.cells as f64))
    }

    /// Merges counters from another run (used when aggregating per-row runs
    /// into whole-image totals, and per-thread partials in the parallel
    /// engine). `cells` accumulates and `iterations` adds; callers wanting a
    /// max-iterations view track it separately.
    pub fn absorb(&mut self, other: &ArrayStats) {
        self.iterations += other.iterations;
        self.swaps += other.swaps;
        self.moves += other.moves;
        self.disjoint_xors += other.disjoint_xors;
        self.combines += other.combines;
        self.annihilations += other.annihilations;
        self.run_shifts += other.run_shifts;
        self.bus_placements += other.bus_placements;
        self.busy_cell_iterations += other.busy_cell_iterations;
        self.cells += other.cells;
        self.k1 += other.k1;
        self.k2 += other.k2;
        self.output_runs += other.output_runs;
    }
}

/// How the signature prefilter engaged for one batch (see
/// `DiffPipelineConfig::sig_prefilter_min_skip_rate` for the adaptive
/// bypass).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SigPrefilterMode {
    /// The prefilter did not run: disabled in the configuration, or the
    /// kernel policy (cycle-exact systolic) forbids skipping rows.
    #[default]
    Off,
    /// The prefilter compared row signatures and resolved matching rows
    /// host-side.
    Active,
    /// The previous batch's skip rate fell below the adaptive threshold,
    /// so the prefilter stood aside for this batch — signatures were
    /// still compared (cheap, cached u64s) to measure the rate and
    /// re-arm when churn drops again, but every row went to the kernels.
    Bypassed,
}

/// Aggregate statistics for one [`crate::engine::pipeline::DiffPipeline`]
/// batch: what the pool did to an image, and how the work spread over the
/// workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Row pairs processed.
    pub rows: usize,
    /// Sum of every per-row counter; `totals.iterations` is the work a
    /// single physical array would spend streaming all rows through.
    pub totals: ArrayStats,
    /// The slowest row's iteration count — the latency bound with one
    /// array per row (fully parallel hardware).
    pub max_row_iterations: u64,
    /// Host wall-clock for the whole batch (submission through reassembly).
    pub wall: std::time::Duration,
    /// Workers in the pool.
    pub workers: usize,
    /// Workers that processed at least one row of this batch — how much of
    /// the pool the workload actually kept busy.
    pub effective_workers: usize,
    /// Rows re-enqueued after a worker panic or death during this batch
    /// (each retry re-runs the row from scratch on a healthy array).
    pub retries: u64,
    /// Worker threads the supervisor replaced during this batch because
    /// they exited without being asked to shut down.
    pub respawns: u64,
    /// Deadline expiries ([`crate::error::SystolicError::DeadlineExceeded`])
    /// observed during this batch.
    pub timeouts: u64,
    /// Contiguous row chunks the scheduler dispatched (the checkout and
    /// retry granularity; see `DiffPipelineConfig::chunk_target`).
    pub chunks: usize,
    /// Chunks a worker stole from another worker's shard during this batch
    /// (tail rebalancing on the sharded scheduler; 0 when every shard
    /// drained its own queue in time).
    pub chunks_stolen: u64,
    /// Rows resolved host-side by the signature prefilter
    /// (`DiffPipelineConfig::signature_prefilter`): matching row signatures
    /// short-circuited them to an empty diff before any chunk was planned —
    /// no submit, no checkout round-trip, no kernel. Disjoint from the
    /// per-kernel counters below; `rows` partitions into
    /// `rows_sig_skipped + sig_collisions + rows_fast_path +
    /// rows_rle_kernel + rows_packed_kernel + rows_systolic_kernel`.
    pub rows_sig_skipped: usize,
    /// How the prefilter engaged for this batch: off, actively skipping,
    /// or adaptively bypassed because the previous batch's skip rate fell
    /// below `DiffPipelineConfig::sig_prefilter_min_skip_rate`.
    pub sig_prefilter: SigPrefilterMode,
    /// Signature skips cross-checked against the reference XOR in paranoid
    /// mode (`DiffPipelineConfig::verify_signatures`); counts checks that
    /// confirmed the skip. A check that instead caught a collision moves
    /// the row to `sig_collisions`.
    pub sig_verified: usize,
    /// Paranoid-mode cross-checks that caught a signature collision (equal
    /// signatures, unequal rows). The row's diff is replaced by the
    /// reference XOR, so the batch output stays exact.
    pub sig_collisions: usize,
    /// Rows short-circuited without running any kernel (equal inputs or an
    /// empty side; see [`crate::engine::kernel::KernelChoice::FastPath`]).
    pub rows_fast_path: usize,
    /// Rows diffed by the sequential RLE merge kernel.
    pub rows_rle_kernel: usize,
    /// Rows diffed by the decode → word-XOR → re-encode kernel.
    pub rows_packed_kernel: usize,
    /// Rows diffed by the cycle-accurate systolic simulation.
    pub rows_systolic_kernel: usize,
    /// Chunk result buffers taken from the recycling pool instead of
    /// freshly allocated during this batch.
    pub buffers_reused: u64,
    /// Per-row input clones the zero-copy scheduler skipped, relative to
    /// the previous clone-per-submit + clone-per-checkout design (2 per row
    /// for the borrowing batch API, 4 per row for the `Arc`-shared one).
    pub row_clones_avoided: u64,
}

impl PipelineStats {
    /// Rows per second over the batch wall-clock; `None` for an instant or
    /// empty batch.
    #[must_use]
    pub fn rows_per_second(&self) -> Option<f64> {
        let secs = self.wall.as_secs_f64();
        if self.rows == 0 || secs <= 0.0 {
            return None;
        }
        Some(self.rows as f64 / secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_bound_and_check() {
        let s = ArrayStats {
            iterations: 5,
            k1: 3,
            k2: 4,
            ..Default::default()
        };
        assert_eq!(s.theorem1_bound(), 7);
        assert!(s.within_theorem1());
        let s = ArrayStats {
            iterations: 8,
            k1: 3,
            k2: 4,
            ..Default::default()
        };
        assert!(!s.within_theorem1());
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = ArrayStats {
            iterations: 2,
            swaps: 1,
            k1: 3,
            ..Default::default()
        };
        let b = ArrayStats {
            iterations: 3,
            swaps: 2,
            k2: 4,
            output_runs: 5,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.iterations, 5);
        assert_eq!(a.swaps, 3);
        assert_eq!(a.k1, 3);
        assert_eq!(a.k2, 4);
        assert_eq!(a.output_runs, 5);
    }

    #[test]
    fn pipeline_throughput_math() {
        let mut s = PipelineStats {
            rows: 100,
            ..Default::default()
        };
        assert_eq!(s.rows_per_second(), None, "zero wall-clock");
        s.wall = std::time::Duration::from_secs(2);
        assert_eq!(s.rows_per_second(), Some(50.0));
        s.rows = 0;
        assert_eq!(s.rows_per_second(), None, "empty batch");
    }
}
