//! The systolic cell: two run registers and the per-iteration steps 1 and 2.
//!
//! The array stores registers struct-of-arrays style (see
//! [`crate::array::SystolicArray`]); this module gives the per-cell
//! semantics as free functions over `(&mut Option<Run>, &mut Option<Run>)`
//! pairs so the sequential and parallel engines share one definition.

use rle::Run;

/// What step 1 did in a cell — used for statistics and traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderEvent {
    /// Registers already ordered (or too empty to matter): no data movement.
    None,
    /// `RegSmall` and `RegBig` exchanged contents.
    Swapped,
    /// A lone `RegBig` run moved into the empty `RegSmall`.
    Moved,
}

/// What step 2 did in a cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XorEvent {
    /// Fewer than two runs present: XOR is the identity.
    Idle,
    /// Both runs present but disjoint: registers unchanged.
    Disjoint,
    /// Runs shared pixels and were combined; at least one register changed.
    Combined,
    /// Runs were identical and both registers became empty.
    Annihilated,
}

/// Step 1 — *order*: "put the smaller run into RegSmall and the bigger run
/// into RegBig". A run in `RegBig` alone moves to `RegSmall`.
///
/// The comparison is the paper's: swap when `RegSmall.start > RegBig.start`,
/// or starts are equal and `RegSmall.end > RegBig.end`.
pub fn step1_order(small: &mut Option<Run>, big: &mut Option<Run>) -> OrderEvent {
    match (&small, &big) {
        (Some(s), Some(b)) => {
            if s.key() > b.key() {
                std::mem::swap(small, big);
                OrderEvent::Swapped
            } else {
                OrderEvent::None
            }
        }
        (None, Some(_)) => {
            *small = big.take();
            OrderEvent::Moved
        }
        _ => OrderEvent::None,
    }
}

/// Step 2 — *XOR*: the paper's register-transfer formulas, executed with the
/// cell's own two runs, independently of every other cell:
///
/// ```text
/// oldSmallEnd  = RegSmall.end
/// RegSmall.end = min(RegSmall.end, RegBig.start − 1)
/// RegBig.start = min(RegBig.end + 1, max(oldSmallEnd + 1, RegBig.start))
/// RegBig.end   = max(oldSmallEnd, RegBig.end)
/// ```
///
/// A register whose interval becomes empty (`end < start`) is cleared. The
/// formulas assume step 1 has run (`RegSmall ≤ RegBig`); this is
/// debug-asserted.
pub fn step2_xor(small: &mut Option<Run>, big: &mut Option<Run>) -> XorEvent {
    let (Some(s), Some(b)) = (*small, *big) else {
        debug_assert!(
            !(small.is_none() && big.is_some()),
            "step 2 requires step 1 to have run (lone RegBig run found)"
        );
        return XorEvent::Idle;
    };
    debug_assert!(s.key() <= b.key(), "step 2 requires RegSmall <= RegBig");

    if s.end() < b.start() {
        // Disjoint (possibly adjacent): XOR leaves both runs as they are.
        return XorEvent::Disjoint;
    }

    // Overlapping. Work in i64 so the ±1 terms cannot underflow at pixel 0.
    let old_small_end = i64::from(s.end());
    let new_small_end = old_small_end.min(i64::from(b.start()) - 1);
    let new_big_start = (i64::from(b.end()) + 1).min((old_small_end + 1).max(i64::from(b.start())));
    let new_big_end = old_small_end.max(i64::from(b.end()));

    *small = interval(i64::from(s.start()), new_small_end);
    *big = interval(new_big_start, new_big_end);

    if small.is_none() && big.is_none() {
        XorEvent::Annihilated
    } else {
        XorEvent::Combined
    }
}

/// Builds the run `[start, end]`, or `None` when the interval is empty.
fn interval(start: i64, end: i64) -> Option<Run> {
    debug_assert!(start >= 0, "register starts cannot go negative");
    (end >= start).then(|| {
        Run::from_bounds(
            u32::try_from(start).expect("start fits in Pixel"),
            u32::try_from(end).expect("end fits in Pixel"),
        )
    })
}

/// Read-only view of one cell, used by traces, invariant checks and state
/// classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellView {
    /// Contents of `RegSmall`.
    pub small: Option<Run>,
    /// Contents of `RegBig`.
    pub big: Option<Run>,
}

impl CellView {
    /// Whether the cell holds no runs at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.small.is_none() && self.big.is_none()
    }

    /// The *complete* signal `C`: raised when `RegBig` is empty.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.big.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(s: u32, l: u32) -> Option<Run> {
        Some(Run::new(s, l))
    }

    /// Reference XOR on pixel sets, for cross-checking step 2.
    fn reference_xor(a: Option<Run>, b: Option<Run>) -> Vec<u32> {
        let mut pixels = std::collections::BTreeSet::new();
        for r in [a, b].into_iter().flatten() {
            for p in r.start()..=r.end() {
                if !pixels.insert(p) {
                    pixels.remove(&p);
                }
            }
        }
        pixels.into_iter().collect()
    }

    fn cell_pixels(small: Option<Run>, big: Option<Run>) -> Vec<u32> {
        let mut v: Vec<u32> = [small, big]
            .into_iter()
            .flatten()
            .flat_map(|r| r.start()..=r.end())
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn order_swaps_when_small_is_larger() {
        let (mut s, mut b) = (run(10, 3), run(3, 4));
        assert_eq!(step1_order(&mut s, &mut b), OrderEvent::Swapped);
        assert_eq!((s, b), (run(3, 4), run(10, 3)));
    }

    #[test]
    fn order_ties_broken_by_end() {
        // Same start: bigger end goes to RegBig.
        let (mut s, mut b) = (run(27, 4), run(27, 3));
        assert_eq!(step1_order(&mut s, &mut b), OrderEvent::Swapped);
        assert_eq!((s, b), (run(27, 3), run(27, 4)));

        let (mut s, mut b) = (run(27, 3), run(27, 4));
        assert_eq!(step1_order(&mut s, &mut b), OrderEvent::None);
    }

    #[test]
    fn order_moves_lone_big() {
        let (mut s, mut b) = (None, run(5, 2));
        assert_eq!(step1_order(&mut s, &mut b), OrderEvent::Moved);
        assert_eq!((s, b), (run(5, 2), None));
    }

    #[test]
    fn order_noops() {
        let (mut s, mut b) = (run(3, 4), run(10, 3));
        assert_eq!(step1_order(&mut s, &mut b), OrderEvent::None);
        let (mut s, mut b) = (run(3, 4), None);
        assert_eq!(step1_order(&mut s, &mut b), OrderEvent::None);
        let (mut s, mut b): (Option<Run>, Option<Run>) = (None, None);
        assert_eq!(step1_order(&mut s, &mut b), OrderEvent::None);
        assert_eq!((s, b), (None, None));
    }

    #[test]
    fn xor_disjoint_unchanged() {
        let (mut s, mut b) = (run(3, 4), run(10, 3));
        assert_eq!(step2_xor(&mut s, &mut b), XorEvent::Disjoint);
        assert_eq!((s, b), (run(3, 4), run(10, 3)));
    }

    #[test]
    fn xor_adjacent_unchanged() {
        // Adjacent runs are disjoint pixel sets: XOR is both of them.
        let (mut s, mut b) = (run(3, 4), run(7, 2));
        assert_eq!(step2_xor(&mut s, &mut b), XorEvent::Disjoint);
        assert_eq!((s, b), (run(3, 4), run(7, 2)));
    }

    #[test]
    fn xor_identical_annihilates() {
        let (mut s, mut b) = (run(23, 2), run(23, 2));
        assert_eq!(step2_xor(&mut s, &mut b), XorEvent::Annihilated);
        assert_eq!((s, b), (None, None));
    }

    #[test]
    fn xor_partial_overlap() {
        // Figure 3, cell 2, iteration 2: (15,5) xor (16,2) = (15,1)+(18,2).
        let (mut s, mut b) = (run(15, 5), run(16, 2));
        assert_eq!(step2_xor(&mut s, &mut b), XorEvent::Combined);
        assert_eq!((s, b), (run(15, 1), run(18, 2)));
    }

    #[test]
    fn xor_shared_end() {
        // Figure 3, cell 1, iteration 2: (8,5) xor (10,3) = (8,2).
        let (mut s, mut b) = (run(8, 5), run(10, 3));
        assert_eq!(step2_xor(&mut s, &mut b), XorEvent::Combined);
        assert_eq!((s, b), (run(8, 2), None));
    }

    #[test]
    fn xor_shared_start() {
        // Figure 3, cell 4, iteration 2: (27,3) xor (27,4) = (30,1) in RegBig.
        let (mut s, mut b) = (run(27, 3), run(27, 4));
        assert_eq!(step2_xor(&mut s, &mut b), XorEvent::Combined);
        assert_eq!((s, b), (None, run(30, 1)));
    }

    #[test]
    fn xor_nested() {
        // [0,9] xor [2,4] = [0,1] + [5,9].
        let (mut s, mut b) = (run(0, 10), run(2, 3));
        assert_eq!(step2_xor(&mut s, &mut b), XorEvent::Combined);
        assert_eq!((s, b), (run(0, 2), run(5, 5)));
    }

    #[test]
    fn xor_at_pixel_zero_shared_start() {
        // b.start - 1 underflows u32 here; the i64 arithmetic must cope.
        let (mut s, mut b) = (run(0, 3), run(0, 5));
        assert_eq!(step2_xor(&mut s, &mut b), XorEvent::Combined);
        assert_eq!((s, b), (None, run(3, 2)));
    }

    #[test]
    fn xor_idle_cases() {
        let (mut s, mut b) = (run(3, 4), None);
        assert_eq!(step2_xor(&mut s, &mut b), XorEvent::Idle);
        assert_eq!((s, b), (run(3, 4), None));
        let (mut s, mut b): (Option<Run>, Option<Run>) = (None, None);
        assert_eq!(step2_xor(&mut s, &mut b), XorEvent::Idle);
    }

    #[test]
    fn xor_exhaustive_small_geometry() {
        // Every ordered pair of runs within a 12-pixel window, checked
        // against a pixel-set reference. This sweeps all nine qualitative
        // states of the paper's Figure 4.
        for s_start in 0u32..8 {
            for s_len in 1u32..5 {
                for b_start in 0u32..8 {
                    for b_len in 1u32..5 {
                        let (mut s, mut b) = (run(s_start, s_len), run(b_start, b_len));
                        let want = reference_xor(s, b);
                        step1_order(&mut s, &mut b);
                        step2_xor(&mut s, &mut b);
                        assert_eq!(
                            cell_pixels(s, b),
                            want,
                            "({s_start},{s_len}) xor ({b_start},{b_len})"
                        );
                        // Post-conditions: any remaining pair is ordered and
                        // disjoint (Corollary 2.1 part 3 at the cell level).
                        if let (Some(ns), Some(nb)) = (s, b) {
                            assert!(ns.end() < nb.start());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cell_view_signals() {
        assert!(CellView {
            small: None,
            big: None
        }
        .is_empty());
        assert!(CellView {
            small: None,
            big: None
        }
        .complete());
        assert!(CellView {
            small: run(1, 1),
            big: None
        }
        .complete());
        assert!(!CellView {
            small: run(1, 1),
            big: run(5, 1)
        }
        .complete());
        assert!(!CellView {
            small: run(1, 1),
            big: None
        }
        .is_empty());
    }
}
