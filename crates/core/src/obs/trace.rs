//! Structured trace events and the lock-light ring buffer they live in.
//!
//! A trace answers the questions metrics can't: *which* rows retried,
//! *which* worker a chunk ran on, in *what order* supervision interleaved
//! with the hot path. Events are small `Copy` values stamped with a
//! monotonic sequence number and nanoseconds since the observer's epoch;
//! the ring keeps the most recent `capacity` of them and overwrites the
//! oldest beyond that (recording never blocks on a reader and never
//! allocates).

use crate::engine::kernel::KernelChoice;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// What happened, with the ids needed to correlate it.
///
/// The taxonomy mirrors the pipeline's life cycle: rows are *submitted*,
/// chunks are *checked out* by workers, every row a kernel finishes gets a
/// *kernel* event, completed chunks produce *chunk-done*; the supervision
/// plane contributes *retry*, *row-failed*, *respawn* and *timeout*; the
/// caller's side contributes *drain*. Per row the causal chain
/// `Submit < Checkout < Kernel < ChunkDone` must hold in sequence order —
/// the observability suite audits exactly that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A row pair entered the queue.
    Submit {
        /// The row's ticket.
        ticket: u64,
    },
    /// A worker took a chunk off the queue and checked it out.
    Checkout {
        /// The chunk's base ticket.
        chunk: u64,
        /// Rows in the chunk.
        rows: u32,
        /// The worker slot that owns the attempt.
        worker: u32,
        /// Attempt number (0 for the first try).
        attempt: u32,
    },
    /// A kernel finished one row successfully.
    Kernel {
        /// The row's ticket.
        ticket: u64,
        /// The worker slot that diffed it.
        worker: u32,
        /// Which kernel actually ran.
        choice: KernelChoice,
        /// `k1 + k2` input runs for the row.
        runs: u64,
        /// Wall-clock nanoseconds the diff took.
        latency_ns: u64,
    },
    /// A kernel returned a per-row error (e.g. width mismatch).
    RowError {
        /// The row's ticket.
        ticket: u64,
    },
    /// A worker finished a chunk and sent its results.
    ChunkDone {
        /// The chunk's base ticket.
        chunk: u64,
        /// Rows delivered.
        rows: u32,
        /// The worker slot that completed it.
        worker: u32,
        /// Wall-clock nanoseconds for the whole chunk.
        latency_ns: u64,
    },
    /// A chunk was re-enqueued after a panic or worker death.
    Retry {
        /// The chunk's base ticket.
        chunk: u64,
        /// Rows being retried.
        rows: u32,
        /// Attempt count after the increment (1 = first retry).
        attempt: u32,
    },
    /// A row exhausted its retry budget and failed permanently.
    RowFailed {
        /// The row's ticket.
        ticket: u64,
        /// Total attempts charged to the row.
        attempts: u32,
    },
    /// The supervisor replaced a dead worker thread.
    Respawn {
        /// The worker slot that was respawned.
        worker: u32,
    },
    /// A collector's deadline expired with rows still in flight.
    Timeout {
        /// Rows in flight at expiry.
        in_flight: u64,
    },
    /// A drain finished; the pipeline is idle.
    Drain {
        /// Rows handed back by this drain.
        collected: u64,
    },
    /// The signature prefilter resolved a row host-side: matching row
    /// signatures short-circuited it to an empty diff with no submit, no
    /// checkout and no kernel. Carries the image row index (not a ticket —
    /// skipped rows never enter the ticketed ledger).
    SigSkip {
        /// The image row that was skipped.
        row: u64,
    },
    /// A ledgered job entered the executor (its rows get the per-ticket
    /// `Submit` events; this is the job-level envelope).
    JobSubmit {
        /// The job id.
        job: u64,
        /// Rows the job spans.
        rows: u64,
    },
    /// A ledgered job delivered its last row.
    JobDone {
        /// The job id.
        job: u64,
        /// Rows the job spanned.
        rows: u64,
    },
}

impl TraceKind {
    /// The event's name as it appears in exposition output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Submit { .. } => "submit",
            TraceKind::Checkout { .. } => "checkout",
            TraceKind::Kernel { .. } => "kernel",
            TraceKind::RowError { .. } => "row_error",
            TraceKind::ChunkDone { .. } => "chunk_done",
            TraceKind::Retry { .. } => "retry",
            TraceKind::RowFailed { .. } => "row_failed",
            TraceKind::Respawn { .. } => "respawn",
            TraceKind::Timeout { .. } => "timeout",
            TraceKind::Drain { .. } => "drain",
            TraceKind::SigSkip { .. } => "sig_skip",
            TraceKind::JobSubmit { .. } => "job_submit",
            TraceKind::JobDone { .. } => "job_done",
        }
    }
}

/// The name a [`KernelChoice`] is exposed under.
#[must_use]
pub fn kernel_choice_name(choice: KernelChoice) -> &'static str {
    match choice {
        KernelChoice::FastPath => "fast_path",
        KernelChoice::Rle => "rle",
        KernelChoice::Packed => "packed",
        KernelChoice::Systolic => "systolic",
    }
}

/// One recorded event: a [`TraceKind`] plus its global sequence number and
/// timestamp (nanoseconds since the observer's epoch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global record order: event `n` was recorded before event `n + 1`.
    pub seq: u64,
    /// Nanoseconds since the observer was created.
    pub at_ns: u64,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Renders the event as one JSON object (used line-per-event for
    /// `--trace-out`). Keys: `seq`, `at_ns`, `event`, then the kind's ids.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let head = format!(
            "{{\"seq\": {}, \"at_ns\": {}, \"event\": \"{}\"",
            self.seq,
            self.at_ns,
            self.kind.name()
        );
        let tail = match self.kind {
            TraceKind::Submit { ticket } | TraceKind::RowError { ticket } => {
                format!(", \"ticket\": {ticket}}}")
            }
            TraceKind::Checkout {
                chunk,
                rows,
                worker,
                attempt,
            } => format!(
                ", \"chunk\": {chunk}, \"rows\": {rows}, \"worker\": {worker}, \"attempt\": {attempt}}}"
            ),
            TraceKind::Kernel {
                ticket,
                worker,
                choice,
                runs,
                latency_ns,
            } => format!(
                ", \"ticket\": {ticket}, \"worker\": {worker}, \"choice\": \"{}\", \"runs\": {runs}, \"latency_ns\": {latency_ns}}}",
                kernel_choice_name(choice)
            ),
            TraceKind::ChunkDone {
                chunk,
                rows,
                worker,
                latency_ns,
            } => format!(
                ", \"chunk\": {chunk}, \"rows\": {rows}, \"worker\": {worker}, \"latency_ns\": {latency_ns}}}"
            ),
            TraceKind::Retry {
                chunk,
                rows,
                attempt,
            } => format!(", \"chunk\": {chunk}, \"rows\": {rows}, \"attempt\": {attempt}}}"),
            TraceKind::RowFailed { ticket, attempts } => {
                format!(", \"ticket\": {ticket}, \"attempts\": {attempts}}}")
            }
            TraceKind::Respawn { worker } => format!(", \"worker\": {worker}}}"),
            TraceKind::Timeout { in_flight } => format!(", \"in_flight\": {in_flight}}}"),
            TraceKind::Drain { collected } => format!(", \"collected\": {collected}}}"),
            TraceKind::SigSkip { row } => format!(", \"row\": {row}}}"),
            TraceKind::JobSubmit { job, rows } | TraceKind::JobDone { job, rows } => {
                format!(", \"job\": {job}, \"rows\": {rows}}}")
            }
        };
        head + &tail
    }
}

/// A fixed-capacity ring of [`TraceEvent`]s.
///
/// Recording claims a slot with one `fetch_add` and writes the event under
/// that slot's own mutex — different slots never contend, and the same
/// slot only contends after the ring wraps a full lap, so the hot path is
/// effectively an uncontended lock plus a `Copy` store (no allocation).
/// Readers ([`Self::events`]) take the slots one at a time and sort by
/// sequence number.
#[derive(Debug)]
pub struct TraceRing {
    head: AtomicU64,
    slots: Vec<Mutex<Option<TraceEvent>>>,
}

impl TraceRing {
    /// A ring holding the most recent `capacity` events (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// How many events fit before the ring overwrites.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records `kind` at `at_ns`, returning its sequence number.
    pub fn record(&self, at_ns: u64, kind: TraceKind) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().unwrap_or_else(PoisonError::into_inner) =
            Some(TraceEvent { seq, at_ns, kind });
        seq
    }

    /// Events recorded since creation (including any since overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to ring wrap-around.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// The retained events in sequence order. Meant for quiescent reads
    /// (concurrent recording may tear the *set* of retained events, never
    /// an individual event).
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self
            .slots
            .iter()
            .filter_map(|slot| *slot.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_most_recent_events_in_order() {
        let ring = TraceRing::new(4);
        for ticket in 0..6u64 {
            ring.record(ticket * 10, TraceKind::Submit { ticket });
        }
        assert_eq!(ring.recorded(), 6);
        assert_eq!(ring.dropped(), 2);
        let events = ring.events();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5], "oldest two overwritten");
        assert!(events
            .iter()
            .all(|e| matches!(e.kind, TraceKind::Submit { ticket } if ticket == e.seq)));
    }

    #[test]
    fn ring_capacity_floor_is_one() {
        let ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(0, TraceKind::Drain { collected: 0 });
        assert_eq!(ring.events().len(), 1);
    }

    #[test]
    fn json_lines_are_balanced_and_named() {
        let cases = [
            TraceKind::Submit { ticket: 3 },
            TraceKind::Checkout {
                chunk: 3,
                rows: 2,
                worker: 1,
                attempt: 0,
            },
            TraceKind::Kernel {
                ticket: 3,
                worker: 1,
                choice: KernelChoice::Packed,
                runs: 17,
                latency_ns: 420,
            },
            TraceKind::RowError { ticket: 4 },
            TraceKind::ChunkDone {
                chunk: 3,
                rows: 2,
                worker: 1,
                latency_ns: 999,
            },
            TraceKind::Retry {
                chunk: 3,
                rows: 2,
                attempt: 1,
            },
            TraceKind::RowFailed {
                ticket: 3,
                attempts: 3,
            },
            TraceKind::Respawn { worker: 0 },
            TraceKind::Timeout { in_flight: 5 },
            TraceKind::Drain { collected: 12 },
            TraceKind::SigSkip { row: 7 },
            TraceKind::JobSubmit { job: 2, rows: 64 },
            TraceKind::JobDone { job: 2, rows: 64 },
        ];
        for (i, kind) in cases.into_iter().enumerate() {
            let event = TraceEvent {
                seq: i as u64,
                at_ns: 100,
                kind,
            };
            let line = event.to_json_line();
            assert_eq!(line.matches('{').count(), 1, "{line}");
            assert_eq!(line.matches('}').count(), 1, "{line}");
            assert!(
                line.contains(&format!("\"event\": \"{}\"", kind.name())),
                "{line}"
            );
        }
    }

    #[test]
    fn concurrent_recording_keeps_unique_seqs() {
        let ring = std::sync::Arc::new(TraceRing::new(256));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for ticket in 0..32 {
                        ring.record(0, TraceKind::Submit { ticket });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.recorded(), 128);
        let events = ring.events();
        assert_eq!(events.len(), 128);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 128, "every event got a unique sequence number");
    }
}
