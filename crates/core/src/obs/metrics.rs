//! Lock-light metrics primitives and the pipeline's registry.
//!
//! Everything here is built from `AtomicU64`/`AtomicI64` with relaxed
//! ordering: a recording site is one `fetch_add` (two for a histogram),
//! never a lock, so workers can update counters from the hot path without
//! serialising on each other. Reads ([`MetricsRegistry::snapshot`]) are
//! racy-by-design — each atomic is loaded independently — which is the
//! standard metrics trade-off; the invariant-audit suite therefore always
//! snapshots a *quiescent* pipeline (drained, no rows in flight), where
//! the accounting identities must hold exactly.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, rows in flight).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value outright (used where the true value is known under a
    /// lock, so concurrent inc/dec drift cannot accumulate).
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`. Callers must pair every `add` with a matching [`Self::sub`]
    /// inside the same critical section that mutates the mirrored
    /// structure (the sharded queues do this per shard lock), so the gauge
    /// can drift neither negative nor away from the ledger.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (see [`Self::add`] for the pairing discipline).
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Buckets in a [`Log2Histogram`]: bucket 0 holds exact zeros, bucket `i`
/// (1 ≤ i ≤ 63) holds values in `[2^(i-1), 2^i)`, and bucket 64 holds the
/// top of the `u64` range — every value has exactly one bucket, so the
/// bucket sum always equals the count (an identity the audit suite
/// asserts).
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-bucket base-2 histogram: one `fetch_add` on the bucket plus one
/// on each of count and sum per record — no allocation, no lock, no
/// dynamic bucket search beyond a `leading_zeros`.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            buckets: [(); LOG2_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: 0 for 0, else `floor(log2(v)) + 1`.
#[must_use]
pub fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Log2Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[log2_bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state out.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one [`Log2Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`LOG2_BUCKETS`] for the edges).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Sum over the buckets — must equal [`Self::count`] on a quiescent
    /// registry (the audit suite's first identity).
    #[must_use]
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Inclusive upper edge of bucket `i` (`0`, then `2^i − 1`), rendered
    /// for the Prometheus `le` label.
    #[must_use]
    pub fn bucket_edge(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }
}

/// Every metric the diff pipeline maintains when observation is enabled.
///
/// The counters form a closed ledger over row outcomes, which is what
/// makes the layer *testable* rather than merely emitted:
///
/// * `rows_diffed` — kernel executions that produced a diff (worker side;
///   counts **attempts that completed**, including ones later discarded by
///   a chunk crash);
/// * `rows_discarded` — completed row results thrown away because a later
///   row crashed their chunk (the chunk re-runs whole, so these rows are
///   diffed again);
/// * `rows_completed` / `rows_errored` — outcomes actually unpacked from
///   the result channel (collector side);
/// * `rows_inline_diffed` — kernel executions performed host-side by the
///   prefilter's inline-residual shortcut: real diffs through the same
///   kernels (so they count in the kernel mix and the row histograms) but
///   never submitted, so they appear in no queue/submit/complete ledger.
///
/// Quiescent identities (asserted by `tests/observability.rs`):
///
/// * `rows_fast_path + rows_rle_kernel + rows_packed_kernel +
///   rows_systolic_kernel == rows_diffed + rows_inline_diffed`
/// * `row_latency_ns.count == row_runs.count ==
///   rows_diffed + rows_inline_diffed`
/// * `rows_diffed == rows_completed + rows_discarded` (absent kernel
///   errors, which `diff_images`' dimension check rules out)
/// * `rows_submitted == rows_completed + rows_errored + rows_abandoned`
///   (every accepted row is either delivered, delivered-as-error, or
///   written off by a deadline abort — no row is silently lost)
/// * `chunk_latency_ns.count == chunks_completed`
/// * `retries`/`respawns`/`timeouts` equal both the matching trace-event
///   counts and the pipeline's `SupervisionCounters`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Row pairs accepted by `submit` or a batch front-end.
    pub rows_submitted: Counter,
    /// Row outcomes unpacked from the result channel with an `Ok` diff.
    pub rows_completed: Counter,
    /// Row outcomes unpacked from the result channel with an `Err`.
    pub rows_errored: Counter,
    /// Successful kernel executions (worker side, per attempt).
    pub rows_diffed: Counter,
    /// Kernel executions that returned a per-row error (worker side).
    pub rows_kernel_errors: Counter,
    /// Completed row results discarded because their chunk crashed.
    pub rows_discarded: Counter,
    /// Rows written off when a batch was aborted on a deadline: queued
    /// rows dropped before any worker ran them, plus rows still checked
    /// out behind the ticket watermark. The monotonic mirror of
    /// [`crate::DiffPipeline::abandoned`] (a level that drains back to 0
    /// as stale results arrive; this counter never decreases).
    pub rows_abandoned: Counter,
    /// Rows resolved host-side by the signature prefilter: matching row
    /// signatures short-circuited them to an empty diff before planning, so
    /// they appear in **no** other row ledger (not submitted, not diffed,
    /// not completed). Total rows presented to a batch front-end is
    /// `rows_submitted + rows_sig_skipped` when the prefilter is on.
    pub rows_sig_skipped: Counter,
    /// Rows the prefilter's inline-residual shortcut diffed host-side
    /// (small leftovers after a batch of skips; never submitted to the
    /// pool). Counted in the kernel-mix counters and row histograms, but
    /// not in `rows_diffed` (worker side) or the submit/complete ledgers.
    pub rows_inline_diffed: Counter,
    /// Rows short-circuited by the trivial fast path.
    pub rows_fast_path: Counter,
    /// Rows diffed by the RLE merge kernel.
    pub rows_rle_kernel: Counter,
    /// Rows diffed by the packed word-XOR kernel.
    pub rows_packed_kernel: Counter,
    /// Rows diffed by the systolic simulation kernel.
    pub rows_systolic_kernel: Counter,
    /// Chunks handed to the scheduler queue (batch planning + streaming
    /// submits; retries do not re-count).
    pub chunks_dispatched: Counter,
    /// Chunks a worker carried to completion and sent back.
    pub chunks_completed: Counter,
    /// Chunks a worker popped from another worker's shard (work-stealing
    /// on the sharded scheduler; a measure of tail imbalance).
    pub chunks_stolen: Counter,
    /// Chunk re-enqueues after a panic or worker death (mirrors
    /// `SupervisionCounters::retries`).
    pub retries: Counter,
    /// Worker threads replaced by the supervisor (mirrors
    /// `SupervisionCounters::respawns`).
    pub respawns: Counter,
    /// Deadline expiries observed by collectors (mirrors
    /// `SupervisionCounters::timeouts`).
    pub timeouts: Counter,
    /// Batch front-end calls (`diff_images` / `diff_images_shared`).
    pub batches: Counter,
    /// Ledgered jobs accepted by the executor (`submit_job` /
    /// `submit_pair`; the streaming job is not ledgered). Quiescent
    /// identity: `jobs_submitted == jobs_completed + jobs_abandoned`.
    pub jobs_submitted: Counter,
    /// Ledgered jobs whose every row was delivered.
    pub jobs_completed: Counter,
    /// Ledgered jobs written off by `JobHandle::abandon` before all rows
    /// were delivered.
    pub jobs_abandoned: Counter,
    /// Jobs currently sitting in the scheduler queue.
    pub queue_depth: Gauge,
    /// Rows submitted but not yet handed back to the caller.
    pub in_flight: Gauge,
    /// Wall-clock nanoseconds per successful row diff (worker side).
    pub row_latency_ns: Log2Histogram,
    /// Wall-clock nanoseconds per completed chunk (worker side).
    pub chunk_latency_ns: Log2Histogram,
    /// `k1 + k2` input-run count per successfully diffed row.
    pub row_runs: Log2Histogram,
}

impl MetricsRegistry {
    /// Copies every metric out. `trace_recorded`/`trace_dropped` are owned
    /// by the trace ring; [`crate::obs::Observer::metrics_snapshot`] fills
    /// them in.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            rows_submitted: self.rows_submitted.get(),
            rows_completed: self.rows_completed.get(),
            rows_errored: self.rows_errored.get(),
            rows_diffed: self.rows_diffed.get(),
            rows_kernel_errors: self.rows_kernel_errors.get(),
            rows_discarded: self.rows_discarded.get(),
            rows_abandoned: self.rows_abandoned.get(),
            rows_sig_skipped: self.rows_sig_skipped.get(),
            rows_inline_diffed: self.rows_inline_diffed.get(),
            rows_fast_path: self.rows_fast_path.get(),
            rows_rle_kernel: self.rows_rle_kernel.get(),
            rows_packed_kernel: self.rows_packed_kernel.get(),
            rows_systolic_kernel: self.rows_systolic_kernel.get(),
            chunks_dispatched: self.chunks_dispatched.get(),
            chunks_completed: self.chunks_completed.get(),
            chunks_stolen: self.chunks_stolen.get(),
            retries: self.retries.get(),
            respawns: self.respawns.get(),
            timeouts: self.timeouts.get(),
            batches: self.batches.get(),
            jobs_submitted: self.jobs_submitted.get(),
            jobs_completed: self.jobs_completed.get(),
            jobs_abandoned: self.jobs_abandoned.get(),
            queue_depth: self.queue_depth.get(),
            in_flight: self.in_flight.get(),
            row_latency_ns: self.row_latency_ns.snapshot(),
            chunk_latency_ns: self.chunk_latency_ns.snapshot(),
            row_runs: self.row_runs.snapshot(),
            trace_recorded: 0,
            trace_dropped: 0,
        }
    }
}

/// A point-in-time copy of the whole registry, with machine-readable
/// exposition in two formats: Prometheus text ([`Self::to_prometheus`])
/// and JSON ([`Self::to_json`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on MetricsRegistry
pub struct MetricsSnapshot {
    pub rows_submitted: u64,
    pub rows_completed: u64,
    pub rows_errored: u64,
    pub rows_diffed: u64,
    pub rows_kernel_errors: u64,
    pub rows_discarded: u64,
    pub rows_abandoned: u64,
    pub rows_sig_skipped: u64,
    pub rows_inline_diffed: u64,
    pub rows_fast_path: u64,
    pub rows_rle_kernel: u64,
    pub rows_packed_kernel: u64,
    pub rows_systolic_kernel: u64,
    pub chunks_dispatched: u64,
    pub chunks_completed: u64,
    pub chunks_stolen: u64,
    pub retries: u64,
    pub respawns: u64,
    pub timeouts: u64,
    pub batches: u64,
    pub jobs_submitted: u64,
    pub jobs_completed: u64,
    pub jobs_abandoned: u64,
    pub queue_depth: i64,
    pub in_flight: i64,
    pub row_latency_ns: HistogramSnapshot,
    pub chunk_latency_ns: HistogramSnapshot,
    pub row_runs: HistogramSnapshot,
    /// Trace events recorded since the observer was created.
    pub trace_recorded: u64,
    /// Trace events overwritten because the ring wrapped.
    pub trace_dropped: u64,
}

impl MetricsSnapshot {
    /// Sum of the four per-kernel row counters — must equal
    /// `rows_diffed + rows_inline_diffed` on a quiescent pipeline.
    #[must_use]
    pub fn kernel_rows(&self) -> u64 {
        self.rows_fast_path
            + self.rows_rle_kernel
            + self.rows_packed_kernel
            + self.rows_systolic_kernel
    }

    fn counters(&self) -> [(&'static str, u64); 23] {
        [
            ("rows_submitted", self.rows_submitted),
            ("rows_completed", self.rows_completed),
            ("rows_errored", self.rows_errored),
            ("rows_diffed", self.rows_diffed),
            ("rows_kernel_errors", self.rows_kernel_errors),
            ("rows_discarded", self.rows_discarded),
            ("rows_abandoned", self.rows_abandoned),
            ("rows_sig_skipped", self.rows_sig_skipped),
            ("rows_inline_diffed", self.rows_inline_diffed),
            ("rows_fast_path", self.rows_fast_path),
            ("rows_rle_kernel", self.rows_rle_kernel),
            ("rows_packed_kernel", self.rows_packed_kernel),
            ("rows_systolic_kernel", self.rows_systolic_kernel),
            ("chunks_dispatched", self.chunks_dispatched),
            ("chunks_completed", self.chunks_completed),
            ("chunks_stolen", self.chunks_stolen),
            ("retries", self.retries),
            ("respawns", self.respawns),
            ("timeouts", self.timeouts),
            ("batches", self.batches),
            ("jobs_submitted", self.jobs_submitted),
            ("jobs_completed", self.jobs_completed),
            ("jobs_abandoned", self.jobs_abandoned),
        ]
    }

    fn gauges(&self) -> [(&'static str, i64); 2] {
        [
            ("queue_depth", self.queue_depth),
            ("in_flight", self.in_flight),
        ]
    }

    fn histograms(&self) -> [(&'static str, &HistogramSnapshot); 3] {
        [
            ("row_latency_ns", &self.row_latency_ns),
            ("chunk_latency_ns", &self.chunk_latency_ns),
            ("row_runs", &self.row_runs),
        ]
    }

    /// Prometheus text exposition (metric prefix `diffpipeline_`,
    /// counters suffixed `_total`, histograms in the standard
    /// `_bucket`/`_sum`/`_count` shape with cumulative `le` labels).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in self.counters() {
            let _ = writeln!(out, "# TYPE diffpipeline_{name} counter");
            let _ = writeln!(out, "diffpipeline_{name}_total {v}");
        }
        let _ = writeln!(out, "# TYPE diffpipeline_trace_events counter");
        let _ = writeln!(
            out,
            "diffpipeline_trace_events_total {}",
            self.trace_recorded
        );
        let _ = writeln!(out, "# TYPE diffpipeline_trace_events_dropped counter");
        let _ = writeln!(
            out,
            "diffpipeline_trace_events_dropped_total {}",
            self.trace_dropped
        );
        for (name, v) in self.gauges() {
            let _ = writeln!(out, "# TYPE diffpipeline_{name} gauge");
            let _ = writeln!(out, "diffpipeline_{name} {v}");
        }
        for (name, h) in self.histograms() {
            let _ = writeln!(out, "# TYPE diffpipeline_{name} histogram");
            let mut cumulative = 0u64;
            for (i, n) in h.buckets.iter().enumerate() {
                cumulative += n;
                // Empty tail buckets are elided; the +Inf bucket carries
                // the full count regardless.
                if *n > 0 {
                    let _ = writeln!(
                        out,
                        "diffpipeline_{name}_bucket{{le=\"{}\"}} {cumulative}",
                        HistogramSnapshot::bucket_edge(i)
                    );
                }
            }
            let _ = writeln!(out, "diffpipeline_{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "diffpipeline_{name}_sum {}", h.sum);
            let _ = writeln!(out, "diffpipeline_{name}_count {}", h.count);
        }
        out
    }

    /// JSON object exposition (hand-rolled — the workspace carries no
    /// serde; the format is flat `name: number` pairs plus one object per
    /// histogram, stable for CI parsers).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        for (name, v) in self.counters() {
            let _ = writeln!(out, "  \"{name}\": {v},");
        }
        for (name, v) in self.gauges() {
            let _ = writeln!(out, "  \"{name}\": {v},");
        }
        let _ = writeln!(out, "  \"trace_recorded\": {},", self.trace_recorded);
        let _ = writeln!(out, "  \"trace_dropped\": {},", self.trace_dropped);
        let histograms = self.histograms();
        for (hi, (name, h)) in histograms.iter().enumerate() {
            let _ = write!(
                out,
                "  \"{name}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.sum
            );
            // Trailing zero buckets are trimmed so the arrays stay short;
            // absent entries are zero by construction.
            let last = h.buckets.iter().rposition(|n| *n > 0).map_or(0, |i| i + 1);
            for (i, n) in h.buckets[..last].iter().enumerate() {
                let _ = write!(out, "{}{n}", if i == 0 { "" } else { ", " });
            }
            let _ = writeln!(
                out,
                "]}}{}",
                if hi + 1 == histograms.len() { "" } else { "," }
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_partition_the_u64_range() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(1023), 10);
        assert_eq!(log2_bucket(1024), 11);
        assert_eq!(log2_bucket(u64::MAX), 64);
        // Edges agree with the bucketing: edge(i) is the largest value in
        // bucket i.
        for i in 0..LOG2_BUCKETS {
            let edge = HistogramSnapshot::bucket_edge(i);
            assert_eq!(log2_bucket(edge), i, "edge of bucket {i}");
            if i < 64 {
                assert_eq!(log2_bucket(edge + 1), i + 1);
            }
        }
    }

    #[test]
    fn histogram_count_equals_bucket_total() {
        let h = Log2Histogram::default();
        for v in [0u64, 1, 1, 5, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.bucket_total(), 6);
        assert_eq!(
            s.sum,
            0u64.wrapping_add(1 + 1 + 5 + 1000).wrapping_add(u64::MAX)
        );
        assert_eq!(s.buckets[0], 1, "one zero");
        assert_eq!(s.buckets[1], 2, "two ones");
        assert_eq!(s.buckets[64], 1, "one max");
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::default();
        reg.rows_completed.add(3);
        reg.row_latency_ns.record(100);
        reg.row_latency_ns.record(5000);
        reg.queue_depth.set(2);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE diffpipeline_rows_completed counter"));
        assert!(text.contains("diffpipeline_rows_completed_total 3"));
        assert!(text.contains("diffpipeline_queue_depth 2"));
        assert!(text.contains("diffpipeline_row_latency_ns_count 2"));
        assert!(text.contains("diffpipeline_row_latency_ns_bucket{le=\"+Inf\"} 2"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("diffpipeline_row_latency_ns_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn json_exposition_shape() {
        let reg = MetricsRegistry::default();
        reg.rows_diffed.add(2);
        reg.row_runs.record(12);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"rows_diffed\": 2"));
        assert!(json.contains("\"row_runs\": {\"count\": 1"));
        // Balanced braces and no trailing comma before a closing brace.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n}"));
    }
}
