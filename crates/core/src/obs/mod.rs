//! Observability for the diff pipeline: a lock-light [`MetricsRegistry`]
//! and a ring-buffered structured trace, owned together by an
//! [`Observer`].
//!
//! The paper's evaluation (§5, Figure 5 / Table 1) is about *measured*
//! iteration behaviour; this module is the substrate that turns such
//! measurements — and every supervision claim the pipeline makes — into
//! machine-checkable artefacts. Design constraints, in order:
//!
//! 1. **Off by default, free when off.** A pipeline without
//!    `DiffPipelineConfig::observe` carries one `Option` that is `None`;
//!    every recording site is behind an `if let Some`, so the hot path
//!    gains a single predictable branch and takes no timestamps.
//! 2. **Cheap when on.** Counters and histograms are relaxed atomics;
//!    trace recording is one `fetch_add` plus an uncontended per-slot
//!    mutex write of a `Copy` value. Nothing on the hot path allocates or
//!    blocks on a shared lock.
//! 3. **Audited, not just emitted.** The registry's counters form a closed
//!    ledger over row outcomes (see [`MetricsRegistry`]) and the trace's
//!    per-row event chain is causally ordered; `tests/observability.rs`
//!    replays deterministic workloads — including fault plans — and
//!    asserts the accounting identities exactly.

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, HistogramSnapshot, Log2Histogram, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{kernel_choice_name, TraceEvent, TraceKind, TraceRing};

use std::time::Instant;

/// Default number of trace events retained before the ring overwrites.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Tuning for an [`Observer`] (see
/// `DiffPipelineConfig::observe_with`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Trace ring capacity in events ([`DEFAULT_TRACE_CAPACITY`] by
    /// default); older events are overwritten once exceeded.
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// The pipeline's observability state: one metrics registry plus one trace
/// ring, sharing an epoch so trace timestamps and latency histograms agree
/// on a clock.
#[derive(Debug)]
pub struct Observer {
    epoch: Instant,
    /// The metrics registry (public so recording sites and tests can reach
    /// individual counters directly).
    pub metrics: MetricsRegistry,
    trace: TraceRing,
}

impl Observer {
    /// A fresh observer; the epoch is now.
    #[must_use]
    pub fn new(config: ObsConfig) -> Self {
        Self {
            epoch: Instant::now(),
            metrics: MetricsRegistry::default(),
            trace: TraceRing::new(config.trace_capacity),
        }
    }

    /// Nanoseconds since this observer was created (saturating at
    /// `u64::MAX`, ~584 years in).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one trace event stamped with the current time.
    pub fn record(&self, kind: TraceKind) {
        self.trace.record(self.now_ns(), kind);
    }

    /// The retained trace, oldest first (see [`TraceRing::events`]).
    #[must_use]
    pub fn trace_snapshot(&self) -> Vec<TraceEvent> {
        self.trace.events()
    }

    /// A point-in-time copy of every metric, including the trace ring's
    /// recorded/dropped totals.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        snapshot.trace_recorded = self.trace.recorded();
        snapshot.trace_dropped = self.trace.dropped();
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_round_trip() {
        let obs = Observer::new(ObsConfig { trace_capacity: 8 });
        obs.metrics.rows_submitted.add(3);
        obs.record(TraceKind::Submit { ticket: 0 });
        obs.record(TraceKind::Drain { collected: 1 });
        let events = obs.trace_snapshot();
        assert_eq!(events.len(), 2);
        assert!(events[0].seq < events[1].seq);
        assert!(events[0].at_ns <= events[1].at_ns, "clock is monotonic");
        let snapshot = obs.metrics_snapshot();
        assert_eq!(snapshot.rows_submitted, 3);
        assert_eq!(snapshot.trace_recorded, 2);
        assert_eq!(snapshot.trace_dropped, 0);
    }

    #[test]
    fn default_config_capacity() {
        assert_eq!(ObsConfig::default().trace_capacity, DEFAULT_TRACE_CAPACITY);
    }
}
