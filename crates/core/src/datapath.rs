//! A transparent hardware cost model for the cell datapath.
//!
//! The paper proposes the machine but gives no area or timing figures.
//! This module derives first-order estimates from the register-transfer
//! operations of steps 1–2, so design-space discussions (cell count vs.
//! word width vs. §6 interconnect) have concrete numbers attached. The
//! model is deliberately simple and fully documented — gate counts are
//! *unit-weight* (one comparator bit = one gate-equivalent unit, etc.) and
//! should be read as relative, not absolute.
//!
//! Per cell, step 1 needs one `(start, end)` comparator and a swap
//! network; step 2 needs two adders (±1), four min/max units and the
//! result multiplexers; plus the four `w`-bit run registers (start/end ×
//! RegSmall/RegBig) and the shift-out port. Everything scales linearly in
//! the coordinate width `w = ceil(log2(row_width))`.

/// First-order per-cell cost estimate at a given coordinate width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellCost {
    /// Coordinate width `w` in bits.
    pub coord_bits: u32,
    /// Register bits per cell (4 coordinates + 2 valid flags).
    pub register_bits: u32,
    /// Comparator gate-equivalents (step 1's order test + step 2's
    /// min/max tree: 5 `w`-bit compares).
    pub comparator_ge: u32,
    /// Adder gate-equivalents (two ±1 increments).
    pub adder_ge: u32,
    /// Multiplexer gate-equivalents (swap network + 4 result selects).
    pub mux_ge: u32,
}

impl CellCost {
    /// Total gate-equivalents, excluding registers.
    #[must_use]
    pub fn logic_ge(&self) -> u32 {
        self.comparator_ge + self.adder_ge + self.mux_ge
    }

    /// Critical-path estimate in unit gate delays: the step-2 chain
    /// (compare → select → increment → select), each `O(w)` ripple.
    #[must_use]
    pub fn critical_path_gates(&self) -> u32 {
        4 * self.coord_bits
    }
}

/// Whole-array estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayCost {
    /// Per-cell figures.
    pub cell: CellCost,
    /// Number of cells (the paper's `2k`).
    pub cells: usize,
    /// Total register bits.
    pub total_register_bits: u64,
    /// Total logic gate-equivalents.
    pub total_logic_ge: u64,
}

/// Smallest coordinate width that addresses rows of `row_width` pixels.
#[must_use]
pub fn coord_bits_for(row_width: u32) -> u32 {
    32 - row_width.saturating_sub(1).leading_zeros()
}

/// Per-cell cost at a coordinate width.
#[must_use]
pub fn cell_cost(coord_bits: u32) -> CellCost {
    CellCost {
        coord_bits,
        register_bits: 4 * coord_bits + 2,
        // Step 1: one (start,end) lexicographic compare = 2 w-bit compares.
        // Step 2: min/max over {smallEnd, bigStart−1}, {bigEnd+1,
        // max(oldEnd+1, bigStart)}, {oldEnd, bigEnd} = 3 more.
        comparator_ge: 5 * coord_bits,
        // Two increments (bigStart−1 / oldEnd+1 share one ±1 unit each).
        adder_ge: 2 * coord_bits,
        // Swap (2 w-bit 2:1 muxes per register pair) + 4 result selects.
        mux_ge: 8 * coord_bits,
    }
}

/// Array-level totals for diffing rows of `row_width` px with up to
/// `max_runs_per_image` runs per image (cells = 2 × that, the paper's
/// sizing).
#[must_use]
pub fn array_cost(row_width: u32, max_runs_per_image: usize) -> ArrayCost {
    let cell = cell_cost(coord_bits_for(row_width));
    let cells = 2 * max_runs_per_image;
    ArrayCost {
        cell,
        cells,
        total_register_bits: u64::from(cell.register_bits) * cells as u64,
        total_logic_ge: u64::from(cell.logic_ge()) * cells as u64,
    }
}

/// Renders a small design-space table over typical row widths.
#[must_use]
pub fn design_table(max_runs_per_image: usize) -> String {
    let mut out =
        String::from("row width  coord bits  cell regs  cell logic GE  cells  total logic GE\n");
    for row_width in [2_048u32, 10_000, 65_536, 1_000_000] {
        let a = array_cost(row_width, max_runs_per_image);
        out.push_str(&format!(
            "{row_width:>9}  {:>10}  {:>9}  {:>13}  {:>5}  {:>14}\n",
            a.cell.coord_bits,
            a.cell.register_bits,
            a.cell.logic_ge(),
            a.cells,
            a.total_logic_ge
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_bits_boundaries() {
        assert_eq!(coord_bits_for(1), 0);
        assert_eq!(coord_bits_for(2), 1);
        assert_eq!(coord_bits_for(1024), 10);
        assert_eq!(coord_bits_for(1025), 11);
        assert_eq!(coord_bits_for(10_000), 14);
        assert_eq!(coord_bits_for(u32::MAX), 32);
    }

    #[test]
    fn costs_scale_linearly_in_width() {
        let c10 = cell_cost(10);
        let c20 = cell_cost(20);
        assert_eq!(c20.comparator_ge, 2 * c10.comparator_ge);
        assert_eq!(c20.logic_ge(), 2 * c10.logic_ge());
        assert_eq!(c20.critical_path_gates(), 2 * c10.critical_path_gates());
        // Registers have the +2 valid flags offset.
        assert_eq!(c10.register_bits, 42);
    }

    #[test]
    fn array_totals_multiply_out() {
        let a = array_cost(10_000, 250);
        assert_eq!(a.cells, 500);
        assert_eq!(a.total_register_bits, u64::from(a.cell.register_bits) * 500);
        assert_eq!(a.total_logic_ge, u64::from(a.cell.logic_ge()) * 500);
    }

    #[test]
    fn design_table_renders_all_rows() {
        let t = design_table(250);
        assert_eq!(t.lines().count(), 5);
        assert!(t.contains("10000"));
        assert!(t.contains("1000000"));
    }
}
