//! Execution traces in the style of the paper's Figure 3.
//!
//! A [`Trace`] records the register file after the initial load and after
//! each of the three steps of every iteration, labelled `1.1`, `1.2`, `1.3`,
//! `2.1`, ... exactly like the figure. [`Trace::to_figure3_table`] renders
//! the two-line-per-step table (RegSmall above RegBig) used to validate the
//! simulator against the published worked example.

use crate::array::SystolicArray;
use crate::cell::CellView;
use crate::error::SystolicError;
use rle::{RleRow, Run};

/// One recorded snapshot of the whole register file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// Label in Figure 3's notation: `"Initial"`, `"1.1"`, `"1.2"`, ...
    pub label: String,
    /// Per-cell register contents at this point.
    pub cells: Vec<CellView>,
}

/// A full recorded execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Snapshots in execution order.
    pub steps: Vec<TraceStep>,
    /// Iterations until termination.
    pub iterations: u64,
    /// The extracted (raw) result row.
    pub result: RleRow,
}

/// Runs the machine to termination, recording a snapshot after the load and
/// after every step of every iteration.
pub fn run_traced(array: &mut SystolicArray) -> Result<Trace, SystolicError> {
    let mut steps = vec![snapshot("Initial", array)];
    let mut iteration = 0u64;
    while !array.is_done() {
        iteration += 1;
        array.phase_order();
        steps.push(snapshot(&format!("{iteration}.1"), array));
        array.phase_xor();
        steps.push(snapshot(&format!("{iteration}.2"), array));
        array.phase_shift()?;
        steps.push(snapshot(&format!("{iteration}.3"), array));
        // Mirror SystolicArray::step's bookkeeping.
        array.stats_mut().iterations += 1;
        if iteration > (array.stats().k1 + array.stats().k2) as u64 {
            return Err(SystolicError::IterationBound {
                bound: (array.stats().k1 + array.stats().k2) as u64,
            });
        }
    }
    array.stats_mut().output_runs = array.views().filter(|c| c.small.is_some()).count();
    Ok(Trace {
        steps,
        iterations: iteration,
        result: array.extract_raw()?,
    })
}

fn snapshot(label: &str, array: &SystolicArray) -> TraceStep {
    TraceStep {
        label: label.to_string(),
        cells: array.views().collect(),
    }
}

impl Trace {
    /// Renders the trace as a Figure-3-style table: one header row naming
    /// the cells, then two lines per snapshot (RegSmall over RegBig).
    #[must_use]
    pub fn to_figure3_table(&self) -> String {
        let cells = self.steps.first().map_or(0, |s| s.cells.len());
        let col_width = self
            .steps
            .iter()
            .flat_map(|s| &s.cells)
            .flat_map(|c| [c.small, c.big])
            .map(|r| fmt_reg(r).len())
            .max()
            .unwrap_or(2)
            .max("Cell99".len());
        let label_width = self
            .steps
            .iter()
            .map(|s| s.label.len())
            .max()
            .unwrap_or(7)
            .max(7);

        let mut out = String::new();
        out.push_str(&format!("{:label_width$}", "Step"));
        for i in 0..cells {
            out.push_str(&format!(" {:>col_width$}", format!("Cell{i}")));
        }
        out.push('\n');
        for step in &self.steps {
            for (line, pick) in [("S", 0), ("B", 1)] {
                let label = if pick == 0 { step.label.as_str() } else { "" };
                out.push_str(&format!("{label:label_width$}"));
                let _ = line;
                for cell in &step.cells {
                    let reg = if pick == 0 { cell.small } else { cell.big };
                    out.push_str(&format!(" {:>col_width$}", fmt_reg(reg)));
                }
                out.push('\n');
            }
        }
        out
    }

    /// The register contents at a given label, if recorded.
    #[must_use]
    pub fn step(&self, label: &str) -> Option<&TraceStep> {
        self.steps.iter().find(|s| s.label == label)
    }
}

fn fmt_reg(reg: Option<Run>) -> String {
    match reg {
        Some(run) => format!("({},{})", run.start(), run.len()),
        None => "·".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> (RleRow, RleRow) {
        (
            RleRow::from_pairs(40, &[(10, 3), (16, 2), (23, 2), (27, 3)]).unwrap(),
            RleRow::from_pairs(40, &[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)]).unwrap(),
        )
    }

    fn reg(cells: &[CellView], pick_small: bool) -> Vec<Option<Run>> {
        cells
            .iter()
            .map(|c| if pick_small { c.small } else { c.big })
            .collect()
    }

    fn runs(pairs: &[(u32, u32)], pad_to: usize) -> Vec<Option<Run>> {
        let mut v: Vec<Option<Run>> = pairs.iter().map(|&(s, l)| Some(Run::new(s, l))).collect();
        v.resize(pad_to, None);
        v
    }

    #[test]
    fn figure3_full_golden_trace() {
        // The complete published execution of Figure 3, snapshot by
        // snapshot. Cell count is k1 + k2 = 9 (the figure only draws the
        // first six; the rest stay empty throughout).
        let (a, b) = fig1();
        let mut m = SystolicArray::load(&a, &b).unwrap();
        let trace = run_traced(&mut m).unwrap();
        assert_eq!(trace.iterations, 3);
        let n = 9;

        let initial = trace.step("Initial").unwrap();
        assert_eq!(
            reg(&initial.cells, true),
            runs(&[(10, 3), (16, 2), (23, 2), (27, 3)], n)
        );
        assert_eq!(
            reg(&initial.cells, false),
            runs(&[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)], n)
        );

        // 1.1 — after ordering, the images have swapped chains.
        let s11 = trace.step("1.1").unwrap();
        assert_eq!(
            reg(&s11.cells, true),
            runs(&[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)], n)
        );
        assert_eq!(
            reg(&s11.cells, false),
            runs(&[(10, 3), (16, 2), (23, 2), (27, 3)], n)
        );

        // 1.2 — all pairs disjoint; nothing changes.
        let s12 = trace.step("1.2").unwrap();
        assert_eq!(s12.cells, s11.cells);

        // 1.3 — RegBig chain shifted right by one.
        let s13 = trace.step("1.3").unwrap();
        let mut shifted = vec![None];
        shifted.extend_from_slice(&runs(&[(10, 3), (16, 2), (23, 2), (27, 3)], n - 1));
        assert_eq!(reg(&s13.cells, false), shifted);

        // 2.1 — only cell 4 needs the swap: (27,4)/(27,3) -> (27,3)/(27,4).
        let s21 = trace.step("2.1").unwrap();
        assert_eq!(s21.cells[4].small, Some(Run::new(27, 3)));
        assert_eq!(s21.cells[4].big, Some(Run::new(27, 4)));

        // 2.2 — the XOR step produces the published partial results.
        let s22 = trace.step("2.2").unwrap();
        assert_eq!(
            reg(&s22.cells, true),
            runs(&[(3, 4), (8, 2), (15, 1)], n) // cells 3,4 small empty now
                .iter()
                .enumerate()
                .map(|(i, &r)| if i < 3 { r } else { None })
                .collect::<Vec<_>>()
        );
        assert_eq!(s22.cells[2].big, Some(Run::new(18, 2)));
        assert_eq!(s22.cells[3].big, None, "(23,2) pair annihilated");
        assert_eq!(s22.cells[4].big, Some(Run::new(30, 1)));

        // 3.1 — the lone RegBig runs have moved into RegSmall.
        let s31 = trace.step("3.1").unwrap();
        assert_eq!(s31.cells[3].small, Some(Run::new(18, 2)));
        assert_eq!(s31.cells[5].small, Some(Run::new(30, 1)));

        // Final result matches Figure 1.
        assert_eq!(
            trace.result,
            RleRow::from_pairs(40, &[(3, 4), (8, 2), (15, 1), (18, 2), (30, 1)]).unwrap()
        );
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let (a, b) = fig1();
        let mut traced = SystolicArray::load(&a, &b).unwrap();
        let trace = run_traced(&mut traced).unwrap();
        let (row, stats) = crate::array::systolic_xor_raw(&a, &b).unwrap();
        assert_eq!(trace.result, row);
        assert_eq!(trace.iterations, stats.iterations);
    }

    #[test]
    fn table_rendering_contains_labels_and_cells() {
        let (a, b) = fig1();
        let mut m = SystolicArray::load(&a, &b).unwrap();
        let trace = run_traced(&mut m).unwrap();
        let table = trace.to_figure3_table();
        for needle in [
            "Step", "Cell0", "Cell8", "Initial", "1.1", "2.2", "3.3", "(3,4)", "(30,1)",
        ] {
            assert!(table.contains(needle), "table missing {needle:?}:\n{table}");
        }
        // Two lines per snapshot plus the header.
        assert_eq!(table.lines().count(), 1 + 2 * trace.steps.len());
    }

    #[test]
    fn empty_machine_trace() {
        let e = RleRow::new(8);
        let mut m = SystolicArray::load(&e, &e.clone()).unwrap();
        let trace = run_traced(&mut m).unwrap();
        assert_eq!(trace.iterations, 0);
        assert_eq!(trace.steps.len(), 1); // just "Initial"
        assert!(trace.result.is_empty());
        assert!(trace.to_figure3_table().contains("Initial"));
    }
}
