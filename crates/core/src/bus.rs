//! The broadcast-bus extension the paper proposes as future work (§6).
//!
//! > "In both the case of highly similar and highly different images, the
//! > number of iterations taken seems to be dominated by the frequent need
//! > to push a whole set of runs to the right to make room for a new entry.
//! > If a broadcast bus existed which could run at the same frequency as the
//! > rest of the systolic system, it might be possible to perform these
//! > shifts more efficiently thus significantly decreasing the running
//! > time. Thus one area of future research should be modifying the
//! > algorithm to run more quickly on a model with a fast broadcast bus,
//! > such as a reconfigurable mesh."
//!
//! The paper gives no design, so we model the two hardware capabilities it
//! names, as [`BusMode`]s bolted onto the unmodified steps 1–2:
//!
//! * **`Broadcast { per_cycle }`** — a bus that moves `per_cycle` single
//!   runs per iteration. A pending `RegBig` run may be delivered directly
//!   to the first free `RegSmall` slot it could reach by pure shifting
//!   *without interacting with anything on the way* (every `RegSmall` it
//!   passes lies strictly left of it, and the chain right of the slot lies
//!   strictly right of it). Longest pending journeys are delivered first
//!   (critical-path-first).
//! * **`Mesh`** — a reconfigurable mesh (the paper cites Ben-Asher et al.),
//!   where disjoint bus segments operate simultaneously: *any* number of
//!   non-conflicting deliveries per iteration, plus **segment inserts** —
//!   the "push a whole set of runs right to make room for a new entry"
//!   completed in a single cycle by shifting the whole contiguous group at
//!   once instead of bubbling cell by cell.
//!
//! Every move is a pure fast-forward of work the shift chain would do
//! anyway, so the final register file — and therefore the result — is
//! identical to the pure machine's (asserted by randomized tests). Only the
//! iteration count changes; experiment E10 quantifies it.

use crate::array::SystolicArray;
use crate::error::SystolicError;
use crate::stats::ArrayStats;
use rle::{RleRow, Run};

/// Which §6 hardware model accelerates the shift chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusMode {
    /// A single broadcast bus moving `per_cycle` runs per iteration.
    Broadcast {
        /// Deliveries per iteration (a physical bus does 1).
        per_cycle: usize,
    },
    /// A reconfigurable mesh: unlimited disjoint deliveries and one-cycle
    /// segment inserts.
    Mesh,
}

/// A systolic array augmented with one of the §6 interconnect models.
///
/// ```
/// use rle::RleRow;
/// use systolic_core::bus::{BusArray, BusMode};
///
/// let a = RleRow::from_pairs(64, &[(0, 4), (10, 4), (20, 4)]).unwrap();
/// let b = RleRow::from_pairs(64, &[(40, 4)]).unwrap();
/// let mut mesh = BusArray::load(&a, &b).unwrap().with_mode(BusMode::Mesh);
/// mesh.run().unwrap();
/// assert_eq!(mesh.extract().unwrap(), rle::ops::xor(&a, &b));
/// ```
#[derive(Clone, Debug)]
pub struct BusArray {
    array: SystolicArray,
    mode: BusMode,
}

impl BusArray {
    /// Loads the machine with a single-transaction broadcast bus.
    pub fn load(a: &RleRow, b: &RleRow) -> Result<Self, SystolicError> {
        Ok(Self {
            array: SystolicArray::load(a, b)?,
            mode: BusMode::Broadcast { per_cycle: 1 },
        })
    }

    /// Selects the interconnect model.
    #[must_use]
    pub fn with_mode(mut self, mode: BusMode) -> Self {
        self.mode = mode;
        self
    }

    /// Convenience: a broadcast bus with the given per-cycle capacity.
    #[must_use]
    pub fn with_bus_capacity(self, capacity: usize) -> Self {
        self.with_mode(BusMode::Broadcast {
            per_cycle: capacity,
        })
    }

    /// The underlying array (for inspection).
    #[must_use]
    pub fn array(&self) -> &SystolicArray {
        &self.array
    }

    /// Executes one iteration: steps 1–2, the bus phase, then the ordinary
    /// shift for whatever the bus did not take. Returns whether the machine
    /// has terminated.
    pub fn step(&mut self) -> Result<bool, SystolicError> {
        self.array.phase_order();
        self.array.phase_xor();
        self.phase_bus();
        self.array.phase_shift()?;
        self.array.stats_mut().iterations += 1;
        Ok(self.array.is_done())
    }

    /// Runs to termination.
    pub fn run(&mut self) -> Result<(), SystolicError> {
        let bound = (self.array.stats().k1 + self.array.stats().k2) as u64;
        while !self.array.is_done() {
            if self.array.stats().iterations >= bound {
                return Err(SystolicError::IterationBound { bound });
            }
            self.step()?;
        }
        let output_runs = self.array.views().filter(|c| c.small.is_some()).count();
        self.array.stats_mut().output_runs = output_runs;
        Ok(())
    }

    /// Extracts the canonicalized result.
    pub fn extract(&self) -> Result<RleRow, SystolicError> {
        self.array.extract()
    }

    /// Extracts the raw result.
    pub fn extract_raw(&self) -> Result<RleRow, SystolicError> {
        self.array.extract_raw()
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ArrayStats {
        self.array.stats()
    }

    fn phase_bus(&mut self) {
        match self.mode {
            BusMode::Broadcast { per_cycle } => {
                for _ in 0..per_cycle {
                    // One datum per transaction: the best single-run move,
                    // whether it ends in a free slot or just before an
                    // unavoidable interaction.
                    let placement = self.best_direct_placement();
                    let express = self.best_express_delivery(&[]);
                    match (placement, express) {
                        (Some((pf, pt, pr)), Some((ef, et, _)))
                            if et.saturating_sub(ef) > pt.saturating_sub(pf) =>
                        {
                            self.apply_express(ef, et);
                            let _ = pr;
                        }
                        (Some((pf, pt, pr)), _) => self.apply_placement(pf, pt, pr),
                        (None, Some((ef, et, _))) => self.apply_express(ef, et),
                        (None, None) => break,
                    }
                }
            }
            BusMode::Mesh => {
                // Disjoint segments work simultaneously: keep applying moves
                // until none are left this cycle. Placements and inserts
                // each clear one RegBig register; express deliveries are
                // limited to one per destination per cycle, so the loop is
                // bounded.
                let mut expressed: Vec<usize> = Vec::new();
                loop {
                    if let Some((from, to, run)) = self.best_direct_placement() {
                        self.apply_placement(from, to, run);
                        continue;
                    }
                    if self.apply_one_segment_insert() {
                        continue;
                    }
                    if let Some((from, to, _)) = self.best_express_delivery(&expressed) {
                        self.apply_express(from, to);
                        expressed.push(to);
                        continue;
                    }
                    break;
                }
            }
        }
        self.resync_occupancy();
    }

    /// Finds the pending run with the longest *free passage* toward its
    /// first unavoidable interaction: a run at `big[i]` whose next
    /// interacting `RegSmall` partner sits at cell `j` may be delivered to
    /// `big[j − 1]` (the shift then carries it into `j`, exactly as if it
    /// had travelled cell by cell) when every `RegSmall` strictly between
    /// lies strictly left of it and no other pending run occupies the
    /// skipped `RegBig` cells. `skip` lists destinations already used this
    /// cycle.
    fn best_express_delivery(&self, skip: &[usize]) -> Option<(usize, usize, Run)> {
        let (small, big) = self.array.registers();
        let mut best: Option<(usize, usize, Run)> = None;
        for (from, reg) in big.iter().enumerate() {
            let Some(run) = *reg else { continue };
            // Find the interaction point: the first RegSmall at or right of
            // `from` that the run cannot freely pass.
            let mut interaction = None;
            for (m, s) in small.iter().enumerate().skip(from) {
                if let Some(s) = s {
                    if s.end() >= run.start() {
                        interaction = Some(m);
                        break;
                    }
                }
            }
            // Free slots are the direct-placement case; here we only
            // accelerate runs that end in an interaction.
            let Some(j) = interaction else { continue };
            let dest = j - 1;
            if dest <= from || skip.contains(&dest) {
                continue;
            }
            // The skipped RegBig cells must be empty (a bus may not pass or
            // collide with another pending run).
            if big[from + 1..=dest].iter().any(Option::is_some) {
                continue;
            }
            if best.is_none_or(|(bf, bt, _)| dest - from > bt - bf) {
                best = Some((from, dest, run));
            }
        }
        best
    }

    fn apply_express(&mut self, from: usize, to: usize) {
        let (_, big) = self.array.registers_mut();
        debug_assert!(big[to].is_none());
        big[to] = big[from].take();
        self.array.stats_mut().bus_placements += 1;
    }

    fn apply_placement(&mut self, from: usize, to: usize, run: Run) {
        let (small, big) = self.array.registers_mut();
        debug_assert!(small[to].is_none() && big[from] == Some(run));
        small[to] = Some(run);
        big[from] = None;
        self.array.stats_mut().bus_placements += 1;
    }

    fn resync_occupancy(&mut self) {
        let occupied = {
            let (_, big) = self.array.registers();
            big.iter().flatten().count()
        };
        self.array.set_occupied_big(occupied);
    }

    /// Finds the *longest-journey* deliverable run: the pending `RegBig` run
    /// whose legal destination slot lies farthest from its current cell.
    /// Cutting the critical path first is what shortens the run time.
    fn best_direct_placement(&self) -> Option<(usize, usize, Run)> {
        let (small, big) = self.array.registers();
        let mut best: Option<(usize, usize, Run)> = None;
        for (from, reg) in big.iter().enumerate() {
            let Some(run) = *reg else { continue };
            let mut to = None;
            for (m, s) in small.iter().enumerate().skip(from) {
                match s {
                    Some(s) if s.end() < run.start() => {} // passed with identity XOR
                    Some(_) => break,                      // must interact: the bus may not bypass
                    None => {
                        to = Some(m);
                        break;
                    }
                }
            }
            let Some(to) = to else { continue };
            // The chain right of the slot must stay strictly greater.
            if let Some(next) = small[to + 1..].iter().flatten().next() {
                if next.start() <= run.end() {
                    continue;
                }
            }
            if best.is_none_or(|(bf, bt, _)| to - from > bt - bf) {
                best = Some((from, to, run));
            }
        }
        best
    }

    /// Applies one segment insert: a pending run `r` at cell `i` that
    /// belongs immediately before the contiguous `RegSmall` group starting
    /// at `i + 1` (strictly disjoint, `r` smaller) is inserted there while
    /// the whole group shifts right one cell into the free slot at its end
    /// — in one cycle instead of a group-length cascade.
    fn apply_one_segment_insert(&mut self) -> bool {
        let found = {
            let (small, big) = self.array.registers();
            let mut found = None;
            for (i, reg) in big.iter().enumerate() {
                let Some(run) = *reg else { continue };
                if i + 1 >= small.len() {
                    continue;
                }
                let Some(head) = small[i + 1] else { continue };
                // r must slot in strictly before the group head without
                // needing to XOR it.
                if run.key() >= head.key() || run.end() >= head.start() {
                    continue;
                }
                // Find the free slot at the end of the contiguous group.
                let mut slot = None;
                for (m, s) in small.iter().enumerate().skip(i + 1) {
                    if s.is_none() {
                        slot = Some(m);
                        break;
                    }
                }
                if let Some(slot) = slot {
                    found = Some((i, slot, run));
                    break;
                }
            }
            found
        };
        let Some((i, slot, run)) = found else {
            return false;
        };
        let (small, big) = self.array.registers_mut();
        // Shift the group [i+1, slot) right by one, as the mesh does in a
        // single cycle, then drop the run into the vacated head cell.
        for m in (i + 1..slot).rev() {
            small[m + 1] = small[m];
        }
        small[i + 1] = Some(run);
        big[i] = None;
        self.array.stats_mut().bus_placements += 1;
        true
    }
}

/// Convenience: bus-assisted systolic XOR (single broadcast bus) returning
/// the canonical difference and statistics.
pub fn systolic_xor_bus(a: &RleRow, b: &RleRow) -> Result<(RleRow, ArrayStats), SystolicError> {
    let mut array = BusArray::load(a, b)?;
    array.run()?;
    let row = array.extract()?;
    Ok((row, *array.stats()))
}

/// Convenience: mesh-assisted systolic XOR (segment inserts + unlimited
/// disjoint deliveries).
pub fn systolic_xor_mesh(a: &RleRow, b: &RleRow) -> Result<(RleRow, ArrayStats), SystolicError> {
    let mut array = BusArray::load(a, b)?.with_mode(BusMode::Mesh);
    array.run()?;
    let row = array.extract()?;
    Ok((row, *array.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::systolic_xor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn row(width: u32, pairs: &[(u32, u32)]) -> RleRow {
        RleRow::from_pairs(width, pairs).unwrap()
    }

    fn random_row(rng: &mut StdRng, width: u32) -> RleRow {
        let mut r = RleRow::new(width);
        let mut pos: u32 = rng.gen_range(0..=3);
        while pos + 6 < width {
            let len = rng.gen_range(1..=5);
            r.push_run(Run::new(pos, len)).unwrap();
            pos += len + rng.gen_range(2..=8);
        }
        r
    }

    #[test]
    fn figure1_result_is_unchanged() {
        let a = row(40, &[(10, 3), (16, 2), (23, 2), (27, 3)]);
        let b = row(40, &[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)]);
        let expected = rle::ops::xor(&a, &b);
        let (diff, stats) = systolic_xor_bus(&a, &b).unwrap();
        assert_eq!(diff, expected);
        let (mesh_diff, mesh_stats) = systolic_xor_mesh(&a, &b).unwrap();
        assert_eq!(mesh_diff, expected);
        let (_, pure) = systolic_xor(&a, &b).unwrap();
        assert!(stats.iterations <= pure.iterations);
        assert!(mesh_stats.iterations <= stats.iterations);
    }

    #[test]
    fn bus_accelerates_the_tail_push_pattern() {
        // The pathological pattern the paper describes: a new entry must
        // push a whole group of settled runs right. One small run in image 2
        // displaces everything in image 1.
        let a = row(400, &(10..30).map(|i| (i * 10, 4)).collect::<Vec<_>>());
        let b = row(400, &[(0, 4)]);
        let (pure_diff, pure) = systolic_xor(&a, &b).unwrap();
        let (bus_diff, bus) = systolic_xor_bus(&a, &b).unwrap();
        let (mesh_diff, mesh) = systolic_xor_mesh(&a, &b).unwrap();
        assert_eq!(bus_diff, pure_diff);
        assert_eq!(mesh_diff, pure_diff);
        assert!(bus.bus_placements > 0);
        assert!(
            bus.iterations < pure.iterations,
            "bus {} vs pure {}",
            bus.iterations,
            pure.iterations
        );
        assert!(
            mesh.iterations <= bus.iterations,
            "mesh {} vs bus {}",
            mesh.iterations,
            bus.iterations
        );
        // The mesh completes the insert-and-push in O(1) iterations.
        assert!(
            mesh.iterations <= 4,
            "mesh took {} iterations",
            mesh.iterations
        );
    }

    #[test]
    fn mesh_kills_insertion_cascades() {
        // Image 2 contributes one run that must be *inserted* in front of a
        // long settled group — the cascade case proper.
        let a = row(600, &(5..45).map(|i| (i * 12, 4)).collect::<Vec<_>>());
        let b = row(600, &[(0, 2)]);
        let (pure_diff, pure) = systolic_xor(&a, &b).unwrap();
        let (mesh_diff, mesh) = systolic_xor_mesh(&a, &b).unwrap();
        assert_eq!(mesh_diff, pure_diff);
        assert!(
            mesh.iterations * 3 <= pure.iterations,
            "mesh {} should be far below pure {}",
            mesh.iterations,
            pure.iterations
        );
    }

    #[test]
    fn randomized_equivalence_with_pure_machine() {
        let mut rng = StdRng::seed_from_u64(0xB05);
        for case in 0..200 {
            let width = rng.gen_range(30..400);
            let a = random_row(&mut rng, width);
            let b = random_row(&mut rng, width);
            let (pure_diff, pure) = systolic_xor(&a, &b).unwrap();
            let (bus_diff, bus) = systolic_xor_bus(&a, &b).unwrap();
            let (mesh_diff, mesh) = systolic_xor_mesh(&a, &b).unwrap();
            assert_eq!(bus_diff, pure_diff, "case {case}");
            assert_eq!(mesh_diff, pure_diff, "case {case}");
            assert!(bus.iterations <= pure.iterations, "case {case}");
            assert!(mesh.iterations <= pure.iterations, "case {case}");
        }
    }

    #[test]
    fn wider_bus_helps_on_average_and_never_changes_results() {
        // Greedy delivery is not pointwise monotone in capacity: an extra
        // delivery can steal the slot another run would have reached
        // sooner. On average a wider bus still wins, and the result is
        // always identical.
        let mut rng = StdRng::seed_from_u64(0xB06);
        let (mut total_one, mut total_four) = (0u64, 0u64);
        for _ in 0..50 {
            let a = random_row(&mut rng, 300);
            let b = random_row(&mut rng, 300);
            let mut one = BusArray::load(&a, &b).unwrap();
            one.run().unwrap();
            let mut four = BusArray::load(&a, &b).unwrap().with_bus_capacity(4);
            four.run().unwrap();
            assert_eq!(one.extract().unwrap(), four.extract().unwrap());
            total_one += one.stats().iterations;
            total_four += four.stats().iterations;
        }
        assert!(
            total_four <= total_one,
            "wider bus slower overall: {total_four} vs {total_one}"
        );
    }

    #[test]
    fn empty_inputs() {
        let e = RleRow::new(32);
        let (d, stats) = systolic_xor_bus(&e, &e.clone()).unwrap();
        assert!(d.is_empty());
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.bus_placements, 0);
    }
}
