//! Row-diff kernels and the adaptive selector used by the pipeline.
//!
//! The paper's sequential analysis (§2) assumes run-length processing is
//! always the right representation, but its `Θ(k1 + k2)` merge loses to a
//! plain word-wise XOR once rows get dense: a 16 384-pixel row is only 256
//! `u64` words, while a noisy scan line can easily carry thousands of runs.
//! Breuel (arXiv:0712.0121) and Ehrensperger et al. (arXiv:1504.01052)
//! document the same density-dependent crossover for RLE morphology. This
//! module packages the three in-tree ways of diffing one row pair —
//!
//! * **RLE merge** ([`rle::ops::xor_into`]): `Θ(k1 + k2)` merge iterations,
//!   allocation-free against a per-worker output buffer;
//! * **packed run-cancellation**: XOR is symmetric difference, so runs that
//!   appear identically in both rows annihilate without touching pixel
//!   data. A SIMD common-prefix scan ([`crate::engine::simd`]) cancels the
//!   long identical stretches that dominate real scan pairs; only the
//!   leftover runs are toggled into one reusable [`BitRow`] scratch, which
//!   is then re-encoded (`Θ(width/64 + k_cancelled/V + k_leftover)` for
//!   vector width `V`);
//! * **systolic simulation** ([`SystolicArray`]): the paper's cycle-accurate
//!   machine, kept for stats-exact experiments (cost ~ iterations × cells);
//!
//! — behind one [`diff_row`] entry point, plus [`Kernel::Auto`], which picks
//! per row using the calibrated crossover [`PACKED_RUNS_PER_WORD`] and
//! short-circuits trivial rows (equal → empty diff, one side empty → copy)
//! without running any kernel at all.
//!
//! Kernel selection is purely per-row (a function of the two rows and the
//! configured [`Kernel`]), never per-batch: on the multi-image executor a
//! worker interleaves chunks from unrelated jobs, and a row diffs to the
//! same bits and the same kernel choice whether its job runs alone or
//! next to a dozen others — the bit-identity half of the executor's
//! fairness/isolation proof suite leans on this.

use crate::array::SystolicArray;
use crate::engine::simd::{common_prefix_runs, SimdLevel};
use crate::error::SystolicError;
use crate::stats::ArrayStats;
use bitimg::bitrow::words_for;
use bitimg::{convert, BitRow};
use rle::RleRow;

/// Kernel selection policy for the pipeline (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Per-row choice: fast paths first, then RLE merge vs. packed words by
    /// the [`PACKED_RUNS_PER_WORD`] density crossover.
    #[default]
    Auto,
    /// Always the sequential RLE merge (the paper's §2 algorithm).
    Rle,
    /// Always decode → word-wise XOR → re-encode.
    Packed,
    /// Always the cycle-accurate systolic array simulation. Slow, but the
    /// only kernel whose [`ArrayStats`] model the paper's machine exactly.
    Systolic,
}

impl std::str::FromStr for Kernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Kernel::Auto),
            "rle" => Ok(Kernel::Rle),
            "packed" => Ok(Kernel::Packed),
            "systolic" => Ok(Kernel::Systolic),
            other => Err(format!(
                "unknown kernel {other:?} (expected auto, rle, packed or systolic)"
            )),
        }
    }
}

/// What [`diff_row`] actually ran for one row — recorded per row in
/// [`crate::stats::PipelineStats`] so the selector's behaviour is
/// observable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelChoice {
    /// Trivial row short-circuited: equal inputs (empty diff) or an empty
    /// side (canonicalized copy). No kernel ran.
    FastPath,
    /// The sequential RLE merge.
    Rle,
    /// Decode → word XOR → re-encode.
    Packed,
    /// The systolic array simulation.
    Systolic,
}

/// `Auto` switches from the RLE merge to the packed kernel when
/// `k1 + k2 > PACKED_RUNS_PER_WORD * ceil(width / 64)`.
///
/// Calibration (see DESIGN.md "Hot path & kernel selection"): the merge
/// costs ~`k1 + k2` branchy iterations; the run-cancellation packed kernel
/// costs `Θ(width/64 + k_cancelled/V + k_leftover)`, where the cancelled
/// fraction is unknowable from `k1 + k2` alone. Re-measured on 16 384-px
/// rows with the SIMD cancellation kernel: on realistic pairs (similar
/// scans, ~1 % row errors — the paper's workload) packed wins from roughly
/// one run per word upward and by 3–4× in dense territory; on adversarial
/// pairs where nothing cancels, the merge wins at every density. At two
/// runs per word those risks are symmetric (~2× either way), so the factor
/// stays the balanced middle. It also guarantees that an auto-chosen
/// packed kernel reports `iterations < (k1 + k2) / 2`, keeping every auto
/// row within the paper's Theorem-1 budget of `k1 + k2`.
pub const PACKED_RUNS_PER_WORD: usize = 2;

/// Per-worker reusable buffers: one dense scratch row for the packed
/// kernel, one output row shared by all kernels, the lazily-built systolic
/// array, and the SIMD dispatch level the packed kernel's prefix scan runs
/// at. In steady state a worker's row diffs allocate only the compact
/// clone of each result row.
#[derive(Debug)]
pub struct KernelScratch {
    dense: BitRow,
    out: RleRow,
    array: Option<SystolicArray>,
    simd: SimdLevel,
}

impl Default for KernelScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelScratch {
    /// Empty scratch; buffers grow on first use and are then reused. The
    /// SIMD level comes from [`SimdLevel::default_level`] (runtime
    /// detection, overridable via `SYSTOLIC_SIMD`).
    #[must_use]
    pub fn new() -> Self {
        Self::with_simd(SimdLevel::default_level())
    }

    /// Empty scratch pinned to an explicit SIMD level (clamped to what the
    /// CPU supports, so a forced level is always executable).
    #[must_use]
    pub fn with_simd(level: SimdLevel) -> Self {
        Self {
            dense: BitRow::new(0),
            out: RleRow::new(0),
            array: None,
            simd: SimdLevel::resolve(Some(level)),
        }
    }

    /// The SIMD level the packed kernel's prefix scan dispatches at.
    #[must_use]
    pub fn simd(&self) -> SimdLevel {
        self.simd
    }

    /// Discards state that may be mid-mutation after a caught panic. The
    /// dense and output buffers are unconditionally reset per row, so only
    /// the array can hold poisoned state.
    pub fn discard_poisoned(&mut self) {
        self.array = None;
    }
}

/// Diffs one row pair with the given kernel policy, using `scratch` for
/// all intermediate state. Returns the canonical diff row, the cost
/// accounting and which kernel actually ran.
///
/// Unlike the raw kernels this is a total function over mismatched widths:
/// they surface as [`SystolicError::WidthMismatch`], never a panic, so a
/// bad row costs the pipeline one error outcome instead of a retry loop.
pub fn diff_row(
    kernel: Kernel,
    scratch: &mut KernelScratch,
    a: &RleRow,
    b: &RleRow,
) -> Result<(RleRow, ArrayStats, KernelChoice), SystolicError> {
    if a.width() != b.width() {
        return Err(SystolicError::WidthMismatch {
            left: a.width(),
            right: b.width(),
        });
    }
    match kernel {
        Kernel::Rle => Ok(rle_kernel(scratch, a, b)),
        Kernel::Packed => Ok(packed_kernel(scratch, a, b)),
        Kernel::Systolic => systolic_kernel(scratch, a, b),
        Kernel::Auto => {
            if std::ptr::eq(a, b) || a.runs() == b.runs() {
                scratch.out.reset(a.width());
                return Ok(fast_path(scratch, a, b));
            }
            if a.is_empty() || b.is_empty() {
                scratch.out.copy_from(if a.is_empty() { b } else { a });
                scratch.out.canonicalize();
                return Ok(fast_path(scratch, a, b));
            }
            let runs = a.run_count() + b.run_count();
            if runs > PACKED_RUNS_PER_WORD * words_for(a.width()) {
                Ok(packed_kernel(scratch, a, b))
            } else {
                Ok(rle_kernel(scratch, a, b))
            }
        }
    }
}

/// Shared stats skeleton for the non-systolic kernels: they model no cells,
/// swaps or shifts — only input/output sizes and an iteration count.
fn host_stats(a: &RleRow, b: &RleRow, iterations: u64, output_runs: usize) -> ArrayStats {
    ArrayStats {
        iterations,
        k1: a.run_count(),
        k2: b.run_count(),
        output_runs,
        ..ArrayStats::default()
    }
}

fn fast_path(
    scratch: &mut KernelScratch,
    a: &RleRow,
    b: &RleRow,
) -> (RleRow, ArrayStats, KernelChoice) {
    let stats = host_stats(a, b, 0, scratch.out.run_count());
    (scratch.out.clone(), stats, KernelChoice::FastPath)
}

fn rle_kernel(
    scratch: &mut KernelScratch,
    a: &RleRow,
    b: &RleRow,
) -> (RleRow, ArrayStats, KernelChoice) {
    let op = rle::ops::xor_into(a, b, &mut scratch.out);
    let stats = host_stats(a, b, op.iterations, scratch.out.run_count());
    (scratch.out.clone(), stats, KernelChoice::Rle)
}

/// The packed kernel: run-cancellation with a SIMD prefix scan.
///
/// XOR is symmetric difference, so a run that appears byte-identically in
/// both rows contributes nothing — it would be toggled twice. The scan
/// walks both sorted run lists, cancelling common prefixes at vector
/// width ([`common_prefix_runs`]); each leftover run is toggled into the
/// zeroed dense scratch with [`BitRow::toggle_range`]. Toggling is exact
/// because each side's runs are disjoint within that side (the `RleRow`
/// invariant), so a pixel is flipped once per side that covers it —
/// twice (back to 0) exactly where both rows agree. The scratch is then
/// re-encoded into canonical runs.
///
/// On near-identical dense rows (the continuous-inspection workload) this
/// replaces two full decodes — millions of branchy `set_range` calls per
/// image — with a memcmp-speed scan plus a handful of toggles around the
/// actual defects.
fn packed_kernel(
    scratch: &mut KernelScratch,
    a: &RleRow,
    b: &RleRow,
) -> (RleRow, ArrayStats, KernelChoice) {
    scratch.dense.reset(a.width());
    let (ar, br) = (a.runs(), b.runs());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ar.len() || j < br.len() {
        let p = common_prefix_runs(scratch.simd, &ar[i..], &br[j..]);
        i += p;
        j += p;
        // After cancellation either one list is exhausted or the heads
        // differ; toggle the earlier-starting head and rescan (error sites
        // desynchronise the lists only locally — absolute positions mean
        // the tails match again, which the next prefix scan exploits).
        let take_a = match (ar.get(i), br.get(j)) {
            (Some(ra), Some(rb)) => ra.start() <= rb.start(),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let run = if take_a {
            let r = ar[i];
            i += 1;
            r
        } else {
            let r = br[j];
            j += 1;
            r
        };
        scratch.dense.toggle_range(run.start(), run.end());
    }
    convert::encode_row_into(&scratch.dense, &mut scratch.out);
    // One "iteration" per word of the dense scratch: the packed kernel's
    // fixed re-encode cost, directly comparable against the merge's
    // k1 + k2 (and, via the Auto crossover, always below it).
    let stats = host_stats(a, b, words_for(a.width()) as u64, scratch.out.run_count());
    (scratch.out.clone(), stats, KernelChoice::Packed)
}

fn systolic_kernel(
    scratch: &mut KernelScratch,
    a: &RleRow,
    b: &RleRow,
) -> Result<(RleRow, ArrayStats, KernelChoice), SystolicError> {
    let machine = match scratch.array.as_mut() {
        Some(machine) => {
            machine.reload(a, b)?;
            machine
        }
        None => scratch.array.insert(SystolicArray::load(a, b)?),
    };
    machine.run()?;
    Ok((machine.extract()?, *machine.stats(), KernelChoice::Systolic))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rle::ops::xor;

    fn row(width: u32, pairs: &[(u32, u32)]) -> RleRow {
        RleRow::from_pairs(width, pairs).unwrap()
    }

    fn dense_row(width: u32) -> RleRow {
        // Alternating single-pixel runs: the worst case for run counts.
        let pairs: Vec<(u32, u32)> = (0..width).step_by(2).map(|p| (p, 1)).collect();
        row(width, &pairs)
    }

    #[test]
    fn all_kernels_agree_with_reference() {
        let cases = [
            (row(130, &[(0, 5), (70, 10)]), row(130, &[(3, 5), (64, 30)])),
            (dense_row(200), row(200, &[(0, 200)])),
            (row(65, &[(64, 1)]), row(65, &[(0, 1)])),
        ];
        let mut scratch = KernelScratch::new();
        for (a, b) in &cases {
            let expected = xor(a, b);
            for kernel in [Kernel::Auto, Kernel::Rle, Kernel::Packed, Kernel::Systolic] {
                let (got, stats, _) = diff_row(kernel, &mut scratch, a, b).unwrap();
                assert_eq!(got, expected, "{kernel:?}: {a:?} ^ {b:?}");
                assert_eq!(stats.k1, a.run_count());
                assert_eq!(stats.k2, b.run_count());
            }
        }
    }

    #[test]
    fn auto_fast_paths_trivial_rows() {
        let mut scratch = KernelScratch::new();
        let a = row(100, &[(5, 10)]);
        let empty = RleRow::new(100);

        let (d, stats, choice) = diff_row(Kernel::Auto, &mut scratch, &a, &a.clone()).unwrap();
        assert!(d.is_empty());
        assert_eq!((stats.iterations, choice), (0, KernelChoice::FastPath));

        let (d, _, choice) = diff_row(Kernel::Auto, &mut scratch, &a, &empty).unwrap();
        assert_eq!((d, choice), (a.clone(), KernelChoice::FastPath));
        let (d, _, choice) = diff_row(Kernel::Auto, &mut scratch, &empty, &a).unwrap();
        assert_eq!((d, choice), (a, KernelChoice::FastPath));
    }

    #[test]
    fn auto_switches_kernels_at_the_density_crossover() {
        let mut scratch = KernelScratch::new();
        // 256 px = 4 words; threshold is 8 total runs.
        let sparse = row(256, &[(0, 3), (50, 3)]);
        let sparse_b = row(256, &[(10, 3), (80, 3)]);
        let (_, _, choice) = diff_row(Kernel::Auto, &mut scratch, &sparse, &sparse_b).unwrap();
        assert_eq!(choice, KernelChoice::Rle);

        let dense_a = dense_row(256);
        let dense_b = row(256, &[(1, 254)]);
        let (_, stats, choice) = diff_row(Kernel::Auto, &mut scratch, &dense_a, &dense_b).unwrap();
        assert_eq!(choice, KernelChoice::Packed);
        assert!(
            stats.within_theorem1(),
            "auto-chosen packed stays within the k1+k2 budget"
        );
    }

    #[test]
    fn width_mismatch_is_an_error_not_a_panic() {
        let mut scratch = KernelScratch::new();
        let a = RleRow::new(10);
        let b = RleRow::new(12);
        for kernel in [Kernel::Auto, Kernel::Rle, Kernel::Packed, Kernel::Systolic] {
            assert_eq!(
                diff_row(kernel, &mut scratch, &a, &b),
                Err(SystolicError::WidthMismatch {
                    left: 10,
                    right: 12
                }),
                "{kernel:?}"
            );
        }
    }

    #[test]
    fn kernel_parses_from_str() {
        assert_eq!("auto".parse::<Kernel>().unwrap(), Kernel::Auto);
        assert_eq!("rle".parse::<Kernel>().unwrap(), Kernel::Rle);
        assert_eq!("packed".parse::<Kernel>().unwrap(), Kernel::Packed);
        assert_eq!("systolic".parse::<Kernel>().unwrap(), Kernel::Systolic);
        assert!("warp".parse::<Kernel>().is_err());
        assert_eq!(Kernel::default(), Kernel::Auto);
    }

    #[test]
    fn zero_width_rows() {
        let mut scratch = KernelScratch::new();
        let empty = RleRow::new(0);
        for kernel in [Kernel::Auto, Kernel::Rle, Kernel::Packed, Kernel::Systolic] {
            let (d, _, _) = diff_row(kernel, &mut scratch, &empty, &empty.clone()).unwrap();
            assert_eq!(d.width(), 0);
            assert!(d.is_empty());
        }
    }
}
