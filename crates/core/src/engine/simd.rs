//! Runtime-dispatched SIMD primitives for the packed diff kernel.
//!
//! The hot loop of the run-cancellation kernel (see
//! [`crate::engine::kernel`]) is a longest-common-prefix scan over two
//! sorted run lists: on real scan data the overwhelming majority of runs
//! are identical between the two frames, so the kernel's throughput is set
//! by how fast it can confirm equality. A [`rle::Run`] is exactly 8 bytes
//! (`start: u32`, `len: u32` — the rle crate asserts the layout), so the
//! scan is a memcmp-with-position: AVX2 compares four runs per iteration,
//! SSE2 two, and the portable fallback one run per 8-byte comparison.
//!
//! Dispatch is decided once per scratch (not per row): `core::arch`
//! runtime detection picks the widest level the CPU supports, the
//! `SYSTOLIC_SIMD` environment variable or
//! `DiffPipelineConfig::simd` can force a *narrower* level (for testing
//! the fallbacks), and non-x86 targets always resolve to
//! [`SimdLevel::Scalar`]. No crates.io dependency: everything is
//! `core::arch` + `is_x86_feature_detected!`.
//!
//! This is the only module in the crate allowed to use `unsafe` (the
//! crate-level lint is `deny`, overridden here): every unsafe function
//! carries an explicit safety contract, and the only operations are
//! unaligned loads within bounds established by slice lengths.
#![allow(unsafe_code)]

use rle::Run;
use std::sync::OnceLock;

/// Vector width the common-prefix scan runs at. Ordered narrow → wide so
/// `min`-clamping an override against the detected level is meaningful.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Portable path: one 8-byte run comparison per iteration.
    #[default]
    Scalar,
    /// SSE2 16-byte blocks (two runs per compare). Baseline on x86_64.
    Sse2,
    /// AVX2 32-byte blocks (four runs per compare).
    Avx2,
}

impl SimdLevel {
    /// The widest level this CPU can execute, via runtime feature
    /// detection. Non-x86_64 targets report [`SimdLevel::Scalar`].
    #[must_use]
    pub fn detect() -> SimdLevel {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                return SimdLevel::Sse2;
            }
        }
        SimdLevel::Scalar
    }

    /// Parses an override string: `auto` defers to detection, anything
    /// else names a level. Unknown values are an error (callers decide
    /// whether to surface or ignore it).
    pub fn parse_override(s: &str) -> Result<Option<SimdLevel>, String> {
        match s {
            "auto" => Ok(None),
            "scalar" => Ok(Some(SimdLevel::Scalar)),
            "sse2" => Ok(Some(SimdLevel::Sse2)),
            "avx2" => Ok(Some(SimdLevel::Avx2)),
            other => Err(format!(
                "unknown SIMD level {other:?} (expected auto, scalar, sse2 or avx2)"
            )),
        }
    }

    /// Resolves an optional override against the detected level. An
    /// override can only *narrow* the level — requesting AVX2 on a CPU
    /// without it clamps to what the hardware can run, so a forced level
    /// is always executable.
    #[must_use]
    pub fn resolve(requested: Option<SimdLevel>) -> SimdLevel {
        let detected = Self::detect();
        match requested {
            Some(level) => level.min(detected),
            None => detected,
        }
    }

    /// The process-wide default: the `SYSTOLIC_SIMD` environment variable
    /// (read once) resolved against detection. Malformed values fall back
    /// to plain detection rather than erroring — the env var is a
    /// diagnostic knob, not configuration.
    #[must_use]
    pub fn default_level() -> SimdLevel {
        static DEFAULT: OnceLock<SimdLevel> = OnceLock::new();
        *DEFAULT.get_or_init(|| {
            let requested = std::env::var("SYSTOLIC_SIMD")
                .ok()
                .and_then(|s| SimdLevel::parse_override(&s).ok().flatten());
            SimdLevel::resolve(requested)
        })
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        })
    }
}

/// Length (in runs) of the longest common prefix of `a` and `b`, compared
/// bytewise at the given vector width. Two runs are equal iff their 8-byte
/// representations are (same `start`, same `len`), so the byte compare is
/// exact, and the first differing byte always lands inside the first
/// differing run.
#[must_use]
pub fn common_prefix_runs(level: SimdLevel, a: &[Run], b: &[Run]) -> usize {
    let n = a.len().min(b.len());
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: both pointers address at least `n * 8` valid bytes
        // (`Run` is 8 bytes with no padding); the intrinsics used are
        // unaligned loads, and dispatch guarantees the feature is present
        // (`resolve` clamps every level to what detection reported).
        match level {
            SimdLevel::Avx2 => unsafe {
                return prefix_avx2(a.as_ptr().cast(), b.as_ptr().cast(), n);
            },
            SimdLevel::Sse2 => unsafe {
                return prefix_sse2(a.as_ptr().cast(), b.as_ptr().cast(), n);
            },
            SimdLevel::Scalar => {}
        }
    }
    let _ = level;
    prefix_scalar(a, b, n)
}

/// Portable fallback: per-run equality (one 8-byte compare each).
fn prefix_scalar(a: &[Run], b: &[Run], n: usize) -> usize {
    for i in 0..n {
        if a[i] != b[i] {
            return i;
        }
    }
    n
}

/// AVX2: compare 32-byte blocks (four runs); on a mismatch the movemask's
/// first zero bit names the differing byte, hence the differing run.
///
/// # Safety
///
/// `a` and `b` must each point at `n * 8` readable bytes, and the CPU must
/// support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn prefix_avx2(a: *const u8, b: *const u8, n: usize) -> usize {
    use std::arch::x86_64::{_mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_movemask_epi8};
    let bytes = n * 8;
    let mut i = 0usize;
    while i + 32 <= bytes {
        let va = _mm256_loadu_si256(a.add(i).cast());
        let vb = _mm256_loadu_si256(b.add(i).cast());
        let eq = _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) as u32;
        if eq != u32::MAX {
            return (i + (!eq).trailing_zeros() as usize) / 8;
        }
        i += 32;
    }
    i / 8 + prefix_tail(a.add(i), b.add(i), (bytes - i) / 8)
}

/// SSE2: compare 16-byte blocks (two runs).
///
/// # Safety
///
/// `a` and `b` must each point at `n * 8` readable bytes, and the CPU must
/// support SSE2 (always true on x86_64).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn prefix_sse2(a: *const u8, b: *const u8, n: usize) -> usize {
    use std::arch::x86_64::{_mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8};
    let bytes = n * 8;
    let mut i = 0usize;
    while i + 16 <= bytes {
        let va = _mm_loadu_si128(a.add(i).cast());
        let vb = _mm_loadu_si128(b.add(i).cast());
        let eq = _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) as u32;
        if eq != 0xFFFF {
            return (i + (!eq).trailing_zeros() as usize) / 8;
        }
        i += 16;
    }
    i / 8 + prefix_tail(a.add(i), b.add(i), (bytes - i) / 8)
}

/// Tail of the vector loops: whole-run unaligned u64 compares.
///
/// # Safety
///
/// `a` and `b` must each point at `runs * 8` readable bytes.
#[cfg(target_arch = "x86_64")]
unsafe fn prefix_tail(a: *const u8, b: *const u8, runs: usize) -> usize {
    for i in 0..runs {
        let wa = a.add(i * 8).cast::<u64>().read_unaligned();
        let wb = b.add(i * 8).cast::<u64>().read_unaligned();
        if wa != wb {
            return i;
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs(pairs: &[(u32, u32)]) -> Vec<Run> {
        pairs.iter().map(|&(s, l)| Run::new(s, l)).collect()
    }

    /// Levels that can actually execute on the test machine.
    fn levels() -> Vec<SimdLevel> {
        [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
            .into_iter()
            .filter(|&l| l <= SimdLevel::detect())
            .collect()
    }

    #[test]
    fn prefix_agrees_across_levels_and_offsets() {
        // Mismatches at every position relative to the 4-run AVX2 block:
        // start of a block, inside, at the tail, and no mismatch at all.
        let base: Vec<Run> = (0..23).map(|i| Run::new(i * 10, (i % 4) + 1)).collect();
        for mismatch_at in 0..=base.len() {
            let mut other = base.clone();
            if mismatch_at < base.len() {
                other[mismatch_at] = Run::new(base[mismatch_at].start(), 9);
            }
            for level in levels() {
                let got = common_prefix_runs(level, &base, &other);
                assert_eq!(got, mismatch_at, "{level:?}, mismatch at {mismatch_at}");
                // Symmetric.
                assert_eq!(common_prefix_runs(level, &other, &base), mismatch_at);
            }
        }
    }

    #[test]
    fn prefix_handles_unequal_lengths_and_empties() {
        let long = runs(&[(0, 1), (5, 2), (9, 3), (20, 1), (30, 2)]);
        let short = runs(&[(0, 1), (5, 2)]);
        for level in levels() {
            assert_eq!(common_prefix_runs(level, &long, &short), 2, "{level:?}");
            assert_eq!(common_prefix_runs(level, &short, &long), 2, "{level:?}");
            assert_eq!(common_prefix_runs(level, &long, &[]), 0, "{level:?}");
            assert_eq!(common_prefix_runs(level, &[], &[]), 0, "{level:?}");
        }
    }

    #[test]
    fn prefix_at_misaligned_list_offsets() {
        // Stealing a suffix slice (`&runs[i..]`) shifts the byte address by
        // 8*i, exercising genuinely unaligned vector loads.
        let a: Vec<Run> = (0..40).map(|i| Run::new(i * 7, 3)).collect();
        for off_a in 0..5 {
            for off_b in 0..5 {
                let (sa, sb) = (&a[off_a..], &a[off_b..]);
                let expected = prefix_scalar(sa, sb, sa.len().min(sb.len()));
                for level in levels() {
                    assert_eq!(
                        common_prefix_runs(level, sa, sb),
                        expected,
                        "{level:?} offsets {off_a}/{off_b}"
                    );
                }
            }
        }
    }

    #[test]
    fn override_parsing_and_clamping() {
        assert_eq!(SimdLevel::parse_override("auto"), Ok(None));
        assert_eq!(
            SimdLevel::parse_override("scalar"),
            Ok(Some(SimdLevel::Scalar))
        );
        assert_eq!(SimdLevel::parse_override("sse2"), Ok(Some(SimdLevel::Sse2)));
        assert_eq!(SimdLevel::parse_override("avx2"), Ok(Some(SimdLevel::Avx2)));
        assert!(SimdLevel::parse_override("neon").is_err());
        // Overrides can only narrow: Scalar always wins against detection,
        // and a requested level never exceeds what the CPU reports.
        assert_eq!(
            SimdLevel::resolve(Some(SimdLevel::Scalar)),
            SimdLevel::Scalar
        );
        assert!(SimdLevel::resolve(Some(SimdLevel::Avx2)) <= SimdLevel::detect());
        assert_eq!(SimdLevel::resolve(None), SimdLevel::detect());
    }
}
