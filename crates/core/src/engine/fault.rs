//! Deterministic fault injection for the [`crate::engine::executor`]
//! supervisor (compiled only with the `fault-injection` feature).
//!
//! A [`FaultPlan`] maps **ticket ids** (the submission sequence numbers
//! carried by [`crate::engine::pipeline::Ticket`]; for a fresh pipeline's
//! first `diff_images` call, ticket `n` is row `n`) to faults a worker
//! triggers the moment it picks that row up. Faults are keyed by the
//! ticket, not the worker, so a plan reproduces the same failure
//! regardless of which thread wins the race for the row — every
//! failure-handling path in the supervisor has a deterministic test.
//!
//! Tickets are allocated executor-wide, so on a shared
//! [`crate::engine::executor::DiffExecutor`] a ticket id also selects a
//! *job*: submit jobs in a known order and a plan can plant a fault
//! inside one job's ticket range while its neighbours run clean — the
//! job-granularity drills in `tests/pipeline_faults.rs` use exactly this
//! to prove recovery is isolated to the owning job.
//!
//! Each registered fault carries a trigger budget: a fault armed with
//! [`FaultPlan::panic_on_row`] fires exactly once (the retry of that row
//! runs clean), while [`FaultPlan::panic_on_row_times`] can outlast the
//! supervisor's retry budget to force a
//! [`crate::error::SystolicError::RowFailed`].
//!
//! This module is test infrastructure: it is feature-gated so production
//! builds carry no injection hooks, and the plan is deliberately tiny —
//! the four faults below cover every recovery path the supervisor has
//! (caught panic → retry, dead thread → respawn + re-enqueue, stall →
//! deadline, poisoned lock → poison-tolerant recovery).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// What a worker does when it draws a planned fault.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Panic while processing the row. The worker's `catch_unwind` catches
    /// it, discards the (possibly corrupt) array and the supervisor retries
    /// the row.
    Panic,
    /// Sleep for the given duration while the row counts as in-flight,
    /// emulating a wedged worker; used to exercise deadline handling.
    Stall(Duration),
    /// Exit the worker thread with the row still checked out, emulating a
    /// crashed thread; the supervisor must respawn the worker and re-enqueue
    /// the orphaned row.
    Die,
    /// Panic while holding the shared state lock (inside an inner
    /// `catch_unwind`, so the worker itself survives), poisoning the mutex;
    /// exercises the poison-tolerant lock handling.
    PoisonLock,
}

/// A deterministic schedule of worker faults, shared between the test and
/// the pool via cheap clones.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    // ticket -> (fault, remaining trigger count)
    inner: Arc<Mutex<HashMap<u64, (Fault, u32)>>>,
}

impl FaultPlan {
    /// An empty plan (no faults fire).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn arm(self, row: u64, fault: Fault, times: u32) -> Self {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(row, (fault, times));
        self
    }

    /// Arms a one-shot panic on the given ticket id.
    #[must_use]
    pub fn panic_on_row(self, row: u64) -> Self {
        self.arm(row, Fault::Panic, 1)
    }

    /// Arms a panic that fires on the first `times` attempts of the ticket
    /// (use `times > retry_limit` to exhaust the supervisor's patience).
    #[must_use]
    pub fn panic_on_row_times(self, row: u64, times: u32) -> Self {
        self.arm(row, Fault::Panic, times)
    }

    /// Arms a one-shot stall of the given duration on the ticket.
    #[must_use]
    pub fn stall_on_row(self, row: u64, dur: Duration) -> Self {
        self.arm(row, Fault::Stall(dur), 1)
    }

    /// Arms a one-shot worker death on the ticket.
    #[must_use]
    pub fn die_on_row(self, row: u64) -> Self {
        self.arm(row, Fault::Die, 1)
    }

    /// Arms a one-shot lock poisoning on the ticket.
    #[must_use]
    pub fn poison_on_row(self, row: u64) -> Self {
        self.arm(row, Fault::PoisonLock, 1)
    }

    /// Draws the fault (if any) armed for this ticket, consuming one
    /// trigger. Called by workers as they pick a job up.
    pub(crate) fn take(&self, row: u64) -> Option<Fault> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let (fault, remaining) = inner.get_mut(&row)?;
        debug_assert!(*remaining > 0);
        let drawn = fault.clone();
        *remaining -= 1;
        if *remaining == 0 {
            inner.remove(&row);
        }
        Some(drawn)
    }

    /// Faults still armed (registered triggers not yet drawn).
    #[must_use]
    pub fn armed(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_by_default() {
        let plan = FaultPlan::new().panic_on_row(3);
        assert_eq!(plan.armed(), 1);
        assert!(matches!(plan.take(3), Some(Fault::Panic)));
        assert!(plan.take(3).is_none(), "one-shot fault must not re-fire");
        assert_eq!(plan.armed(), 0);
        assert!(plan.take(4).is_none(), "unarmed rows draw nothing");
    }

    #[test]
    fn multi_shot_faults_count_down() {
        let plan = FaultPlan::new().panic_on_row_times(0, 3);
        for _ in 0..3 {
            assert!(matches!(plan.take(0), Some(Fault::Panic)));
        }
        assert!(plan.take(0).is_none());
    }

    #[test]
    fn clones_share_the_schedule() {
        let plan = FaultPlan::new().die_on_row(1);
        let alias = plan.clone();
        assert!(matches!(alias.take(1), Some(Fault::Die)));
        assert!(plan.take(1).is_none(), "drawn through the clone");
    }
}
