//! Barrier-synchronised multi-threaded execution of the systolic machine.
//!
//! Hardware updates all cells at once; this engine approximates that by
//! giving each worker a contiguous chunk of cells. Each iteration runs in
//! three barrier-separated phases:
//!
//! 1. **compute** — every worker applies steps 1–2 to its own cells
//!    (disjoint `&mut` chunks: no sharing), publishes its chunk's last
//!    `RegBig` value as the carry into the next chunk, and adds its occupied
//!    `RegBig` count to a shared atomic;
//! 2. **shift** — after the barrier, every worker shifts its chunk right by
//!    one, pulling the carry published by its left neighbour; the global
//!    occupied count decides termination (all workers read the same value);
//! 3. **reset** — a third barrier lets the leader zero the shared counter
//!    before anyone can contribute to the next iteration.
//!
//! The engine produces *bit-identical* register evolution, iteration counts
//! and statistics to the sequential engine — asserted by tests — because
//! the machine itself is deterministic and phase order is preserved.

use crate::array::SystolicArray;
use crate::cell::{step1_order, step2_xor, OrderEvent, XorEvent};
use crate::error::SystolicError;
use crate::stats::ArrayStats;
use parking_lot::Mutex;
use rle::Run;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Cells below which a chunk is not worth a dedicated thread; tiny arrays
/// fall back to the sequential engine.
const MIN_CELLS_PER_THREAD: usize = 512;

/// Per-worker statistics, merged into the array's [`ArrayStats`] at the end.
#[derive(Default, Clone, Copy)]
struct LocalStats {
    swaps: u64,
    moves: u64,
    disjoint_xors: u64,
    combines: u64,
    annihilations: u64,
    run_shifts: u64,
    busy_cell_iterations: u64,
}

/// Runs the machine to termination using up to `threads` worker threads.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn run_parallel(array: &mut SystolicArray, threads: usize) -> Result<(), SystolicError> {
    assert!(threads > 0, "need at least one thread");
    let n = array.cells();
    let workers = threads.min(n.div_ceil(MIN_CELLS_PER_THREAD)).max(1);
    if workers == 1 || array.is_done() {
        // Tiny arrays, and machines that are already terminated (e.g. an
        // empty second image — nothing on the RegBig chain): the sequential
        // engine's loop is a no-op in the latter case and finalises
        // `output_runs` itself, so both paths share one write site.
        return array.run();
    }

    let bound = (array.stats().k1 + array.stats().k2) as u64;
    let chunk = n.div_ceil(workers);
    // chunks_mut may produce fewer chunks than `workers` when the division
    // is uneven; the barrier must match the number of threads that exist.
    let num_chunks = n.div_ceil(chunk);
    let barrier = Barrier::new(num_chunks);
    let occupied_total = AtomicU64::new(0);
    // carries[t] = RegBig leaving chunk t to the right this iteration.
    let carries: Vec<Mutex<Option<Run>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<SystolicError>> = Mutex::new(None);

    let (small, big) = array.registers_mut();
    let small_chunks: Vec<&mut [Option<Run>]> = small.chunks_mut(chunk).collect();
    let big_chunks: Vec<&mut [Option<Run>]> = big.chunks_mut(chunk).collect();
    debug_assert_eq!(num_chunks, small_chunks.len());

    let mut iterations = 0u64;
    let mut locals: Vec<LocalStats> = Vec::new();

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = small_chunks
            .into_iter()
            .zip(big_chunks)
            .enumerate()
            .map(|(t, (small_chunk, big_chunk))| {
                let barrier = &barrier;
                let occupied_total = &occupied_total;
                let carries = &carries;
                let failure = &failure;
                scope.spawn(move |_| {
                    worker(
                        t,
                        num_chunks,
                        n,
                        bound,
                        small_chunk,
                        big_chunk,
                        barrier,
                        occupied_total,
                        carries,
                        failure,
                    )
                })
            })
            .collect();
        for handle in handles {
            let (iters, local) = handle.join().expect("systolic worker panicked");
            iterations = iters; // every worker reports the same count
            locals.push(local);
        }
    })
    .expect("systolic scope panicked");

    if let Some(err) = failure.into_inner() {
        return Err(err);
    }

    // Merge audit: on this path the array's own phase methods never ran, so
    // every per-iteration counter below is accumulated by workers *only*;
    // nothing is counted by both a worker and the array. `output_runs` is a
    // final snapshot (not a counter) and is written exactly once, here.
    let stats = array.stats_mut();
    stats.iterations += iterations;
    for l in &locals {
        stats.swaps += l.swaps;
        stats.moves += l.moves;
        stats.disjoint_xors += l.disjoint_xors;
        stats.combines += l.combines;
        stats.annihilations += l.annihilations;
        stats.run_shifts += l.run_shifts;
        stats.busy_cell_iterations += l.busy_cell_iterations;
    }
    array.set_occupied_big(0);
    let output_runs = array.views().filter(|c| c.small.is_some()).count();
    array.stats_mut().output_runs = output_runs;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn worker(
    t: usize,
    num_chunks: usize,
    total_cells: usize,
    bound: u64,
    small: &mut [Option<Run>],
    big: &mut [Option<Run>],
    barrier: &Barrier,
    occupied_total: &AtomicU64,
    carries: &[Mutex<Option<Run>>],
    failure: &Mutex<Option<SystolicError>>,
) -> (u64, LocalStats) {
    let mut local = LocalStats::default();
    let mut iterations = 0u64;
    let last_chunk = t + 1 == num_chunks;

    loop {
        // --- phase 1: steps 1 and 2 on our own cells -------------------
        let mut occupied = 0u64;
        for (s, b) in small.iter_mut().zip(big.iter_mut()) {
            match step1_order(s, b) {
                OrderEvent::Swapped => local.swaps += 1,
                OrderEvent::Moved => local.moves += 1,
                OrderEvent::None => {}
            }
            match step2_xor(s, b) {
                XorEvent::Idle => {}
                XorEvent::Disjoint => local.disjoint_xors += 1,
                XorEvent::Combined => local.combines += 1,
                XorEvent::Annihilated => local.annihilations += 1,
            }
            if b.is_some() {
                occupied += 1;
            }
            if s.is_some() || b.is_some() {
                local.busy_cell_iterations += 1;
            }
        }
        occupied_total.fetch_add(occupied, Ordering::Relaxed);
        *carries[t].lock() = big.last().copied().flatten();

        barrier.wait();
        iterations += 1; // steps 1–2 of this iteration are now complete

        // --- phase 2: termination / error decision, then shift ---------
        // Every predicate below is evaluated identically by every worker
        // (shared atomics / the published carries / the common iteration
        // count), so all workers break together and the barrier stays
        // balanced.
        let total = occupied_total.load(Ordering::Relaxed);
        if total == 0 {
            break;
        }
        if iterations >= bound {
            failure
                .lock()
                .get_or_insert(SystolicError::IterationBound { bound });
            break;
        }
        if carries[num_chunks - 1].lock().is_some() {
            // The run at the array's end would fall off — Corollary 1.2
            // says this cannot happen at default capacity. (The last chunk
            // may be shorter than the others, so the array's size must be
            // reported from the shared total, not `t * small.len()`.)
            if last_chunk {
                failure
                    .lock()
                    .get_or_insert(SystolicError::Overflow { cells: total_cells });
            }
            break;
        }

        local.run_shifts += occupied;
        let carry_in = if t == 0 { None } else { *carries[t - 1].lock() };
        for i in (1..big.len()).rev() {
            big[i] = big[i - 1];
        }
        big[0] = carry_in;

        barrier.wait();

        // --- phase 3: leader resets the shared counter ------------------
        if t == 0 {
            occupied_total.store(0, Ordering::Relaxed);
        }

        barrier.wait();
    }

    (iterations, local)
}

/// One-call convenience: systolic XOR of two rows on `threads` workers,
/// returning the canonicalized difference and statistics.
pub fn systolic_xor_parallel(
    a: &rle::RleRow,
    b: &rle::RleRow,
    threads: usize,
) -> Result<(rle::RleRow, ArrayStats), SystolicError> {
    let mut array = SystolicArray::load(a, b)?;
    // Invariant checks scan the whole array per iteration and would
    // serialise the run; leave them to the sequential engine.
    array.enable_invariant_checks(false);
    run_parallel(&mut array, threads)?;
    let row = array.extract()?;
    Ok((row, *array.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rle::RleRow;

    /// Random sparse row with roughly `runs` runs.
    fn random_row(rng: &mut StdRng, width: u32, runs: usize) -> RleRow {
        let mut row = RleRow::new(width);
        let mut pos = 0u32;
        for _ in 0..runs {
            let gap = rng.gen_range(1..=6);
            let len = rng.gen_range(1..=5);
            if u64::from(pos) + u64::from(gap) + u64::from(len) >= u64::from(width) {
                break;
            }
            pos += gap;
            row.push_run(Run::new(pos, len)).unwrap();
            pos += len;
        }
        row
    }

    #[test]
    fn small_arrays_fall_back_to_sequential() {
        let a = RleRow::from_pairs(64, &[(0, 4), (10, 4)]).unwrap();
        let b = RleRow::from_pairs(64, &[(2, 4), (20, 4)]).unwrap();
        let (got, stats) = systolic_xor_parallel(&a, &b, 8).unwrap();
        assert_eq!(got, rle::ops::xor(&a, &b));
        assert!(stats.within_theorem1());
    }

    #[test]
    fn parallel_matches_sequential_on_large_inputs() {
        let mut rng = StdRng::seed_from_u64(42);
        // ~2000 runs per side → ~4000 cells → multiple real chunks.
        let width = 40_000;
        let a = random_row(&mut rng, width, 2_000);
        let b = random_row(&mut rng, width, 2_000);
        assert!(a.run_count() > 1500 && b.run_count() > 1500);

        let (seq_row, seq_stats) = crate::array::systolic_xor(&a, &b).unwrap();
        for threads in [2, 3, 4, 7] {
            let (par_row, par_stats) = systolic_xor_parallel(&a, &b, threads).unwrap();
            assert_eq!(par_row, seq_row, "threads={threads}");
            assert_eq!(
                par_stats.iterations, seq_stats.iterations,
                "threads={threads}"
            );
            assert_eq!(par_stats.swaps, seq_stats.swaps, "threads={threads}");
            assert_eq!(par_stats.moves, seq_stats.moves, "threads={threads}");
            assert_eq!(par_stats.combines, seq_stats.combines, "threads={threads}");
            assert_eq!(
                par_stats.annihilations, seq_stats.annihilations,
                "threads={threads}"
            );
            assert_eq!(
                par_stats.run_shifts, seq_stats.run_shifts,
                "threads={threads}"
            );
            assert_eq!(
                par_stats.busy_cell_iterations, seq_stats.busy_cell_iterations,
                "threads={threads}"
            );
            assert_eq!(
                par_stats.output_runs, seq_stats.output_runs,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_matches_on_highly_similar_inputs() {
        // The paper's sweet spot: nearly identical images.
        let mut rng = StdRng::seed_from_u64(7);
        let width = 100_000;
        let a = random_row(&mut rng, width, 5_000);
        let mut b_runs: Vec<Run> = a.runs().to_vec();
        b_runs.remove(1000);
        b_runs.remove(3000);
        let b = RleRow::from_runs(width, b_runs).unwrap();

        let (seq_row, seq_stats) = crate::array::systolic_xor(&a, &b).unwrap();
        let (par_row, par_stats) = systolic_xor_parallel(&a, &b, 4).unwrap();
        assert_eq!(par_row, seq_row);
        assert_eq!(par_stats.iterations, seq_stats.iterations);
        assert_eq!(par_row, rle::ops::xor(&a, &b));
    }

    #[test]
    fn randomized_parallel_cross_check() {
        let mut rng = StdRng::seed_from_u64(0xABCD);
        for case in 0..10 {
            let width = 30_000;
            let a = random_row(&mut rng, width, 1_500);
            let b = random_row(&mut rng, width, 1_500);
            let (got, stats) = systolic_xor_parallel(&a, &b, 3).unwrap();
            assert_eq!(got, rle::ops::xor(&a, &b), "case {case}");
            assert!(stats.within_theorem1(), "case {case}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let a = RleRow::new(8);
        let _ = systolic_xor_parallel(&a, &a.clone(), 0);
    }

    #[test]
    fn empty_inputs() {
        let e = RleRow::new(1024);
        let (row, stats) = systolic_xor_parallel(&e, &e.clone(), 4).unwrap();
        assert!(row.is_empty());
        assert_eq!(stats.iterations, 0);
    }
}
