//! Step engines driving the systolic register file.
//!
//! The machine's semantics live in [`crate::cell`] and
//! [`crate::array::SystolicArray`]; an *engine* decides how the per-cell
//! work of one iteration is executed on the host:
//!
//! * the **sequential engine** ([`run_sequential`]) is
//!   `SystolicArray::run` — one scan per phase;
//! * the **parallel engine** ([`parallel::run_parallel`]) splits the cell
//!   array into contiguous chunks, one worker thread per chunk, with three
//!   barriers per iteration (compute / shift / reset). Results are
//!   bit-identical to the sequential engine, which the test-suite asserts;
//! * the **multi-image executor** ([`executor::DiffExecutor`]) moves the
//!   parallelism up a level: a persistent worker pool schedules whole
//!   images as independent *jobs* — many image pairs in flight at once,
//!   chunks from different jobs interleaved round-robin on the same
//!   work-stealing shards — each worker diffing rows through an adaptive
//!   [`kernel`] (RLE merge vs. packed words vs. the systolic simulation)
//!   on reusable scratch buffers;
//! * the **image pipeline** ([`pipeline::DiffPipeline`]) is the
//!   single-submitter facade over a private executor: one batch (or
//!   streaming session) at a time, with the signature prefilter and
//!   inline-residual shortcuts on the host side.
//!
//! Real systolic hardware updates every cell simultaneously; the parallel
//! engine is therefore the more faithful *execution* model, while the
//! sequential engine is the faithful *semantic* reference. The pipeline
//! models a rack of independent chips fed from one queue.

pub mod executor;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod kernel;
pub mod parallel;
pub mod pipeline;
pub mod simd;

use crate::array::SystolicArray;
use crate::error::SystolicError;

/// Runs the machine to termination on the calling thread. Identical to
/// [`SystolicArray::run`]; provided for symmetry with the parallel engine.
pub fn run_sequential(array: &mut SystolicArray) -> Result<(), SystolicError> {
    array.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rle::RleRow;

    #[test]
    fn sequential_engine_is_array_run() {
        let a = RleRow::from_pairs(64, &[(0, 4), (10, 4)]).unwrap();
        let b = RleRow::from_pairs(64, &[(2, 4), (20, 4)]).unwrap();
        let mut m1 = SystolicArray::load(&a, &b).unwrap();
        run_sequential(&mut m1).unwrap();
        let mut m2 = SystolicArray::load(&a, &b).unwrap();
        m2.run().unwrap();
        assert_eq!(m1.extract().unwrap(), m2.extract().unwrap());
        assert_eq!(m1.stats(), m2.stats());
    }
}
