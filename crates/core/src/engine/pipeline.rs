//! Image-level diff pipeline: a persistent worker pool over whole images.
//!
//! [`crate::engine::parallel`] parallelises *within* one row by splitting
//! the cell array across threads, paying thread-spawn and three barriers
//! per row. For whole images the natural unit of parallelism is the row
//! pair itself — rows are independent, so a pool of workers can each
//! simulate its own array, exactly like a rack of systolic chips scanning
//! different board regions.
//!
//! [`DiffPipeline`] spawns its workers **once** and reuses them across
//! calls. Each worker owns one [`SystolicArray`] that is `reload`ed per
//! row, so steady-state row processing allocates nothing. Two front-ends
//! are provided:
//!
//! * [`DiffPipeline::diff_images`] — batch: submit every row pair of an
//!   image, collect and reassemble in order, and report aggregated
//!   [`PipelineStats`];
//! * [`DiffPipeline::submit`] / [`DiffPipeline::collect`] — streaming: feed
//!   row pairs as they arrive (e.g. from a scanner head) and drain results
//!   as they complete, matching each to its [`Ticket`].
//!
//! Results are bit-identical to the sequential reference ([`crate::image::
//! xor_image`]) because every row still runs the unmodified machine; only
//! the scheduling changes. The test-suite asserts this across all three
//! engines.

use crate::array::SystolicArray;
use crate::error::SystolicError;
use crate::image::check_dims;
use crate::stats::{ArrayStats, PipelineStats};
use rle::{RleImage, RleRow};
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Identifies one submitted row pair; returned by [`DiffPipeline::submit`]
/// and echoed by [`DiffPipeline::collect`] so streaming callers can match
/// results (which complete out of order) to submissions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

impl Ticket {
    /// The submission sequence number (0 for the first row ever submitted).
    #[must_use]
    pub fn id(self) -> u64 {
        self.0
    }
}

/// One completed row diff, as handed back by [`DiffPipeline::collect`].
#[derive(Debug)]
pub struct RowOutcome {
    /// Which submission this result answers.
    pub ticket: Ticket,
    /// Index of the pool worker that processed the row (for utilization
    /// accounting; see [`PipelineStats::effective_workers`]).
    pub worker: usize,
    /// The diff row and its per-row machine statistics, or the machine
    /// error for this row pair.
    pub result: Result<(RleRow, ArrayStats), SystolicError>,
}

struct Job {
    ticket: u64,
    a: RleRow,
    b: RleRow,
}

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
}

/// A persistent pool of row-diff workers (see the module docs).
///
/// Dropping the pipeline drains the remaining queue and joins every worker.
pub struct DiffPipeline {
    shared: Arc<Shared>,
    results: Receiver<RowOutcome>,
    handles: Vec<JoinHandle<()>>,
    next_ticket: u64,
    in_flight: usize,
}

impl std::fmt::Debug for DiffPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiffPipeline")
            .field("workers", &self.handles.len())
            .field("in_flight", &self.in_flight)
            .finish()
    }
}

impl DiffPipeline {
    /// Spawns a pool of `threads` persistent workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let (tx, results) = std::sync::mpsc::channel();
        let handles = (0..threads)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::spawn(move || worker_loop(&shared, &tx, worker))
            })
            .collect();
        Self {
            shared,
            results,
            handles,
            next_ticket: 0,
            in_flight: 0,
        }
    }

    /// Number of workers in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Rows submitted but not yet collected.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Enqueues one row pair for differencing; returns the [`Ticket`] its
    /// [`RowOutcome`] will carry. Never blocks.
    pub fn submit(&mut self, a: RleRow, b: RleRow) -> Ticket {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        {
            let mut state = self.shared.state.lock().expect("pipeline state poisoned");
            state.queue.push_back(Job { ticket, a, b });
        }
        self.shared.work_ready.notify_one();
        self.in_flight += 1;
        Ticket(ticket)
    }

    /// Blocks for the next completed row, in completion (not submission)
    /// order. Returns `None` when nothing is in flight.
    pub fn collect(&mut self) -> Option<RowOutcome> {
        if self.in_flight == 0 {
            return None;
        }
        let outcome = self
            .results
            .recv()
            .expect("pipeline worker lost with rows in flight");
        self.in_flight -= 1;
        Some(outcome)
    }

    /// Diffs two images row by row across the pool, reassembling the rows
    /// in order and aggregating per-row machine statistics.
    ///
    /// Bit-identical to [`crate::image::xor_image`]; only host wall-clock
    /// changes. If any row fails, the remaining rows are still drained and
    /// the first error is returned.
    ///
    /// # Panics
    ///
    /// Panics if streaming submissions are still in flight (collect them
    /// first; the batch front-end needs an idle pipeline).
    pub fn diff_images(
        &mut self,
        a: &RleImage,
        b: &RleImage,
    ) -> Result<(RleImage, PipelineStats), SystolicError> {
        assert!(self.in_flight == 0, "diff_images needs an idle pipeline");
        check_dims(a, b)?;
        let start = Instant::now();
        let height = a.height();
        let base = self.next_ticket;
        for (ra, rb) in a.rows().iter().zip(b.rows()) {
            self.submit(ra.clone(), rb.clone());
        }

        let mut rows: Vec<Option<RleRow>> = vec![None; height];
        let mut stats = PipelineStats {
            workers: self.handles.len(),
            ..Default::default()
        };
        let mut seen = vec![false; self.handles.len()];
        let mut first_err: Option<SystolicError> = None;
        while let Some(done) = self.collect() {
            match done.result {
                Ok((row, row_stats)) => {
                    stats.totals.absorb(&row_stats);
                    stats.max_row_iterations = stats.max_row_iterations.max(row_stats.iterations);
                    stats.rows += 1;
                    seen[done.worker] = true;
                    rows[usize::try_from(done.ticket.id() - base).expect("ticket fits")] =
                        Some(row);
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        stats.effective_workers = seen.iter().filter(|s| **s).count();
        stats.wall = start.elapsed();
        let rows: Vec<RleRow> = rows
            .into_iter()
            .map(|r| r.expect("every row collected"))
            .collect();
        let image = RleImage::from_rows(a.width(), rows).expect("row widths preserved");
        Ok((image, stats))
    }
}

impl Drop for DiffPipeline {
    fn drop(&mut self) {
        {
            let mut state = match self.shared.state.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A worker: pop jobs until shutdown, reusing one array across all of them.
fn worker_loop(shared: &Shared, results: &Sender<RowOutcome>, worker: usize) {
    // The persistent register buffer: allocated on the first row, then
    // `reload`ed in place for every subsequent one.
    let mut array: Option<SystolicArray> = None;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pipeline state poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .expect("pipeline state poisoned");
            }
        };
        let result = diff_reusing(&mut array, &job.a, &job.b);
        // The receiver disappearing mid-job means the pipeline is being
        // dropped; the queue will hand us the shutdown flag next round.
        let _ = results.send(RowOutcome {
            ticket: Ticket(job.ticket),
            worker,
            result,
        });
    }
}

/// Diffs one row pair on a reusable array (the [`crate::image::RowPipeline`]
/// pattern, per worker).
fn diff_reusing(
    array: &mut Option<SystolicArray>,
    a: &RleRow,
    b: &RleRow,
) -> Result<(RleRow, ArrayStats), SystolicError> {
    let machine = match array.as_mut() {
        Some(machine) => {
            machine.reload(a, b)?;
            machine
        }
        None => array.insert(SystolicArray::load(a, b)?),
    };
    machine.run()?;
    Ok((machine.extract()?, *machine.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::xor_image;

    fn img(art: &str) -> RleImage {
        RleImage::from_ascii(art)
    }

    #[test]
    fn batch_matches_sequential_reference() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        let (seq, seq_stats) = xor_image(&a, &b).unwrap();
        let mut pipeline = DiffPipeline::new(3);
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, seq);
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.totals.iterations, seq_stats.totals.iterations);
        assert_eq!(stats.max_row_iterations, seq_stats.max_row_iterations);
        assert_eq!(stats.workers, 3);
        assert!(stats.effective_workers >= 1 && stats.effective_workers <= 3);
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let a = img("##..##..\n.######.\n");
        let b = img("##.###..\n.#....#.\n");
        let mut pipeline = DiffPipeline::new(2);
        let (first, _) = pipeline.diff_images(&a, &b).unwrap();
        let (second, _) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(first, second);
        let (identity, stats) = pipeline.diff_images(&a, &a.clone()).unwrap();
        assert_eq!(identity.ones(), 0);
        assert_eq!(stats.rows, 2);
    }

    #[test]
    fn streaming_submit_collect_round_trip() {
        let a = img("####....\n..##..##\n#.#.#.#.\n");
        let b = img("###.....\n..##..#.\n.#.#.#.#\n");
        let mut pipeline = DiffPipeline::new(2);
        let tickets: Vec<Ticket> = a
            .rows()
            .iter()
            .zip(b.rows())
            .map(|(ra, rb)| pipeline.submit(ra.clone(), rb.clone()))
            .collect();
        assert_eq!(pipeline.in_flight(), 3);

        let mut rows: Vec<Option<RleRow>> = vec![None; 3];
        while let Some(done) = pipeline.collect() {
            let slot = tickets.iter().position(|t| *t == done.ticket).unwrap();
            rows[slot] = Some(done.result.unwrap().0);
        }
        assert_eq!(pipeline.in_flight(), 0);
        let (expected, _) = xor_image(&a, &b).unwrap();
        for (slot, row) in rows.into_iter().enumerate() {
            assert_eq!(row.unwrap(), expected.rows()[slot]);
        }
    }

    #[test]
    fn row_error_is_reported_and_pipeline_survives() {
        let mut pipeline = DiffPipeline::new(2);
        let good = RleRow::from_pairs(16, &[(0, 4)]).unwrap();
        let bad = RleRow::new(8); // width mismatch against `good`
        pipeline.submit(good.clone(), bad);
        let outcome = pipeline.collect().unwrap();
        assert!(outcome.result.is_err());
        // The pool still works after the failure.
        pipeline.submit(good.clone(), good.clone());
        let ok = pipeline.collect().unwrap();
        assert!(ok.result.unwrap().0.is_empty());
    }

    #[test]
    fn empty_image_batch() {
        let a = RleImage::new(32, 0);
        let mut pipeline = DiffPipeline::new(2);
        let (d, stats) = pipeline.diff_images(&a, &a.clone()).unwrap();
        assert_eq!(d.height(), 0);
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.effective_workers, 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut pipeline = DiffPipeline::new(2);
        let a = RleImage::new(8, 2);
        assert!(pipeline.diff_images(&a, &RleImage::new(9, 2)).is_err());
        assert!(pipeline.diff_images(&a, &RleImage::new(8, 3)).is_err());
        // Failed dimension checks leave nothing in flight.
        assert_eq!(pipeline.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_workers_panics() {
        let _ = DiffPipeline::new(0);
    }
}
