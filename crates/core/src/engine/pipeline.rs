//! Image-level diff pipeline: a supervised, persistent worker pool over
//! whole images.
//!
//! [`crate::engine::parallel`] parallelises *within* one row by splitting
//! the cell array across threads, paying thread-spawn and three barriers
//! per row. For whole images the natural unit of parallelism is the row
//! pair itself — rows are independent, so a pool of workers can each
//! simulate its own array, exactly like a rack of systolic chips scanning
//! different board regions.
//!
//! [`DiffPipeline`] spawns its workers **once** and reuses them across
//! calls. Each worker owns one [`SystolicArray`] that is `reload`ed per
//! row, so steady-state row processing allocates nothing. Two front-ends
//! are provided:
//!
//! * [`DiffPipeline::diff_images`] — batch: submit every row pair of an
//!   image, collect and reassemble in order, and report aggregated
//!   [`PipelineStats`];
//! * [`DiffPipeline::submit`] / [`DiffPipeline::collect`] — streaming: feed
//!   row pairs as they arrive (e.g. from a scanner head) and drain results
//!   as they complete, matching each to its [`Ticket`].
//!
//! # Supervision
//!
//! The pool is built for the continuous-inspection service the paper
//! targets, where one crashed row must not take down the line. Faults are
//! contained at three levels:
//!
//! * **Caught panics.** Each row runs inside `catch_unwind`; a panicking
//!   row discards the worker's (possibly corrupt) array and the row is
//!   re-enqueued, up to [`DiffPipelineConfig::retry_limit`] extra attempts.
//!   A row that keeps crashing surfaces as a structured
//!   [`SystolicError::RowFailed`] instead of a panic.
//! * **Dead workers.** Every job is *checked out* in shared state while a
//!   worker holds it. The collector doubles as a supervisor: it wakes on a
//!   short tick, notices worker threads that exited without being asked to
//!   shut down, respawns them, and re-enqueues the rows they had checked
//!   out onto the surviving workers.
//! * **Stalls and deadlines.** [`DiffPipeline::collect_timeout`] (and the
//!   per-row deadline of [`DiffPipelineConfig::row_deadline`], honoured by
//!   `diff_images`) bounds how long a wedged worker can hold the caller,
//!   returning [`SystolicError::DeadlineExceeded`] instead of hanging.
//!   Dropping the pipeline never deadlocks: workers get
//!   [`DiffPipelineConfig::shutdown_grace`] to exit, after which wedged
//!   threads are detached instead of joined.
//!
//! All lock handling is poison-tolerant (`PoisonError::into_inner`): a
//! panic while a lock is held degrades into a recovered guard, not a
//! cascading crash. Retries, respawns and deadline expiries are counted in
//! [`PipelineStats`] (per batch) and [`DiffPipeline::supervision_counters`]
//! (pipeline lifetime). Every failure path is driven deterministically in
//! tests by [`crate::engine::fault::FaultPlan`] (the `fault-injection`
//! feature).
//!
//! Results are bit-identical to the sequential reference ([`crate::image::
//! xor_image`]) because every row still runs the unmodified machine; only
//! the scheduling (and, after a fault, the re-execution) changes. The
//! test-suite asserts this across all three engines and across injected
//! faults.

use crate::array::SystolicArray;
use crate::error::SystolicError;
use crate::image::check_dims;
use crate::stats::{ArrayStats, PipelineStats};
use rle::{RleImage, RleRow};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(feature = "fault-injection")]
use crate::engine::fault::{Fault, FaultPlan};

/// How often a blocked collector wakes to check worker liveness.
const SUPERVISION_TICK: Duration = Duration::from_millis(20);

/// Identifies one submitted row pair; returned by [`DiffPipeline::submit`]
/// and echoed by [`DiffPipeline::collect`] so streaming callers can match
/// results (which complete out of order) to submissions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

impl Ticket {
    /// The submission sequence number (0 for the first row ever submitted).
    #[must_use]
    pub fn id(self) -> u64 {
        self.0
    }
}

/// One completed row diff, as handed back by [`DiffPipeline::collect`].
#[derive(Debug)]
pub struct RowOutcome {
    /// Which submission this result answers.
    pub ticket: Ticket,
    /// Index of the pool worker that processed the row (for utilization
    /// accounting; see [`PipelineStats::effective_workers`]).
    pub worker: usize,
    /// The diff row and its per-row machine statistics, or the machine
    /// error for this row pair.
    pub result: Result<(RleRow, ArrayStats), SystolicError>,
}

/// Configuration for a supervised [`DiffPipeline`].
#[derive(Clone, Debug)]
pub struct DiffPipelineConfig {
    /// Worker threads in the pool (must be > 0).
    pub threads: usize,
    /// Extra attempts the supervisor grants a row whose worker panicked or
    /// died. A row is attempted at most `retry_limit + 1` times before
    /// surfacing as [`SystolicError::RowFailed`].
    pub retry_limit: u32,
    /// Per-row collection deadline honoured by
    /// [`DiffPipeline::diff_images`]: the longest the batch front-end waits
    /// for the *next* completed row before giving up with
    /// [`SystolicError::DeadlineExceeded`]. `None` (the default) waits
    /// indefinitely (supervision still recovers dead workers; only genuine
    /// stalls can block).
    pub row_deadline: Option<Duration>,
    /// How long [`Drop`] waits for workers to exit before detaching wedged
    /// threads instead of joining them (the never-deadlock guarantee).
    pub shutdown_grace: Duration,
    /// Deterministic fault schedule for tests (see
    /// [`crate::engine::fault`]).
    #[cfg(feature = "fault-injection")]
    pub fault_plan: Option<FaultPlan>,
}

impl Default for DiffPipelineConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            retry_limit: 2,
            row_deadline: None,
            shutdown_grace: Duration::from_millis(500),
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }
}

impl DiffPipelineConfig {
    /// A default configuration over `threads` workers.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Sets the retry budget (see [`Self::retry_limit`]).
    #[must_use]
    pub fn retry_limit(mut self, retries: u32) -> Self {
        self.retry_limit = retries;
        self
    }

    /// Sets the per-row deadline (see [`Self::row_deadline`]).
    #[must_use]
    pub fn row_deadline(mut self, deadline: Duration) -> Self {
        self.row_deadline = Some(deadline);
        self
    }

    /// Sets the shutdown grace period (see [`Self::shutdown_grace`]).
    #[must_use]
    pub fn shutdown_grace(mut self, grace: Duration) -> Self {
        self.shutdown_grace = grace;
        self
    }

    /// Installs a deterministic fault schedule (test builds only).
    #[cfg(feature = "fault-injection")]
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builds the pipeline described by this configuration.
    #[must_use]
    pub fn build(self) -> DiffPipeline {
        DiffPipeline::with_config(self)
    }
}

/// Lifetime totals of the supervisor's interventions (never reset; the
/// per-batch view lives in [`PipelineStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisionCounters {
    /// Rows re-enqueued after a worker panic or death.
    pub retries: u64,
    /// Worker threads replaced after dying unexpectedly.
    pub respawns: u64,
    /// Deadline expiries observed by collectors.
    pub timeouts: u64,
}

#[derive(Clone)]
struct Job {
    ticket: u64,
    attempts: u32,
    a: RleRow,
    b: RleRow,
}

/// A job a worker currently holds, kept in shared state so the supervisor
/// can recover it if the worker dies mid-row.
struct CheckedOut {
    worker: usize,
    job: Job,
}

struct State {
    queue: VecDeque<Job>,
    running: HashMap<u64, CheckedOut>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    retries: AtomicU64,
    respawns: AtomicU64,
    timeouts: AtomicU64,
    #[cfg(feature = "fault-injection")]
    faults: Option<FaultPlan>,
}

impl Shared {
    /// Poison-tolerant state lock: a worker that panicked while holding the
    /// guard leaves consistent-enough data (queue/running entries are only
    /// mutated through single push/insert/remove calls), so supervision
    /// proceeds on the recovered guard instead of propagating the poison.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn counters(&self) -> SupervisionCounters {
        SupervisionCounters {
            retries: self.retries.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// A persistent, supervised pool of row-diff workers (see the module docs).
///
/// Dropping the pipeline drains the remaining queue and joins every worker
/// that exits within [`DiffPipelineConfig::shutdown_grace`]; wedged workers
/// are detached so `Drop` never deadlocks.
pub struct DiffPipeline {
    shared: Arc<Shared>,
    results: Receiver<RowOutcome>,
    /// Kept for two supervisor duties: handing a sender to respawned
    /// workers, and synthesizing [`SystolicError::RowFailed`] outcomes for
    /// rows orphaned past their retry budget. Holding it also means the
    /// channel can never disconnect under a blocked collector.
    result_tx: Sender<RowOutcome>,
    handles: Vec<JoinHandle<()>>,
    config: DiffPipelineConfig,
    next_ticket: u64,
    in_flight: usize,
}

impl std::fmt::Debug for DiffPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiffPipeline")
            .field("workers", &self.handles.len())
            .field("in_flight", &self.in_flight)
            .field("counters", &self.shared.counters())
            .finish()
    }
}

impl DiffPipeline {
    /// Spawns a pool of `threads` persistent workers with the default
    /// supervision settings.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self::with_config(DiffPipelineConfig::new(threads))
    }

    /// Spawns a pool described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.threads == 0`.
    #[must_use]
    pub fn with_config(config: DiffPipelineConfig) -> Self {
        assert!(config.threads > 0, "need at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                running: HashMap::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            retries: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            #[cfg(feature = "fault-injection")]
            faults: config.fault_plan.clone(),
        });
        let (result_tx, results) = std::sync::mpsc::channel();
        let mut pipeline = Self {
            shared,
            results,
            result_tx,
            handles: Vec::new(),
            config,
            next_ticket: 0,
            in_flight: 0,
        };
        pipeline.handles = (0..pipeline.config.threads)
            .map(|worker| pipeline.spawn_worker(worker))
            .collect();
        pipeline
    }

    fn spawn_worker(&self, worker: usize) -> JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        let tx = self.result_tx.clone();
        let retry_limit = self.config.retry_limit;
        std::thread::spawn(move || worker_loop(&shared, &tx, worker, retry_limit))
    }

    /// Number of workers in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Rows submitted but not yet collected.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Lifetime supervision totals (see [`SupervisionCounters`]).
    #[must_use]
    pub fn supervision_counters(&self) -> SupervisionCounters {
        self.shared.counters()
    }

    /// Enqueues one row pair for differencing; returns the [`Ticket`] its
    /// [`RowOutcome`] will carry. Never blocks.
    pub fn submit(&mut self, a: RleRow, b: RleRow) -> Ticket {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        {
            let mut state = self.shared.lock_state();
            state.queue.push_back(Job {
                ticket,
                attempts: 0,
                a,
                b,
            });
        }
        self.shared.work_ready.notify_one();
        self.in_flight += 1;
        Ticket(ticket)
    }

    /// Blocks for the next completed row, in completion (not submission)
    /// order. Returns `None` when nothing is in flight.
    ///
    /// While blocked, the collector supervises the pool: dead workers are
    /// respawned and their checked-out rows re-enqueued, so a crashed
    /// thread delays a row rather than hanging the collector. Only a
    /// genuinely wedged worker can block indefinitely — use
    /// [`Self::collect_timeout`] to bound that.
    pub fn collect(&mut self) -> Option<RowOutcome> {
        self.collect_inner(None)
            .expect("collect without a deadline cannot time out")
    }

    /// Like [`Self::collect`], but gives up with
    /// [`SystolicError::DeadlineExceeded`] if no row completes within
    /// `timeout`. The timed-out row stays in flight (its worker may still
    /// deliver it later); callers can keep collecting, [`Self::drain`] the
    /// pipeline, or drop it.
    pub fn collect_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<RowOutcome>, SystolicError> {
        self.collect_inner(Some(timeout))
    }

    fn collect_inner(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<Option<RowOutcome>, SystolicError> {
        if self.in_flight == 0 {
            return Ok(None);
        }
        let start = Instant::now();
        let deadline = timeout.map(|t| start + t);
        loop {
            let wait = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        self.shared.timeouts.fetch_add(1, Ordering::Relaxed);
                        return Err(SystolicError::DeadlineExceeded {
                            waited: start.elapsed(),
                            in_flight: self.in_flight,
                        });
                    }
                    SUPERVISION_TICK.min(d - now)
                }
                None => SUPERVISION_TICK,
            };
            match self.results.recv_timeout(wait) {
                Ok(outcome) => {
                    self.in_flight -= 1;
                    return Ok(Some(outcome));
                }
                // The tick elapsed with no result: check on the workers.
                // Disconnection is impossible (`result_tx` lives on self),
                // but treat it like a tick defensively.
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                    self.supervise();
                }
            }
        }
    }

    /// Replaces dead worker threads and recovers the rows they held.
    ///
    /// Workers only exit voluntarily once `shutdown` is set (which happens
    /// in `Drop`, after which no collector runs), so any finished handle
    /// seen here is a casualty: join it to reap the thread, spawn a
    /// replacement on the same slot, and re-enqueue — or fail, past the
    /// retry budget — every row the casualty had checked out.
    fn supervise(&mut self) {
        for worker in 0..self.handles.len() {
            if !self.handles[worker].is_finished() {
                continue;
            }
            let replacement = self.spawn_worker(worker);
            let dead = std::mem::replace(&mut self.handles[worker], replacement);
            let _ = dead.join();
            self.shared.respawns.fetch_add(1, Ordering::Relaxed);

            let orphans: Vec<Job> = {
                let mut state = self.shared.lock_state();
                let tickets: Vec<u64> = state
                    .running
                    .iter()
                    .filter(|(_, held)| held.worker == worker)
                    .map(|(ticket, _)| *ticket)
                    .collect();
                tickets
                    .into_iter()
                    .map(|t| state.running.remove(&t).expect("listed above").job)
                    .collect()
            };
            for mut job in orphans {
                job.attempts += 1;
                if job.attempts > self.config.retry_limit {
                    let _ = self.result_tx.send(RowOutcome {
                        ticket: Ticket(job.ticket),
                        worker,
                        result: Err(SystolicError::RowFailed {
                            row: job.ticket,
                            attempts: job.attempts,
                            cause: "worker thread died while processing the row".into(),
                        }),
                    });
                } else {
                    self.shared.retries.fetch_add(1, Ordering::Relaxed);
                    self.shared.lock_state().queue.push_back(job);
                    self.shared.work_ready.notify_one();
                }
            }
        }
    }

    /// Collects every in-flight outcome (blocking, with supervision) and
    /// returns them, leaving the pipeline idle.
    pub fn drain(&mut self) -> Vec<RowOutcome> {
        let mut out = Vec::new();
        while let Some(done) = self.collect() {
            out.push(done);
        }
        out
    }

    /// Abandons a failed batch: queued-but-unstarted jobs are dropped and
    /// already-delivered results discarded. Rows checked out by (possibly
    /// wedged) workers remain in flight.
    fn abandon_queued(&mut self) {
        let dropped = {
            let mut state = self.shared.lock_state();
            let n = state.queue.len();
            state.queue.clear();
            n
        };
        self.in_flight -= dropped;
        while self.results.try_recv().is_ok() {
            self.in_flight -= 1;
        }
    }

    /// Diffs two images row by row across the pool, reassembling the rows
    /// in order and aggregating per-row machine statistics.
    ///
    /// Bit-identical to [`crate::image::xor_image`]; only host wall-clock
    /// changes. If any row fails, the remaining rows are still drained and
    /// the first error is returned. With a
    /// [`DiffPipelineConfig::row_deadline`] configured, a stall longer than
    /// the deadline aborts the batch with
    /// [`SystolicError::DeadlineExceeded`]; queued rows are abandoned but a
    /// wedged worker's row stays in flight (see [`Self::in_flight`]).
    ///
    /// # Panics
    ///
    /// Panics if streaming submissions are still in flight (collect them
    /// first; the batch front-end needs an idle pipeline).
    pub fn diff_images(
        &mut self,
        a: &RleImage,
        b: &RleImage,
    ) -> Result<(RleImage, PipelineStats), SystolicError> {
        assert!(self.in_flight == 0, "diff_images needs an idle pipeline");
        check_dims(a, b)?;
        let start = Instant::now();
        let counters_before = self.shared.counters();
        let height = a.height();
        let base = self.next_ticket;
        for (ra, rb) in a.rows().iter().zip(b.rows()) {
            self.submit(ra.clone(), rb.clone());
        }

        let mut rows: Vec<Option<RleRow>> = vec![None; height];
        let mut stats = PipelineStats {
            workers: self.handles.len(),
            ..Default::default()
        };
        let mut seen = vec![false; self.handles.len()];
        let mut first_err: Option<SystolicError> = None;
        loop {
            let collected = match self.config.row_deadline {
                Some(deadline) => self.collect_timeout(deadline),
                None => Ok(self.collect()),
            };
            let done = match collected {
                Ok(Some(done)) => done,
                Ok(None) => break,
                Err(e) => {
                    self.abandon_queued();
                    return Err(e);
                }
            };
            match done.result {
                Ok((row, row_stats)) => {
                    stats.totals.absorb(&row_stats);
                    stats.max_row_iterations = stats.max_row_iterations.max(row_stats.iterations);
                    stats.rows += 1;
                    seen[done.worker] = true;
                    rows[usize::try_from(done.ticket.id() - base).expect("ticket fits")] =
                        Some(row);
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        stats.effective_workers = seen.iter().filter(|s| **s).count();
        stats.wall = start.elapsed();
        let counters = self.shared.counters();
        stats.retries = counters.retries - counters_before.retries;
        stats.respawns = counters.respawns - counters_before.respawns;
        stats.timeouts = counters.timeouts - counters_before.timeouts;
        let rows: Vec<RleRow> = rows
            .into_iter()
            .map(|r| r.expect("every row collected"))
            .collect();
        let image = RleImage::from_rows(a.width(), rows).expect("row widths preserved");
        Ok((image, stats))
    }
}

impl Drop for DiffPipeline {
    fn drop(&mut self) {
        self.shared.lock_state().shutdown = true;
        self.shared.work_ready.notify_all();
        // Join workers that exit within the grace period; detach the rest
        // (e.g. a wedged worker mid-stall) so Drop can never deadlock. A
        // detached worker sees the shutdown flag and exits as soon as it
        // unwedges; the Arc keeps its shared state alive until then.
        let deadline = Instant::now() + self.config.shutdown_grace;
        for handle in self.handles.drain(..) {
            while !handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
    }
}

/// A worker: pop jobs until shutdown, reusing one array across all of them.
///
/// Each job is checked out in shared state before processing (so the
/// supervisor can recover it if this thread dies) and every row runs under
/// `catch_unwind` (so a panicking row costs one retry, not the worker).
fn worker_loop(
    shared: &Arc<Shared>,
    results: &Sender<RowOutcome>,
    worker: usize,
    retry_limit: u32,
) {
    // The persistent register buffer: allocated on the first row, then
    // `reload`ed in place for every subsequent one. Dropped after a caught
    // panic, since the machine may have been mid-mutation.
    let mut array: Option<SystolicArray> = None;
    loop {
        let job = {
            let mut state = shared.lock_state();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        shared.lock_state().running.insert(
            job.ticket,
            CheckedOut {
                worker,
                job: job.clone(),
            },
        );

        #[cfg(feature = "fault-injection")]
        let mut injected_panic = false;
        #[cfg(feature = "fault-injection")]
        if let Some(fault) = shared
            .faults
            .as_ref()
            .and_then(|plan| plan.take(job.ticket))
        {
            match fault {
                Fault::Panic => injected_panic = true,
                Fault::Stall(duration) => std::thread::sleep(duration),
                // Exit with the job still checked out: the supervisor must
                // notice the dead thread and recover the orphan.
                Fault::Die => return,
                Fault::PoisonLock => {
                    let shared = Arc::clone(shared);
                    let _ = catch_unwind(AssertUnwindSafe(move || {
                        let _guard = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
                        panic!("injected fault: poisoning the pipeline state lock");
                    }));
                }
            }
        }

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "fault-injection")]
            if injected_panic {
                panic!("injected fault: panic on row {}", job.ticket);
            }
            diff_reusing(&mut array, &job.a, &job.b)
        }));

        match outcome {
            Ok(result) => {
                shared.lock_state().running.remove(&job.ticket);
                // The receiver disappearing mid-job means the pipeline is
                // being dropped; the queue will hand us the shutdown flag
                // next round.
                let _ = results.send(RowOutcome {
                    ticket: Ticket(job.ticket),
                    worker,
                    result,
                });
            }
            Err(payload) => {
                array = None;
                let mut job = job;
                shared.lock_state().running.remove(&job.ticket);
                job.attempts += 1;
                if job.attempts > retry_limit {
                    let _ = results.send(RowOutcome {
                        ticket: Ticket(job.ticket),
                        worker,
                        result: Err(SystolicError::RowFailed {
                            row: job.ticket,
                            attempts: job.attempts,
                            cause: panic_message(payload.as_ref()),
                        }),
                    });
                } else {
                    shared.retries.fetch_add(1, Ordering::Relaxed);
                    shared.lock_state().queue.push_back(job);
                    shared.work_ready.notify_one();
                }
            }
        }
    }
}

/// Best-effort rendering of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Diffs one row pair on a reusable array (the [`crate::image::RowPipeline`]
/// pattern, per worker).
fn diff_reusing(
    array: &mut Option<SystolicArray>,
    a: &RleRow,
    b: &RleRow,
) -> Result<(RleRow, ArrayStats), SystolicError> {
    let machine = match array.as_mut() {
        Some(machine) => {
            machine.reload(a, b)?;
            machine
        }
        None => array.insert(SystolicArray::load(a, b)?),
    };
    machine.run()?;
    Ok((machine.extract()?, *machine.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::xor_image;

    fn img(art: &str) -> RleImage {
        RleImage::from_ascii(art)
    }

    #[test]
    fn batch_matches_sequential_reference() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        let (seq, seq_stats) = xor_image(&a, &b).unwrap();
        let mut pipeline = DiffPipeline::new(3);
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, seq);
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.totals.iterations, seq_stats.totals.iterations);
        assert_eq!(stats.max_row_iterations, seq_stats.max_row_iterations);
        assert_eq!(stats.workers, 3);
        assert!(stats.effective_workers >= 1 && stats.effective_workers <= 3);
        // A healthy run needs no supervisor interventions.
        assert_eq!((stats.retries, stats.respawns, stats.timeouts), (0, 0, 0));
        assert_eq!(
            pipeline.supervision_counters(),
            SupervisionCounters::default()
        );
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let a = img("##..##..\n.######.\n");
        let b = img("##.###..\n.#....#.\n");
        let mut pipeline = DiffPipeline::new(2);
        let (first, _) = pipeline.diff_images(&a, &b).unwrap();
        let (second, _) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(first, second);
        let (identity, stats) = pipeline.diff_images(&a, &a.clone()).unwrap();
        assert_eq!(identity.ones(), 0);
        assert_eq!(stats.rows, 2);
    }

    #[test]
    fn streaming_submit_collect_round_trip() {
        let a = img("####....\n..##..##\n#.#.#.#.\n");
        let b = img("###.....\n..##..#.\n.#.#.#.#\n");
        let mut pipeline = DiffPipeline::new(2);
        let tickets: Vec<Ticket> = a
            .rows()
            .iter()
            .zip(b.rows())
            .map(|(ra, rb)| pipeline.submit(ra.clone(), rb.clone()))
            .collect();
        assert_eq!(pipeline.in_flight(), 3);

        let mut rows: Vec<Option<RleRow>> = vec![None; 3];
        while let Some(done) = pipeline.collect() {
            let slot = tickets.iter().position(|t| *t == done.ticket).unwrap();
            rows[slot] = Some(done.result.unwrap().0);
        }
        assert_eq!(pipeline.in_flight(), 0);
        let (expected, _) = xor_image(&a, &b).unwrap();
        for (slot, row) in rows.into_iter().enumerate() {
            assert_eq!(row.unwrap(), expected.rows()[slot]);
        }
    }

    #[test]
    fn row_error_is_reported_and_pipeline_survives() {
        let mut pipeline = DiffPipeline::new(2);
        let good = RleRow::from_pairs(16, &[(0, 4)]).unwrap();
        let bad = RleRow::new(8); // width mismatch against `good`
        pipeline.submit(good.clone(), bad);
        let outcome = pipeline.collect().unwrap();
        assert!(outcome.result.is_err());
        // The pool still works after the failure.
        pipeline.submit(good.clone(), good.clone());
        let ok = pipeline.collect().unwrap();
        assert!(ok.result.unwrap().0.is_empty());
    }

    #[test]
    fn empty_image_batch() {
        let a = RleImage::new(32, 0);
        let mut pipeline = DiffPipeline::new(2);
        let (d, stats) = pipeline.diff_images(&a, &a.clone()).unwrap();
        assert_eq!(d.height(), 0);
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.effective_workers, 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut pipeline = DiffPipeline::new(2);
        let a = RleImage::new(8, 2);
        assert!(pipeline.diff_images(&a, &RleImage::new(9, 2)).is_err());
        assert!(pipeline.diff_images(&a, &RleImage::new(8, 3)).is_err());
        // Failed dimension checks leave nothing in flight.
        assert_eq!(pipeline.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_workers_panics() {
        let _ = DiffPipeline::new(0);
    }

    #[test]
    fn config_defaults_and_builders() {
        let config = DiffPipelineConfig::default();
        assert!(config.threads >= 1);
        assert_eq!(config.retry_limit, 2);
        assert!(config.row_deadline.is_none());
        let config = DiffPipelineConfig::new(2)
            .retry_limit(5)
            .row_deadline(Duration::from_millis(250))
            .shutdown_grace(Duration::from_millis(100));
        assert_eq!(config.threads, 2);
        assert_eq!(config.retry_limit, 5);
        assert_eq!(config.row_deadline, Some(Duration::from_millis(250)));
        assert_eq!(config.shutdown_grace, Duration::from_millis(100));
        let pipeline = config.build();
        assert_eq!(pipeline.workers(), 2);
    }

    #[test]
    fn collect_timeout_on_healthy_pipeline_returns_rows() {
        let mut pipeline = DiffPipeline::new(2);
        assert!(matches!(
            pipeline.collect_timeout(Duration::from_millis(10)),
            Ok(None),
        ));
        let row = RleRow::from_pairs(16, &[(0, 4)]).unwrap();
        pipeline.submit(row.clone(), row);
        let got = pipeline
            .collect_timeout(Duration::from_secs(10))
            .expect("healthy worker beats a generous deadline")
            .expect("one row in flight");
        assert!(got.result.unwrap().0.is_empty());
    }

    #[test]
    fn drain_empties_the_pipeline() {
        let mut pipeline = DiffPipeline::new(2);
        let row = RleRow::from_pairs(16, &[(0, 4)]).unwrap();
        for _ in 0..5 {
            pipeline.submit(row.clone(), row.clone());
        }
        let outcomes = pipeline.drain();
        assert_eq!(outcomes.len(), 5);
        assert_eq!(pipeline.in_flight(), 0);
        assert!(pipeline.drain().is_empty());
    }

    #[test]
    fn batch_deadline_passes_when_workers_are_healthy() {
        let a = img("####....\n..##..##\n#.#.#.#.\n");
        let b = img("###.....\n..##..#.\n.#.#.#.#\n");
        let mut pipeline = DiffPipelineConfig::new(2)
            .row_deadline(Duration::from_secs(10))
            .build();
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, xor_image(&a, &b).unwrap().0);
        assert_eq!(stats.timeouts, 0);
    }
}
